"""Test-support machinery that ships with the library.

Currently one module: :mod:`repro.testing.chaos`, the env-driven
fault-injection harness the resilience layer is tested against.  It lives in
``src`` (not ``tests/``) because worker *processes* must be able to import it
— a chaos checkpoint fires inside pool workers and inside the cache writer,
wherever those run.
"""

from repro.testing.chaos import (
    CHAOS_CRASH_EXIT_CODE,
    CHAOS_ENV_VAR,
    CHAOS_HANG_ENV_VAR,
    CHAOS_ONCE_ENV_VAR,
    CHAOS_SEED_ENV_VAR,
    ChaosConfig,
    ChaosRule,
    active_chaos,
    chaos_checkpoint,
    reset_chaos,
)

__all__ = [
    "CHAOS_CRASH_EXIT_CODE",
    "CHAOS_ENV_VAR",
    "CHAOS_HANG_ENV_VAR",
    "CHAOS_ONCE_ENV_VAR",
    "CHAOS_SEED_ENV_VAR",
    "ChaosConfig",
    "ChaosRule",
    "active_chaos",
    "chaos_checkpoint",
    "reset_chaos",
]
