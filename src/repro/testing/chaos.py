"""Env-driven chaos injection: probabilistic crashes, hangs and corruption.

The resilience layer's tests (and the ``chaos-smoke`` CI job) need real
faults — a worker process that dies mid-task, a build that hangs past its
deadline, a cache write that commits garbage.  This harness injects them at
well-known **checkpoints** that production code consults when (and only
when) ``REPRO_CHAOS`` is set:

- ``task`` — the start of every pool-worker task
  (:func:`repro.experiments.orchestrator.engine._pool_execute` and the
  campaign shard worker);
- ``cache-write`` — between the temp-file write and the atomic rename in
  :meth:`repro.experiments.orchestrator.cache.ResultCache.store`.

Syntax (comma-separated rules)::

    REPRO_CHAOS=crash:0.2              # 20% chance a task start kills the process
    REPRO_CHAOS=hang:1@task            # every task start sleeps (deadline fodder)
    REPRO_CHAOS=corrupt:1:2@task       # first 2 checkpoints per process raise ChaosError
    REPRO_CHAOS=crash:1@cache-write    # die after the temp write, before the rename

i.e. ``kind:probability[:max][@site]`` where ``kind`` is ``crash`` /
``hang`` / ``corrupt``, ``max`` caps injections *per process* and ``site``
defaults to ``task``.  Supporting environment variables:

- ``REPRO_CHAOS_SEED`` — integer seeding the (counter-based) decision
  stream so a process's injection pattern is reproducible; unset, each
  process seeds itself from its pid.
- ``REPRO_CHAOS_HANG_SECONDS`` — how long a ``hang`` sleeps (default 30).
- ``REPRO_CHAOS_ONCE`` — a directory of injection tokens: each distinct
  ``(kind, site, key)`` fires **at most once across all processes** that
  share the directory.  This is what makes chaos CI runs deterministic-by
  -construction: with ``crash:0.2`` + a shared once-directory every task
  dies at most once, so bounded retries always converge.

The injection kinds:

- ``crash`` — ``os._exit(CHAOS_CRASH_EXIT_CODE)``: the process dies without
  running cleanup handlers, exactly like a kill, so pool breakage and torn
  writes are realistic;
- ``hang`` — sleeps ``REPRO_CHAOS_HANG_SECONDS`` (finite so leaked workers
  cannot outlive a test session forever);
- ``corrupt`` — at a task site raises
  :class:`~repro.core.exceptions.ChaosError`; at ``cache-write`` the
  checkpoint *returns* ``"corrupt"`` and the caller applies the corruption
  it knows how to apply (the cache scribbles over the temp file).
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

from repro.backend.base import campaign_uniform
from repro.core.exceptions import ChaosError, ReproError

#: Environment variable holding the chaos rule list.
CHAOS_ENV_VAR = "REPRO_CHAOS"

#: Environment variable seeding the per-process decision stream.
CHAOS_SEED_ENV_VAR = "REPRO_CHAOS_SEED"

#: Environment variable bounding how long a ``hang`` injection sleeps.
CHAOS_HANG_ENV_VAR = "REPRO_CHAOS_HANG_SECONDS"

#: Environment variable naming the shared once-token directory.
CHAOS_ONCE_ENV_VAR = "REPRO_CHAOS_ONCE"

#: Exit code a ``crash`` injection dies with (distinct from Python's 1/2 so
#: tests can tell an injected crash from an ordinary failure).
CHAOS_CRASH_EXIT_CODE = 13

#: Default ``hang`` duration, seconds.
DEFAULT_HANG_SECONDS = 30.0

#: The site a rule without ``@site`` applies to.
DEFAULT_SITE = "task"

#: Recognized injection kinds.
CHAOS_KINDS = ("crash", "hang", "corrupt")


@dataclass(frozen=True)
class ChaosRule:
    """One parsed injection rule: kind, probability, per-process cap, site.

    Attributes:
        kind: ``crash`` / ``hang`` / ``corrupt``.
        probability: chance in ``[0, 1]`` that a matching checkpoint fires.
        max_injections: per-process cap (``None``: unbounded).
        site: checkpoint name the rule applies to.
    """

    kind: str
    probability: float
    max_injections: Optional[int]
    site: str


def _parse_rule(segment: str) -> ChaosRule:
    spec, _, site = segment.partition("@")
    site = site.strip() or DEFAULT_SITE
    parts = [part.strip() for part in spec.split(":")]
    if not 2 <= len(parts) <= 3 or not parts[0]:
        raise ReproError(
            f"malformed chaos rule {segment!r} "
            "(expected kind:probability[:max][@site])"
        )
    kind = parts[0]
    if kind not in CHAOS_KINDS:
        raise ReproError(
            f"unknown chaos kind {kind!r} (known: {', '.join(CHAOS_KINDS)})"
        )
    try:
        probability = float(parts[1])
    except ValueError:
        raise ReproError(
            f"chaos probability in {segment!r} is not a number"
        ) from None
    if not 0.0 <= probability <= 1.0:
        raise ReproError(
            f"chaos probability must be in [0, 1], got {probability}"
        )
    max_injections: Optional[int] = None
    if len(parts) == 3:
        try:
            max_injections = int(parts[2])
        except ValueError:
            raise ReproError(
                f"chaos injection cap in {segment!r} is not an integer"
            ) from None
        if max_injections < 0:
            raise ReproError(
                f"chaos injection cap must be non-negative, got {max_injections}"
            )
    return ChaosRule(
        kind=kind, probability=probability, max_injections=max_injections, site=site
    )


class ChaosConfig:
    """A parsed chaos specification plus the per-process decision state."""

    def __init__(
        self,
        rules: Tuple[ChaosRule, ...] = (),
        *,
        seed: Optional[int] = None,
        hang_seconds: float = DEFAULT_HANG_SECONDS,
        once_dir: Optional[str] = None,
    ) -> None:
        self.rules = tuple(rules)
        self.hang_seconds = float(hang_seconds)
        self.once_dir = once_dir
        self.seed = seed if seed is not None else os.getpid()
        # One decision stream per process: counter-based (splitmix64) so the
        # sequence is reproducible for a fixed seed regardless of which
        # checkpoints were skipped.
        self._draws = 0
        self._injections: Dict[Tuple[str, str], int] = {}

    @classmethod
    def parse(
        cls,
        spec: str,
        *,
        seed: Optional[int] = None,
        hang_seconds: float = DEFAULT_HANG_SECONDS,
        once_dir: Optional[str] = None,
    ) -> "ChaosConfig":
        """Parse a ``REPRO_CHAOS`` value; usage errors raise ``ReproError``."""
        rules = tuple(
            _parse_rule(segment.strip())
            for segment in spec.split(",")
            if segment.strip()
        )
        return cls(rules, seed=seed, hang_seconds=hang_seconds, once_dir=once_dir)

    @classmethod
    def from_env(cls, environ: Optional[Mapping[str, str]] = None) -> "ChaosConfig":
        """The configuration the environment describes (inactive when unset)."""
        env = environ if environ is not None else os.environ
        spec = env.get(CHAOS_ENV_VAR, "")
        if not spec.strip():
            return cls()
        seed_text = env.get(CHAOS_SEED_ENV_VAR, "").strip()
        seed = int(seed_text) if seed_text else None
        hang_text = env.get(CHAOS_HANG_ENV_VAR, "").strip()
        hang_seconds = float(hang_text) if hang_text else DEFAULT_HANG_SECONDS
        once_dir = env.get(CHAOS_ONCE_ENV_VAR, "").strip() or None
        return cls.parse(
            spec, seed=seed, hang_seconds=hang_seconds, once_dir=once_dir
        )

    @property
    def active(self) -> bool:
        """Whether any rule can ever fire."""
        return any(rule.probability > 0.0 for rule in self.rules)

    # ------------------------------------------------------------- injection

    def _uniform(self) -> float:
        value = campaign_uniform(self.seed, self._draws)
        self._draws += 1
        return value

    def _claim_once_token(self, rule: ChaosRule, key: str) -> bool:
        """Atomically claim the cross-process token; ``False`` if taken."""
        if self.once_dir is None:
            return True
        digest = hashlib.sha256(
            f"{rule.site}\x00{key}".encode("utf-8")
        ).hexdigest()[:24]
        path = os.path.join(self.once_dir, f"{rule.kind}-{digest}")
        try:
            os.makedirs(self.once_dir, exist_ok=True)
            descriptor = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        except OSError:
            # An unusable token directory must not turn chaos off silently —
            # but it also must not crash the host; fall back to firing.
            return True
        with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
            handle.write(f"{rule.site} {key}\n")
        return True

    def inject(self, site: str, key: str = "") -> Optional[str]:
        """Consult every rule matching ``site``; may not return (``crash``).

        Returns ``"corrupt"`` when a corruption injection fired at a
        non-task site (the caller applies it), ``None`` otherwise.  At task
        sites ``corrupt`` raises :class:`ChaosError` directly.
        """
        for rule in self.rules:
            if rule.site != site or rule.probability <= 0.0:
                continue
            count_key = (rule.kind, rule.site)
            if (
                rule.max_injections is not None
                and self._injections.get(count_key, 0) >= rule.max_injections
            ):
                continue
            if rule.probability < 1.0 and self._uniform() >= rule.probability:
                continue
            if not self._claim_once_token(rule, key):
                continue
            self._injections[count_key] = self._injections.get(count_key, 0) + 1
            if rule.kind == "crash":
                # A hard kill: no atexit, no finally, no flush — exactly the
                # failure mode the resilience layer must survive.
                os._exit(CHAOS_CRASH_EXIT_CODE)
            if rule.kind == "hang":
                time.sleep(self.hang_seconds)
                continue
            if site == DEFAULT_SITE:
                raise ChaosError(
                    f"chaos: injected corruption at {site!r} (key={key!r})"
                )
            return "corrupt"
        return None


_active_config: Optional[ChaosConfig] = None


def active_chaos() -> ChaosConfig:
    """The process-wide configuration, parsed from the environment once.

    Memoized because checkpoints sit on hot paths (every pool task, every
    cache write); :func:`reset_chaos` drops the memo for tests that change
    the environment mid-process.
    """
    global _active_config
    if _active_config is None:
        _active_config = ChaosConfig.from_env()
    return _active_config


def reset_chaos() -> None:
    """Forget the memoized configuration (re-read the env on next use)."""
    global _active_config
    _active_config = None


def chaos_checkpoint(site: str = DEFAULT_SITE, key: str = "") -> Optional[str]:
    """Consult the active chaos configuration at ``site``.

    The no-chaos fast path is one memoized attribute check; production
    callers pay nothing measurable for hosting a checkpoint.
    """
    config = active_chaos()
    if not config.active:
        return None
    return config.inject(site, key)
