"""A streamlined, leader-driven (HotStuff-style) consensus protocol.

The protocol keeps HotStuff's communication pattern — replicas vote *to the
leader*, the leader aggregates a quorum certificate (QC) and broadcasts it —
and its three voting phases (PREPARE, PRE-COMMIT, COMMIT) followed by a
DECIDE broadcast.  Message complexity is therefore linear per phase instead
of quadratic, which is the trade-off Proposition 3's overhead discussion
refers to.

Modeling choices (all consistent with Section II-B's assumption that
cryptographic primitives are sound):

- QCs are unforgeable: a Byzantine leader cannot fabricate a QC it did not
  collect enough votes for.  Its power is equivocation (sending conflicting
  proposals to the two halves of the replica set) and withholding.
- Byzantine replicas vote for every proposal they see, in every phase.
- View changes / pacemakers are out of scope; the experiments only need the
  safety behaviour of a single view.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Set, Tuple

from repro.bft.ledger import AgreementReport, ReplicatedLedger, check_agreement
from repro.bft.quorum import QuorumModel, QuorumSpec
from repro.bft.replica import BftReplicaBase, equivocation_value
from repro.core.exceptions import ProtocolError
from repro.faults.injection import FaultSchedule
from repro.sim.events import Scheduler
from repro.sim.network import NetworkConfig, SimulatedNetwork
from repro.sim.node import Message

PROPOSE = "PROPOSE"
VOTE_PREPARE = "VOTE_PREPARE"
QC_PREPARE = "QC_PREPARE"
VOTE_PRECOMMIT = "VOTE_PRECOMMIT"
QC_PRECOMMIT = "QC_PRECOMMIT"
VOTE_COMMIT = "VOTE_COMMIT"
DECIDE = "DECIDE"

#: Vote phase -> QC message the leader emits when the phase reaches quorum.
_NEXT_OF_VOTE = {
    VOTE_PREPARE: QC_PREPARE,
    VOTE_PRECOMMIT: QC_PRECOMMIT,
    VOTE_COMMIT: DECIDE,
}

#: QC message -> vote the replicas respond with.
_VOTE_AFTER_QC = {
    PROPOSE: VOTE_PREPARE,
    QC_PREPARE: VOTE_PRECOMMIT,
    QC_PRECOMMIT: VOTE_COMMIT,
}


class HotStuffReplica(BftReplicaBase):
    """One replica of the streamlined protocol (leader or follower)."""

    def __init__(
        self,
        node_id: str,
        quorum: QuorumSpec,
        *,
        leader_id: str,
        fault_schedule: Optional[FaultSchedule] = None,
    ) -> None:
        super().__init__(node_id, quorum, fault_schedule=fault_schedule)
        self.leader_id = leader_id
        self._locked_value: Dict[int, str] = {}
        self._qc_broadcast: Set[Tuple[str, int, str]] = set()

    @property
    def is_leader(self) -> bool:
        return self.node_id == self.leader_id

    # -- leader entry point ------------------------------------------------------------

    def propose(self, sequence: int, value: str) -> None:
        """Leader entry point: start consensus on ``value`` at ``sequence``."""
        if not self.is_leader:
            raise ProtocolError(f"replica {self.node_id!r} is not the leader")
        if self.is_crashed_by_schedule() or self.crashed:
            return
        if self.is_byzantine():
            first_half, second_half = self.split_halves()
            conflicting = equivocation_value(value)
            for node_id in first_half:
                self.send(node_id, PROPOSE, {"sequence": sequence, "value": value})
            for node_id in second_half:
                self.send(node_id, PROPOSE, {"sequence": sequence, "value": conflicting})
            # Colluding Byzantine replicas learn both proposals out of band so
            # they can vote for both; this models coordinated equivocation.
            for node_id in self.network.node_ids():
                if self._fault_schedule.is_faulty_at(node_id, self.now):
                    self.send(node_id, PROPOSE, {"sequence": sequence, "value": value})
                    self.send(node_id, PROPOSE, {"sequence": sequence, "value": conflicting})
            return
        self.broadcast(PROPOSE, {"sequence": sequence, "value": value})

    # -- message handling -----------------------------------------------------------------

    def on_message(self, message: Message) -> None:
        if self.is_crashed_by_schedule():
            return
        sequence = int(message.get("sequence"))
        value = str(message.get("value"))
        msg_type = message.msg_type
        if msg_type in _VOTE_AFTER_QC:
            self._handle_proposal_or_qc(message.sender, msg_type, sequence, value)
        elif msg_type in _NEXT_OF_VOTE:
            self._handle_vote(message.sender, msg_type, sequence, value)
        elif msg_type == DECIDE:
            self._handle_decide(message.sender, sequence, value)
        else:
            raise ProtocolError(f"unexpected message type {msg_type!r}")

    def _handle_proposal_or_qc(
        self, sender: str, msg_type: str, sequence: int, value: str
    ) -> None:
        if sender != self.leader_id:
            return
        vote_type = _VOTE_AFTER_QC[msg_type]
        if self.is_byzantine():
            self.send(self.leader_id, vote_type, {"sequence": sequence, "value": value})
            return
        if msg_type == PROPOSE:
            if sequence in self._locked_value:
                # Accept only the first proposal per sequence in this view.
                if self._locked_value[sequence] != value:
                    return
            else:
                self._locked_value[sequence] = value
        elif self._locked_value.get(sequence) != value:
            # A QC for a value we never accepted: stale or equivocation, ignore.
            return
        self.send(self.leader_id, vote_type, {"sequence": sequence, "value": value})

    def _handle_vote(self, sender: str, vote_type: str, sequence: int, value: str) -> None:
        if not self.is_leader:
            return
        count = self.votes.record(vote_type, sequence, value, sender)
        if count < self.quorum.quorum_size:
            return
        qc_type = _NEXT_OF_VOTE[vote_type]
        key = (qc_type, sequence, value)
        if key in self._qc_broadcast:
            return
        self._qc_broadcast.add(key)
        # The QC is backed by a real quorum of votes; even a Byzantine leader
        # can only broadcast certificates it actually collected.
        self.broadcast(qc_type, {"sequence": sequence, "value": value})

    def _handle_decide(self, sender: str, sequence: int, value: str) -> None:
        if sender != self.leader_id:
            return
        if self.is_byzantine():
            return
        if self._locked_value.get(sequence) != value:
            return
        self.commit(sequence, value)


@dataclass
class HotStuffRun:
    """Builds and executes one streamlined-protocol run."""

    replica_ids: Sequence[str]
    fault_schedule: FaultSchedule
    network_config: NetworkConfig = NetworkConfig()
    leader_id: Optional[str] = None

    def __post_init__(self) -> None:
        if len(self.replica_ids) < 4:
            raise ProtocolError("the streamlined protocol needs at least 4 replicas")
        if len(set(self.replica_ids)) != len(self.replica_ids):
            raise ProtocolError("replica ids must be unique")
        if self.leader_id is None:
            self.leader_id = self.replica_ids[0]
        if self.leader_id not in self.replica_ids:
            raise ProtocolError(f"leader {self.leader_id!r} is not a replica")

    def execute(
        self,
        values: Sequence[str] = ("request-0",),
        *,
        until: float = 10.0,
    ) -> "HotStuffRunResult":
        """Run consensus on the given values (one sequence number per value)."""
        if not values:
            raise ProtocolError("at least one value is required")
        scheduler = Scheduler()
        network = SimulatedNetwork(scheduler, self.network_config)
        quorum = QuorumSpec(total_replicas=len(self.replica_ids), model=QuorumModel.CLASSIC)
        replicas = {
            node_id: HotStuffReplica(
                node_id,
                quorum,
                leader_id=self.leader_id,
                fault_schedule=self.fault_schedule,
            )
            for node_id in self.replica_ids
        }
        network.register_all(replicas.values())
        network.start()
        leader = replicas[self.leader_id]
        for sequence, value in enumerate(values):
            scheduler.call_at(
                0.0,
                lambda seq=sequence, val=value: leader.propose(seq, val),
                label=f"propose:{sequence}",
            )
        scheduler.run(until=until)
        honest_ids = [
            node_id
            for node_id in self.replica_ids
            if not self.fault_schedule.is_faulty_at(node_id, 0.0)
        ]
        ledgers: Dict[str, ReplicatedLedger] = {
            node_id: replica.ledger for node_id, replica in replicas.items()
        }
        agreement = check_agreement(ledgers, honest_ids=honest_ids or None)
        return HotStuffRunResult(
            quorum=quorum,
            agreement=agreement,
            honest_ids=tuple(honest_ids),
            messages_sent=network.metrics.counter("messages_sent"),
            duration=scheduler.now,
            sequences=tuple(range(len(values))),
        )


@dataclass(frozen=True)
class HotStuffRunResult:
    """Outcome of one streamlined-protocol run."""

    quorum: QuorumSpec
    agreement: AgreementReport
    honest_ids: Tuple[str, ...]
    messages_sent: float
    duration: float
    sequences: Tuple[int, ...]

    @property
    def safety_ok(self) -> bool:
        return self.agreement.safe

    @property
    def all_honest_decided(self) -> bool:
        return set(self.sequences) <= set(self.agreement.fully_replicated_sequences)
