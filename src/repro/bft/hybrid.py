"""A hybrid BFT protocol relying on trusted components (Damysus / MinBFT style).

Hybrid protocols attach a small trusted component (an attested counter /
unique sequential identifier generator) to every replica.  Because the trusted
component signs at most one message per counter value, a Byzantine replica
cannot equivocate, which lowers the replica requirement to ``n = 2f + 1`` and
the quorum size to ``f + 1``.

The paper's Section III-A warns that this extra efficiency creates a new
shared fault domain: if the trusted hardware itself (e.g. SGX) has an
exploitable vulnerability, the equivocation protection disappears on every
replica using that hardware.  The simulation models this directly: each
replica has a ``tee_compromised`` flag; Byzantine behaviour is limited to
"single vote per counter" while the flag is false and becomes full
equivocation once it is true.  A single trusted-hardware vulnerability shared
by a quorum's worth of replicas therefore breaks safety with far fewer faults
than the classic protocol would need — the motivating example for trusted
hardware diversity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional, Sequence, Set, Tuple

from repro.bft.ledger import AgreementReport, ReplicatedLedger, check_agreement
from repro.bft.quorum import QuorumModel, QuorumSpec
from repro.bft.replica import BftReplicaBase, equivocation_value
from repro.core.exceptions import ProtocolError
from repro.faults.injection import FaultSchedule
from repro.sim.events import Scheduler
from repro.sim.network import NetworkConfig, SimulatedNetwork
from repro.sim.node import Message

PREPARE = "PREPARE"
COMMIT = "COMMIT"


class TrustedCounter:
    """A minimal USIG-style trusted monotonic counter.

    ``assign`` binds a value to the next counter slot and refuses to bind a
    *different* value to an already-used slot — unless the component has been
    compromised, in which case the attacker can re-sign arbitrarily.
    """

    def __init__(self, *, compromised: bool = False) -> None:
        self.compromised = compromised
        self._assignments: Dict[int, str] = {}

    def assign(self, counter: int, value: str) -> bool:
        """Try to bind ``value`` to ``counter``; returns whether it is allowed."""
        if counter < 0:
            raise ProtocolError(f"counter must be non-negative, got {counter}")
        if self.compromised:
            return True
        existing = self._assignments.get(counter)
        if existing is None:
            self._assignments[counter] = value
            return True
        return existing == value


class HybridReplica(BftReplicaBase):
    """One replica of the hybrid (trusted-component) protocol."""

    def __init__(
        self,
        node_id: str,
        quorum: QuorumSpec,
        *,
        primary_id: str,
        fault_schedule: Optional[FaultSchedule] = None,
        tee_compromised: bool = False,
    ) -> None:
        super().__init__(node_id, quorum, fault_schedule=fault_schedule)
        self.primary_id = primary_id
        self.trusted_counter = TrustedCounter(compromised=tee_compromised)
        self._accepted: Dict[int, str] = {}
        self._commit_sent: Set[Tuple[int, str]] = set()

    @property
    def is_primary(self) -> bool:
        return self.node_id == self.primary_id

    @property
    def tee_compromised(self) -> bool:
        return self.trusted_counter.compromised

    # -- proposing --------------------------------------------------------------------

    def propose(self, sequence: int, value: str) -> None:
        """Primary entry point: bind ``value`` to the trusted counter and send it."""
        if not self.is_primary:
            raise ProtocolError(f"replica {self.node_id!r} is not the primary")
        if self.is_crashed_by_schedule() or self.crashed:
            return
        if self.is_byzantine() and self.tee_compromised:
            # Equivocation is only possible once the trusted component falls.
            first_half, second_half = self.split_halves()
            conflicting = equivocation_value(value)
            for node_id in first_half:
                self.send(node_id, PREPARE, {"sequence": sequence, "value": value})
            for node_id in second_half:
                self.send(node_id, PREPARE, {"sequence": sequence, "value": conflicting})
            return
        # Honest primaries — and Byzantine primaries with an intact trusted
        # component — can only get one value signed per counter slot.
        if not self.trusted_counter.assign(sequence, value):
            return
        self.broadcast(PREPARE, {"sequence": sequence, "value": value})

    # -- message handling ----------------------------------------------------------------

    def on_message(self, message: Message) -> None:
        if self.is_crashed_by_schedule():
            return
        sequence = int(message.get("sequence"))
        value = str(message.get("value"))
        if message.msg_type == PREPARE:
            self._handle_prepare(message.sender, sequence, value)
        elif message.msg_type == COMMIT:
            self._handle_commit(message.sender, sequence, value)
        else:
            raise ProtocolError(f"unexpected message type {message.msg_type!r}")

    def _handle_prepare(self, sender: str, sequence: int, value: str) -> None:
        if sender != self.primary_id:
            return
        if self.is_byzantine():
            self._send_commit(sequence, value)
            return
        if sequence in self._accepted:
            return
        self._accepted[sequence] = value
        self._send_commit(sequence, value)

    def _handle_commit(self, sender: str, sequence: int, value: str) -> None:
        count = self.votes.record(COMMIT, sequence, value, sender)
        if self.is_byzantine():
            # A Byzantine replica may endorse values it sees in others'
            # commits, but its trusted counter still limits it to one
            # commit per slot unless compromised.
            self._send_commit(sequence, value)
            return
        accepted = self._accepted.get(sequence)
        if accepted is None and self.is_primary:
            accepted = value if self.trusted_counter.assign(sequence, value) else None
        if accepted != value:
            return
        if count >= self.quorum.quorum_size:
            self.commit(sequence, value)

    # -- internals ---------------------------------------------------------------------------

    def _send_commit(self, sequence: int, value: str) -> None:
        key = (sequence, value)
        if key in self._commit_sent:
            return
        if not self.trusted_counter.assign(sequence, value):
            return  # the trusted component refuses to double-sign this slot
        self._commit_sent.add(key)
        self.broadcast(COMMIT, {"sequence": sequence, "value": value})


@dataclass
class HybridRun:
    """Builds and executes one hybrid-protocol run."""

    replica_ids: Sequence[str]
    fault_schedule: FaultSchedule
    network_config: NetworkConfig = NetworkConfig()
    primary_id: Optional[str] = None
    tee_compromised_ids: FrozenSet[str] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        if len(self.replica_ids) < 3:
            raise ProtocolError("the hybrid protocol needs at least 3 replicas")
        if len(set(self.replica_ids)) != len(self.replica_ids):
            raise ProtocolError("replica ids must be unique")
        if self.primary_id is None:
            self.primary_id = self.replica_ids[0]
        if self.primary_id not in self.replica_ids:
            raise ProtocolError(f"primary {self.primary_id!r} is not a replica")
        self.tee_compromised_ids = frozenset(self.tee_compromised_ids)
        unknown = self.tee_compromised_ids - set(self.replica_ids)
        if unknown:
            raise ProtocolError(f"unknown replicas in tee_compromised_ids: {sorted(unknown)}")

    def execute(
        self,
        values: Sequence[str] = ("request-0",),
        *,
        until: float = 10.0,
    ) -> "HybridRunResult":
        """Run consensus on the given values (one sequence number per value)."""
        if not values:
            raise ProtocolError("at least one value is required")
        scheduler = Scheduler()
        network = SimulatedNetwork(scheduler, self.network_config)
        quorum = QuorumSpec(total_replicas=len(self.replica_ids), model=QuorumModel.HYBRID)
        replicas = {
            node_id: HybridReplica(
                node_id,
                quorum,
                primary_id=self.primary_id,
                fault_schedule=self.fault_schedule,
                tee_compromised=node_id in self.tee_compromised_ids,
            )
            for node_id in self.replica_ids
        }
        network.register_all(replicas.values())
        network.start()
        primary = replicas[self.primary_id]
        for sequence, value in enumerate(values):
            scheduler.call_at(
                0.0,
                lambda seq=sequence, val=value: primary.propose(seq, val),
                label=f"propose:{sequence}",
            )
        scheduler.run(until=until)
        honest_ids = [
            node_id
            for node_id in self.replica_ids
            if not self.fault_schedule.is_faulty_at(node_id, 0.0)
        ]
        ledgers: Dict[str, ReplicatedLedger] = {
            node_id: replica.ledger for node_id, replica in replicas.items()
        }
        agreement = check_agreement(ledgers, honest_ids=honest_ids or None)
        return HybridRunResult(
            quorum=quorum,
            agreement=agreement,
            honest_ids=tuple(honest_ids),
            tee_compromised_ids=self.tee_compromised_ids,
            messages_sent=network.metrics.counter("messages_sent"),
            duration=scheduler.now,
            sequences=tuple(range(len(values))),
        )


@dataclass(frozen=True)
class HybridRunResult:
    """Outcome of one hybrid-protocol run."""

    quorum: QuorumSpec
    agreement: AgreementReport
    honest_ids: Tuple[str, ...]
    tee_compromised_ids: FrozenSet[str]
    messages_sent: float
    duration: float
    sequences: Tuple[int, ...]

    @property
    def safety_ok(self) -> bool:
        return self.agreement.safe

    @property
    def all_honest_decided(self) -> bool:
        return set(self.sequences) <= set(self.agreement.fully_replicated_sequences)
