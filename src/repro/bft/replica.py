"""Shared machinery for the simulated BFT replicas.

Every protocol replica derives from :class:`BftReplicaBase`, which provides:

- the replica's :class:`~repro.bft.quorum.QuorumSpec` and committed
  :class:`~repro.bft.ledger.ReplicatedLedger`;
- its *behaviour* (honest, crashed, Byzantine) derived from a
  :class:`~repro.faults.injection.FaultSchedule`;
- vote bookkeeping with per-(phase, sequence, value) counting of distinct
  voters, which is what quorum checks need.

The Byzantine behaviour model follows Section II-B: the adversary can delay,
drop, re-order, insert and modify messages of the replicas it controls, but it
cannot forge other replicas' signatures (the cryptographic primitives are
assumed sound).  Concretely, Byzantine replicas here equivocate and vote for
every value they see; they never impersonate honest replicas.
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

from repro.bft.ledger import ReplicatedLedger
from repro.bft.quorum import QuorumSpec
from repro.core.exceptions import ProtocolError
from repro.faults.injection import FaultKind, FaultSchedule
from repro.sim.node import Message, SimulatedNode

VoteKey = Tuple[str, int, str]  # (phase, sequence, value)


class VoteBook:
    """Counts distinct voters per (phase, sequence, value)."""

    def __init__(self) -> None:
        self._votes: Dict[VoteKey, Set[str]] = {}

    def record(self, phase: str, sequence: int, value: str, voter: str) -> int:
        """Record one vote and return the number of distinct voters so far."""
        key = (phase, sequence, value)
        voters = self._votes.setdefault(key, set())
        voters.add(voter)
        return len(voters)

    def count(self, phase: str, sequence: int, value: str) -> int:
        """Distinct voters recorded for the given (phase, sequence, value)."""
        return len(self._votes.get((phase, sequence, value), ()))

    def values_seen(self, phase: str, sequence: int) -> Tuple[str, ...]:
        """All values that received at least one vote in the given phase/sequence."""
        return tuple(
            sorted(
                value
                for (p, s, value), voters in self._votes.items()
                if p == phase and s == sequence and voters
            )
        )


class BftReplicaBase(SimulatedNode):
    """Base class for PBFT, HotStuff and hybrid replicas."""

    def __init__(
        self,
        node_id: str,
        quorum: QuorumSpec,
        *,
        fault_schedule: Optional[FaultSchedule] = None,
    ) -> None:
        super().__init__(node_id)
        self.quorum = quorum
        self.ledger = ReplicatedLedger(owner_id=node_id)
        self.votes = VoteBook()
        self._fault_schedule = (
            fault_schedule if fault_schedule is not None else FaultSchedule.none()
        )

    # -- behaviour -----------------------------------------------------------------

    def fault_kind(self) -> Optional[FaultKind]:
        """The fault active for this replica at the current simulated time."""
        return self._fault_schedule.kind_at(self.node_id, self.now)

    def is_byzantine(self) -> bool:
        """True when the replica is currently under Byzantine control."""
        return self.fault_kind() in (FaultKind.BYZANTINE, FaultKind.EQUIVOCATE)

    def is_crashed_by_schedule(self) -> bool:
        """True when the schedule says the replica has crashed."""
        return self.fault_kind() is FaultKind.CRASH

    def behaves_honestly(self) -> bool:
        """True when the replica follows the protocol at this time."""
        return self.fault_kind() is None

    # -- convenience ----------------------------------------------------------------

    def commit(self, sequence: int, value: str) -> None:
        """Append a decision to the local ledger (honest replicas only).

        Byzantine replicas' ledgers are not meaningful for safety analysis, so
        they simply skip the bookkeeping.
        """
        if self.is_byzantine():
            return
        self.ledger.commit(sequence, value, time=self.now)

    def other_replica_ids(self) -> Tuple[str, ...]:
        """Ids of all other replicas on the network."""
        return tuple(
            node_id for node_id in self.network.node_ids() if node_id != self.node_id
        )

    def split_halves(self) -> Tuple[Tuple[str, ...], Tuple[str, ...]]:
        """Deterministically split all replicas into two halves.

        Byzantine equivocation targets one value at each half; the split is by
        registration order so runs stay reproducible.
        """
        ids = list(self.network.node_ids())
        middle = len(ids) // 2
        return tuple(ids[:middle]), tuple(ids[middle:])

    # -- defaults ---------------------------------------------------------------------

    def on_message(self, message: Message) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(node_id={self.node_id!r}, n={self.quorum.total_replicas}, "
            f"f={self.quorum.fault_bound})"
        )


def equivocation_value(value: str) -> str:
    """The conflicting value a Byzantine proposer offers to the second half."""
    if not value:
        raise ProtocolError("cannot derive an equivocation value from an empty value")
    return f"{value}'"
