"""Replicated ledgers and agreement checking.

Each simulated replica appends the values it *commits* (decides) to its own
:class:`ReplicatedLedger`.  After a run, :func:`check_agreement` compares the
ledgers of the honest replicas: safety holds iff no two honest replicas
committed different values at the same sequence number.  This is the concrete
observable the end-to-end experiments use to demonstrate the Section II-C
condition.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Optional, Tuple

from repro.core.exceptions import ProtocolError


@dataclass
class ReplicatedLedger:
    """The committed log of one replica."""

    owner_id: str
    _entries: Dict[int, str] = field(default_factory=dict)
    _commit_times: Dict[int, float] = field(default_factory=dict)

    def commit(self, sequence: int, value: str, *, time: float = 0.0) -> None:
        """Record the decision ``value`` at ``sequence``.

        Committing the same value twice is a no-op; committing a *different*
        value at an already-decided sequence is a local invariant violation
        and raises immediately (an honest replica never does this; the
        simulator's Byzantine replicas simply do not maintain honest ledgers).
        """
        if sequence < 0:
            raise ProtocolError(f"sequence must be non-negative, got {sequence}")
        if not value:
            raise ProtocolError("committed value must not be empty")
        existing = self._entries.get(sequence)
        if existing is not None and existing != value:
            raise ProtocolError(
                f"replica {self.owner_id!r} would overwrite sequence {sequence}: "
                f"{existing!r} -> {value!r}"
            )
        if existing is None:
            self._entries[sequence] = value
            self._commit_times[sequence] = time

    def value_at(self, sequence: int) -> Optional[str]:
        """The committed value at ``sequence`` (``None`` when undecided)."""
        return self._entries.get(sequence)

    def commit_time(self, sequence: int) -> Optional[float]:
        """When ``sequence`` was committed (``None`` when undecided)."""
        return self._commit_times.get(sequence)

    def committed_sequences(self) -> Tuple[int, ...]:
        """All decided sequence numbers, ascending."""
        return tuple(sorted(self._entries))

    def entries(self) -> Dict[int, str]:
        """A copy of the committed log."""
        return dict(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, sequence: int) -> bool:
        return sequence in self._entries


@dataclass(frozen=True)
class AgreementReport:
    """Result of comparing the honest replicas' ledgers after a run.

    Attributes:
        safe: no two honest replicas decided differently at any sequence.
        conflicts: per-sequence mapping of the conflicting values observed
            (empty when safe).
        decided_sequences: sequences decided by at least one honest replica.
        fully_replicated_sequences: sequences decided by *every* honest
            replica (used as a liveness indicator for the single-shot runs).
    """

    safe: bool
    conflicts: Tuple[Tuple[int, Tuple[str, ...]], ...]
    decided_sequences: Tuple[int, ...]
    fully_replicated_sequences: Tuple[int, ...]


def check_agreement(
    ledgers: Mapping[str, ReplicatedLedger],
    *,
    honest_ids: Optional[Iterable[str]] = None,
) -> AgreementReport:
    """Compare ledgers and report safety.

    Args:
        ledgers: mapping replica id -> its ledger.
        honest_ids: the replicas whose ledgers count (defaults to all).
            Byzantine replicas' ledgers are irrelevant to safety.
    """
    if not ledgers:
        raise ProtocolError("at least one ledger is required")
    ids = list(honest_ids) if honest_ids is not None else list(ledgers)
    unknown = [replica_id for replica_id in ids if replica_id not in ledgers]
    if unknown:
        raise ProtocolError(f"no ledger recorded for replicas {unknown!r}")
    per_sequence: Dict[int, Dict[str, int]] = {}
    for replica_id in ids:
        for sequence, value in ledgers[replica_id].entries().items():
            per_sequence.setdefault(sequence, {})
            per_sequence[sequence][value] = per_sequence[sequence].get(value, 0) + 1
    conflicts = []
    fully_replicated = []
    for sequence in sorted(per_sequence):
        values = per_sequence[sequence]
        if len(values) > 1:
            conflicts.append((sequence, tuple(sorted(values))))
        if sum(values.values()) == len(ids) and len(values) == 1:
            fully_replicated.append(sequence)
    return AgreementReport(
        safe=not conflicts,
        conflicts=tuple(conflicts),
        decided_sequences=tuple(sorted(per_sequence)),
        fully_replicated_sequences=tuple(fully_replicated),
    )
