"""A uniform front end over the three BFT protocol simulations.

:func:`run_consensus` takes a replica population (or a plain list of replica
ids), a fault schedule and a protocol name, runs one consensus instance and
returns a :class:`ConsensusRunResult` with the fields every experiment needs:
did safety hold, did the honest replicas decide, and how many messages were
exchanged.  This is the function the end-to-end fault-independence
experiments and the examples call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Optional, Sequence, Tuple, Union

from repro.bft.hotstuff import HotStuffRun
from repro.bft.hybrid import HybridRun
from repro.bft.pbft import PbftRun
from repro.bft.quorum import QuorumModel, QuorumSpec
from repro.core.exceptions import ProtocolError
from repro.core.population import ReplicaPopulation
from repro.faults.injection import FaultSchedule
from repro.sim.network import NetworkConfig

#: Protocols understood by :func:`run_consensus`.
SUPPORTED_PROTOCOLS = ("pbft", "hotstuff", "hybrid")


@dataclass(frozen=True)
class ConsensusRunResult:
    """Protocol-independent summary of one consensus run.

    Attributes:
        protocol: which protocol ran ("pbft", "hotstuff" or "hybrid").
        quorum: the replica-count / quorum arithmetic used.
        byzantine_count: replicas Byzantine at time zero per the schedule.
        safety_ok: no two honest replicas decided conflicting values.
        all_honest_decided: every honest replica decided every sequence
            (single-view liveness indicator; only meaningful with an honest
            leader/primary).
        messages_sent: total protocol messages handed to the network.
        duration: simulated time at which the run stopped.
        within_fault_bound: whether the Byzantine count respected ``f``.
    """

    protocol: str
    quorum: QuorumSpec
    byzantine_count: int
    safety_ok: bool
    all_honest_decided: bool
    messages_sent: float
    duration: float
    within_fault_bound: bool


def _replica_ids(
    replicas: Union[ReplicaPopulation, Sequence[str]],
) -> Tuple[str, ...]:
    if isinstance(replicas, ReplicaPopulation):
        return replicas.replica_ids()
    ids = tuple(replicas)
    if not ids:
        raise ProtocolError("at least one replica id is required")
    return ids


def run_consensus(
    replicas: Union[ReplicaPopulation, Sequence[str]],
    fault_schedule: Optional[FaultSchedule] = None,
    *,
    protocol: str = "pbft",
    values: Sequence[str] = ("request-0",),
    network_config: Optional[NetworkConfig] = None,
    leader_id: Optional[str] = None,
    tee_compromised_ids: Iterable[str] = (),
    until: float = 10.0,
) -> ConsensusRunResult:
    """Run one consensus instance and summarize the outcome.

    Args:
        replicas: a replica population or a list of replica ids.
        fault_schedule: which replicas misbehave (defaults to none).
        protocol: "pbft", "hotstuff" or "hybrid".
        values: the values proposed (one consensus sequence per value).
        network_config: latency / loss model (defaults to a fast LAN-like one).
        leader_id: primary / leader override (defaults to the first replica).
        tee_compromised_ids: hybrid protocol only — replicas whose trusted
            component has been compromised (e.g. by a trusted-hardware
            vulnerability campaign).
        until: simulated-time horizon of the run.
    """
    if protocol not in SUPPORTED_PROTOCOLS:
        raise ProtocolError(
            f"unknown protocol {protocol!r}; expected one of {SUPPORTED_PROTOCOLS}"
        )
    ids = _replica_ids(replicas)
    schedule = fault_schedule if fault_schedule is not None else FaultSchedule.none()
    config = network_config if network_config is not None else NetworkConfig()
    byzantine_count = sum(1 for replica_id in ids if schedule.is_faulty_at(replica_id, 0.0))

    if protocol == "pbft":
        run = PbftRun(
            replica_ids=ids,
            fault_schedule=schedule,
            network_config=config,
            primary_id=leader_id,
        )
        result = run.execute(values, until=until)
    elif protocol == "hotstuff":
        run = HotStuffRun(
            replica_ids=ids,
            fault_schedule=schedule,
            network_config=config,
            leader_id=leader_id,
        )
        result = run.execute(values, until=until)
    else:
        run = HybridRun(
            replica_ids=ids,
            fault_schedule=schedule,
            network_config=config,
            primary_id=leader_id,
            tee_compromised_ids=frozenset(tee_compromised_ids),
        )
        result = run.execute(values, until=until)

    return ConsensusRunResult(
        protocol=protocol,
        quorum=result.quorum,
        byzantine_count=byzantine_count,
        safety_ok=result.safety_ok,
        all_honest_decided=result.all_honest_decided,
        messages_sent=result.messages_sent,
        duration=result.duration,
        within_fault_bound=result.quorum.tolerates(byzantine_count),
    )


def fault_bound_for(protocol: str, replica_count: int) -> int:
    """The tolerated fault count ``f`` of ``protocol`` with ``replica_count`` replicas."""
    if protocol not in SUPPORTED_PROTOCOLS:
        raise ProtocolError(
            f"unknown protocol {protocol!r}; expected one of {SUPPORTED_PROTOCOLS}"
        )
    model = QuorumModel.HYBRID if protocol == "hybrid" else QuorumModel.CLASSIC
    return QuorumSpec(total_replicas=replica_count, model=model).fault_bound
