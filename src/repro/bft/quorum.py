"""Quorum arithmetic for classic and hybrid BFT protocols.

Classic BFT protocols need ``n = 3f + 1`` replicas to tolerate ``f`` Byzantine
faults and use quorums of ``2f + 1``; hybrid protocols that rely on trusted
components to prevent equivocation (Damysus, MinBFT) need only ``n = 2f + 1``
replicas and quorums of ``f + 1``.  The resilience comparison between the two
is part of the paper's motivation for caring about trusted-hardware diversity.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, unique

from repro.core.exceptions import ProtocolError


@unique
class QuorumModel(str, Enum):
    """Which replica/quorum arithmetic applies."""

    CLASSIC = "classic"  # n = 3f + 1, quorum 2f + 1
    HYBRID = "hybrid"  # n = 2f + 1, quorum f + 1 (trusted components)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class QuorumSpec:
    """Replica count, fault bound and quorum size for one deployment."""

    total_replicas: int
    model: QuorumModel = QuorumModel.CLASSIC

    def __post_init__(self) -> None:
        if self.total_replicas < 1:
            raise ProtocolError(
                f"total replicas must be positive, got {self.total_replicas}"
            )
        minimum = 4 if self.model is QuorumModel.CLASSIC else 3
        if self.total_replicas < minimum:
            raise ProtocolError(
                f"{self.model.value} BFT needs at least {minimum} replicas, "
                f"got {self.total_replicas}"
            )

    @property
    def fault_bound(self) -> int:
        """``f`` — the number of tolerated Byzantine replicas."""
        if self.model is QuorumModel.CLASSIC:
            return (self.total_replicas - 1) // 3
        return (self.total_replicas - 1) // 2

    @property
    def quorum_size(self) -> int:
        """Votes needed to make progress while guaranteeing safety.

        The general formula is ``n - f``: it is the largest quorum that stays
        live with ``f`` silent replicas, and it guarantees the required quorum
        intersection (``f + 1`` replicas for the classic model, at least one
        replica for the hybrid model) for *any* ``n``, not only the exact
        ``3f + 1`` / ``2f + 1`` deployments.  For exact deployments it reduces
        to the familiar ``2f + 1`` (classic) and ``f + 1`` (hybrid).
        """
        return self.total_replicas - self.fault_bound

    @property
    def is_exact(self) -> bool:
        """True when ``n`` exactly matches ``3f+1`` (or ``2f+1``) for integer ``f``."""
        if self.model is QuorumModel.CLASSIC:
            return self.total_replicas == 3 * self.fault_bound + 1
        return self.total_replicas == 2 * self.fault_bound + 1

    def tolerates(self, byzantine_count: int) -> bool:
        """True when ``byzantine_count`` Byzantine replicas cannot break safety."""
        if byzantine_count < 0:
            raise ProtocolError(
                f"byzantine count must be non-negative, got {byzantine_count}"
            )
        return byzantine_count <= self.fault_bound

    def quorums_intersect_in_honest(self, byzantine_count: int) -> bool:
        """Whether any two quorums must share at least one honest replica.

        This is the standard quorum-intersection safety argument: two quorums
        of size ``q`` in a system of ``n`` replicas intersect in at least
        ``2q - n`` replicas; safety needs that intersection to contain at
        least one honest, non-equivocating replica.
        """
        if byzantine_count < 0:
            raise ProtocolError(
                f"byzantine count must be non-negative, got {byzantine_count}"
            )
        intersection = 2 * self.quorum_size - self.total_replicas
        return intersection > byzantine_count

    @classmethod
    def for_fault_bound(
        cls, fault_bound: int, *, model: QuorumModel = QuorumModel.CLASSIC
    ) -> "QuorumSpec":
        """The smallest deployment tolerating ``fault_bound`` Byzantine replicas."""
        if fault_bound < 1:
            raise ProtocolError(f"fault bound must be positive, got {fault_bound}")
        if model is QuorumModel.CLASSIC:
            return cls(total_replicas=3 * fault_bound + 1, model=model)
        return cls(total_replicas=2 * fault_bound + 1, model=model)

    def __str__(self) -> str:
        return (
            f"QuorumSpec(n={self.total_replicas}, f={self.fault_bound}, "
            f"quorum={self.quorum_size}, model={self.model.value})"
        )
