"""BFT consensus substrate running on the discrete-event simulator.

Three protocol families are provided, matching the systems the paper
references:

- :mod:`repro.bft.pbft` -- a PBFT-style three-phase protocol (pre-prepare /
  prepare / commit, all-to-all, n = 3f + 1);
- :mod:`repro.bft.hotstuff` -- a streamlined leader-driven protocol with
  linear message complexity (HotStuff-style phases);
- :mod:`repro.bft.hybrid` -- a hybrid protocol using trusted components to
  prevent equivocation (Damysus / MinBFT-style, n = 2f + 1); compromising a
  replica's trusted hardware re-enables equivocation, which is exactly the
  trusted-hardware fault-independence concern raised in Section III-A.

The point of these simulations is not throughput but *safety behaviour under
correlated faults*: runs driven by a :class:`~repro.faults.injection.FaultSchedule`
show that safety holds while the Section II-C condition holds and breaks once
a shared fault pushes the Byzantine power past the quorum bound.
"""

from repro.bft.hotstuff import HotStuffRun
from repro.bft.hybrid import HybridRun
from repro.bft.ledger import ReplicatedLedger, check_agreement
from repro.bft.pbft import PbftRun
from repro.bft.quorum import QuorumSpec
from repro.bft.runner import ConsensusRunResult, run_consensus

__all__ = [
    "ConsensusRunResult",
    "HotStuffRun",
    "HybridRun",
    "PbftRun",
    "QuorumSpec",
    "ReplicatedLedger",
    "check_agreement",
    "run_consensus",
]
