"""A PBFT-style three-phase consensus protocol on the simulator.

The protocol is the single-view core of PBFT (Castro & Liskov): the primary
broadcasts PRE-PREPARE, every replica broadcasts PREPARE after accepting the
primary's proposal, broadcasts COMMIT after collecting a quorum (2f+1) of
matching PREPAREs, and decides after a quorum of matching COMMITs.  View
changes are out of scope for the fault-independence experiments (safety, not
liveness under faulty primaries, is what the paper's condition is about), but
the Byzantine behaviours that threaten safety are modeled:

- a Byzantine primary equivocates, proposing conflicting values to the two
  halves of the replica set;
- Byzantine backups vote (PREPARE and COMMIT) for every value they observe.

With at most ``f`` Byzantine replicas no two conflicting quorums can form
(their intersection of ``f+1`` replicas would have to double-vote), so honest
ledgers always agree; with ``f+1`` or more the run produces a demonstrable
safety violation — exactly the cliff the Section II-C condition describes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.bft.ledger import AgreementReport, ReplicatedLedger, check_agreement
from repro.bft.quorum import QuorumModel, QuorumSpec
from repro.bft.replica import BftReplicaBase, equivocation_value
from repro.core.exceptions import ProtocolError
from repro.faults.injection import FaultSchedule
from repro.sim.events import Scheduler
from repro.sim.network import NetworkConfig, SimulatedNetwork
from repro.sim.node import Message

PRE_PREPARE = "PRE_PREPARE"
PREPARE = "PREPARE"
COMMIT = "COMMIT"


class PbftReplica(BftReplicaBase):
    """One PBFT replica (primary or backup)."""

    def __init__(
        self,
        node_id: str,
        quorum: QuorumSpec,
        *,
        primary_id: str,
        fault_schedule: Optional[FaultSchedule] = None,
    ) -> None:
        super().__init__(node_id, quorum, fault_schedule=fault_schedule)
        self.primary_id = primary_id
        self._pre_prepared: Dict[int, str] = {}
        self._prepare_sent: Dict[Tuple[int, str], bool] = {}
        self._commit_sent: Dict[Tuple[int, str], bool] = {}
        self._byz_endorsed: Dict[Tuple[int, str], bool] = {}

    @property
    def is_primary(self) -> bool:
        return self.node_id == self.primary_id

    # -- proposing -------------------------------------------------------------------

    def propose(self, sequence: int, value: str) -> None:
        """Primary entry point: start consensus on ``value`` at ``sequence``."""
        if not self.is_primary:
            raise ProtocolError(f"replica {self.node_id!r} is not the primary")
        if self.is_crashed_by_schedule() or self.crashed:
            return
        if self.is_byzantine():
            first_half, second_half = self.split_halves()
            conflicting = equivocation_value(value)
            for node_id in first_half:
                self.send(node_id, PRE_PREPARE, {"sequence": sequence, "value": value})
            for node_id in second_half:
                self.send(node_id, PRE_PREPARE, {"sequence": sequence, "value": conflicting})
            return
        self.broadcast(PRE_PREPARE, {"sequence": sequence, "value": value})

    # -- message handling ---------------------------------------------------------------

    def on_message(self, message: Message) -> None:
        if self.is_crashed_by_schedule():
            return
        sequence = int(message.get("sequence"))
        value = str(message.get("value"))
        if self.is_byzantine():
            # Byzantine replicas endorse every (sequence, value) pair they
            # ever observe, in both voting phases; this is the strongest
            # safety-threatening behaviour available without forging other
            # replicas' messages.
            self._byz_endorse(sequence, value)
            return
        if message.msg_type == PRE_PREPARE:
            self._handle_pre_prepare(message.sender, sequence, value)
        elif message.msg_type == PREPARE:
            self._handle_prepare(message.sender, sequence, value)
        elif message.msg_type == COMMIT:
            self._handle_commit(message.sender, sequence, value)
        else:
            raise ProtocolError(f"unexpected message type {message.msg_type!r}")

    def _handle_pre_prepare(self, sender: str, sequence: int, value: str) -> None:
        if sender != self.primary_id:
            # Only the primary may pre-prepare in this view; ignore others.
            return
        if sequence in self._pre_prepared:
            return  # accept only the first proposal per sequence
        self._pre_prepared[sequence] = value
        self._send_prepare_once(sequence, value)

    def _handle_prepare(self, sender: str, sequence: int, value: str) -> None:
        count = self.votes.record(PREPARE, sequence, value, sender)
        accepted = self._pre_prepared.get(sequence)
        if accepted != value:
            return
        if count >= self.quorum.quorum_size:
            self._send_commit_once(sequence, value)

    def _handle_commit(self, sender: str, sequence: int, value: str) -> None:
        count = self.votes.record(COMMIT, sequence, value, sender)
        accepted = self._pre_prepared.get(sequence)
        if accepted != value:
            return
        if count >= self.quorum.quorum_size:
            self.commit(sequence, value)

    # -- internals -------------------------------------------------------------------------

    def _byz_endorse(self, sequence: int, value: str) -> None:
        key = (sequence, value)
        if self._byz_endorsed.get(key):
            return
        self._byz_endorsed[key] = True
        self.broadcast(PREPARE, {"sequence": sequence, "value": value})
        self.broadcast(COMMIT, {"sequence": sequence, "value": value})

    def _send_prepare_once(self, sequence: int, value: str) -> None:
        key = (sequence, value)
        if self._prepare_sent.get(key):
            return
        self._prepare_sent[key] = True
        self.broadcast(PREPARE, {"sequence": sequence, "value": value})

    def _send_commit_once(self, sequence: int, value: str) -> None:
        key = (sequence, value)
        if self._commit_sent.get(key):
            return
        self._commit_sent[key] = True
        self.broadcast(COMMIT, {"sequence": sequence, "value": value})


@dataclass
class PbftRun:
    """Builds and executes one PBFT run over a set of replica ids."""

    replica_ids: Sequence[str]
    fault_schedule: FaultSchedule
    network_config: NetworkConfig = NetworkConfig()
    primary_id: Optional[str] = None

    def __post_init__(self) -> None:
        if len(self.replica_ids) < 4:
            raise ProtocolError("PBFT needs at least 4 replicas")
        if len(set(self.replica_ids)) != len(self.replica_ids):
            raise ProtocolError("replica ids must be unique")
        if self.primary_id is None:
            self.primary_id = self.replica_ids[0]
        if self.primary_id not in self.replica_ids:
            raise ProtocolError(f"primary {self.primary_id!r} is not a replica")

    def execute(
        self,
        values: Sequence[str] = ("request-0",),
        *,
        until: float = 10.0,
    ) -> "PbftRunResult":
        """Run consensus on the given values (one sequence number per value)."""
        if not values:
            raise ProtocolError("at least one value is required")
        scheduler = Scheduler()
        network = SimulatedNetwork(scheduler, self.network_config)
        quorum = QuorumSpec(total_replicas=len(self.replica_ids), model=QuorumModel.CLASSIC)
        replicas = {
            node_id: PbftReplica(
                node_id,
                quorum,
                primary_id=self.primary_id,
                fault_schedule=self.fault_schedule,
            )
            for node_id in self.replica_ids
        }
        network.register_all(replicas.values())
        network.start()
        primary = replicas[self.primary_id]
        for sequence, value in enumerate(values):
            scheduler.call_at(
                0.0,
                lambda seq=sequence, val=value: primary.propose(seq, val),
                label=f"propose:{sequence}",
            )
        scheduler.run(until=until)
        honest_ids = [
            node_id
            for node_id in self.replica_ids
            if not self.fault_schedule.is_faulty_at(node_id, 0.0)
        ]
        ledgers: Dict[str, ReplicatedLedger] = {
            node_id: replica.ledger for node_id, replica in replicas.items()
        }
        agreement = check_agreement(ledgers, honest_ids=honest_ids or None)
        return PbftRunResult(
            quorum=quorum,
            agreement=agreement,
            honest_ids=tuple(honest_ids),
            messages_sent=network.metrics.counter("messages_sent"),
            duration=scheduler.now,
            sequences=tuple(range(len(values))),
        )


@dataclass(frozen=True)
class PbftRunResult:
    """Outcome of one PBFT run."""

    quorum: QuorumSpec
    agreement: AgreementReport
    honest_ids: Tuple[str, ...]
    messages_sent: float
    duration: float
    sequences: Tuple[int, ...]

    @property
    def safety_ok(self) -> bool:
        """No two honest replicas decided different values at any sequence."""
        return self.agreement.safe

    @property
    def all_honest_decided(self) -> bool:
        """Every sequence was decided identically by every honest replica."""
        return set(self.sequences) <= set(self.agreement.fully_replicated_sequences)
