"""Selfish-mining baseline (Eyal & Sirer, FC 2014).

The paper cites selfish mining as the canonical prior work on hash-power
bounds ("Majority is not enough").  This module provides a compact
state-machine simulation of the selfish strategy so the reproduction includes
the baseline the paper positions itself against: selfish mining is about an
attacker who *owns* its hash power, whereas the paper's concern is an attacker
who *inherits* honest hash power through shared faults.  Comparing the two on
the same power fractions makes that distinction concrete.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.exceptions import ProtocolError


@dataclass(frozen=True)
class SelfishMiningResult:
    """Outcome of a selfish-mining simulation.

    Attributes:
        alpha: the selfish pool's hash-power fraction.
        gamma: fraction of honest miners that mine on the selfish block during
            a tie (the network-visibility parameter of Eyal & Sirer).
        rounds: number of block-finding events simulated.
        selfish_blocks: blocks the selfish pool got onto the canonical chain.
        honest_blocks: canonical blocks mined honestly.
        relative_revenue: selfish share of canonical blocks; selfish mining is
            profitable when this exceeds ``alpha``.
    """

    alpha: float
    gamma: float
    rounds: int
    selfish_blocks: int
    honest_blocks: int

    @property
    def relative_revenue(self) -> float:
        total = self.selfish_blocks + self.honest_blocks
        if total == 0:
            return 0.0
        return self.selfish_blocks / total

    @property
    def profitable(self) -> bool:
        """True when the strategy beats honest mining for this ``alpha``."""
        return self.relative_revenue > self.alpha


def selfish_mining_revenue(
    alpha: float,
    *,
    gamma: float = 0.0,
    rounds: int = 20_000,
    seed: int = 0,
) -> SelfishMiningResult:
    """Simulate the Eyal-Sirer selfish-mining state machine.

    Args:
        alpha: selfish pool's hash-power fraction (0 < alpha < 0.5).
        gamma: share of the honest network that mines on the selfish branch
            during a 1-1 tie.
        rounds: number of block discoveries to simulate.
        seed: RNG seed.
    """
    if not 0.0 < alpha < 0.5:
        raise ProtocolError(f"alpha must be in (0, 0.5), got {alpha}")
    if not 0.0 <= gamma <= 1.0:
        raise ProtocolError(f"gamma must be in [0, 1], got {gamma}")
    if rounds <= 0:
        raise ProtocolError(f"round count must be positive, got {rounds}")

    rng = random.Random(seed)
    private_lead = 0  # length of the selfish pool's private branch advantage
    selfish_blocks = 0
    honest_blocks = 0
    tie = False  # both branches of length 1 are public

    for _ in range(rounds):
        selfish_finds = rng.random() < alpha
        if selfish_finds:
            if tie:
                # The pool extends its own branch and wins the race: it
                # publishes 2 blocks, the honest competing block is orphaned.
                selfish_blocks += 2
                tie = False
                private_lead = 0
            else:
                private_lead += 1
        else:
            if tie:
                # An honest miner extends one of the two public branches.
                if rng.random() < gamma:
                    # Extends the selfish branch: pool keeps its block.
                    selfish_blocks += 1
                    honest_blocks += 1
                else:
                    honest_blocks += 2
                tie = False
                private_lead = 0
            elif private_lead == 0:
                honest_blocks += 1
            elif private_lead == 1:
                # Honest network catches up; the pool publishes and a tie starts.
                tie = True
                private_lead = 0
            elif private_lead == 2:
                # Pool publishes its whole branch and orphans the honest block.
                selfish_blocks += 2
                private_lead = 0
            else:
                # Lead > 2: the pool reveals one block and keeps mining privately.
                selfish_blocks += 1
                private_lead -= 1

    return SelfishMiningResult(
        alpha=alpha,
        gamma=gamma,
        rounds=rounds,
        selfish_blocks=selfish_blocks,
        honest_blocks=honest_blocks,
    )


def honest_mining_revenue(alpha: float) -> float:
    """Expected canonical-chain share of an honest miner with power ``alpha``."""
    if not 0.0 <= alpha <= 1.0:
        raise ProtocolError(f"alpha must be in [0, 1], got {alpha}")
    return alpha
