"""Decentralized mining pools and non-outsourceable mining.

Section III-A's "possible solutions" to the pool oligopoly are
non-outsourceable mining puzzles and decentralized mining pools (SmartPool):
both return block-template control (and thus the consensus "vote") to the
individual miners instead of the pool operator, even though payout pooling may
remain.  From the fault-independence point of view this is a diversity
transformation: the pool's aggregated voting power is split back into the
members' individual fault domains.

:func:`decentralize_pools` applies that transformation to a pool landscape and
returns the resulting replica population; :func:`decentralization_report`
summarizes the entropy / dominance / takeover effect so experiments can
quantify how much the mitigation buys.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.core.distribution import ConfigurationDistribution
from repro.core.exceptions import ProtocolError
from repro.core.population import ReplicaPopulation
from repro.core.power import PowerRegime
from repro.nakamoto.miner import Miner, miners_as_population
from repro.nakamoto.pool import MiningPool


@dataclass(frozen=True)
class DecentralizationReport:
    """Before/after comparison of decentralizing a set of pools.

    Attributes:
        pooled_entropy_bits: census entropy when pool operators control the
            aggregated power (one fault domain per pool).
        decentralized_entropy_bits: census entropy when every member mines
            non-outsourceably (one fault domain per member).
        pooled_largest_share: largest single fault domain before.
        decentralized_largest_share: largest single fault domain after.
        pooled_replicas: number of effective replicas before.
        decentralized_replicas: number of effective replicas after.
    """

    pooled_entropy_bits: float
    decentralized_entropy_bits: float
    pooled_largest_share: float
    decentralized_largest_share: float
    pooled_replicas: int
    decentralized_replicas: int

    @property
    def entropy_gain_bits(self) -> float:
        """How much diversity the mitigation added."""
        return self.decentralized_entropy_bits - self.pooled_entropy_bits

    @property
    def breaks_operator_majority(self) -> bool:
        """Whether decentralization pushed the largest fault domain below 50%."""
        return (
            self.pooled_largest_share >= 0.5
            and self.decentralized_largest_share < 0.5
        )


def pooled_population(
    pools: Sequence[MiningPool], solo_miners: Sequence[Miner] = ()
) -> ReplicaPopulation:
    """One replica per pool operator (plus solo miners) — the status quo."""
    if not pools and not solo_miners:
        raise ProtocolError("at least one pool or solo miner is required")
    replicas = [pool.as_replica() for pool in pools] + [
        miner.as_replica() for miner in solo_miners
    ]
    return ReplicaPopulation(replicas, regime=PowerRegime.HASHRATE)


def decentralize_pools(
    pools: Sequence[MiningPool],
    solo_miners: Sequence[Miner] = (),
    *,
    decentralized_pool_ids: Iterable[str] = None,
) -> ReplicaPopulation:
    """Split pool power back to the members for the selected pools.

    Args:
        pools: the pool landscape.
        solo_miners: miners outside any pool.
        decentralized_pool_ids: pools converted to decentralized operation
            (``None`` = all of them).  Non-selected pools keep operating as a
            single fault domain.

    Returns:
        The effective replica population after the transformation: one replica
        per member miner of every decentralized pool, one replica per
        remaining centralized pool, one per solo miner.
    """
    if not pools and not solo_miners:
        raise ProtocolError("at least one pool or solo miner is required")
    selected = (
        {pool.pool_id for pool in pools}
        if decentralized_pool_ids is None
        else set(decentralized_pool_ids)
    )
    unknown = selected - {pool.pool_id for pool in pools}
    if unknown:
        raise ProtocolError(f"unknown pools: {sorted(unknown)}")
    miners: List[Miner] = list(solo_miners)
    for pool in pools:
        if pool.pool_id in selected:
            if not pool.members:
                raise ProtocolError(
                    f"pool {pool.pool_id!r} has no members to decentralize to"
                )
            miners.extend(pool.members)
        else:
            miners.append(pool.as_miner())
    return miners_as_population(miners)


def decentralization_report(
    pools: Sequence[MiningPool],
    solo_miners: Sequence[Miner] = (),
    *,
    decentralized_pool_ids: Iterable[str] = None,
) -> DecentralizationReport:
    """Quantify the diversity effect of decentralizing the selected pools."""
    before = pooled_population(pools, solo_miners).configuration_census()
    after_population = decentralize_pools(
        pools, solo_miners, decentralized_pool_ids=decentralized_pool_ids
    )
    after = after_population.configuration_census()
    return DecentralizationReport(
        pooled_entropy_bits=before.entropy(),
        decentralized_entropy_bits=after.entropy(),
        pooled_largest_share=max(before.probabilities()),
        decentralized_largest_share=max(after.probabilities()),
        pooled_replicas=before.support_size(),
        decentralized_replicas=after.support_size(),
    )


def operator_takeover_fraction(
    pools: Sequence[MiningPool],
    solo_miners: Sequence[Miner],
    colluding_operators: int,
    *,
    decentralized_pool_ids: Iterable[str] = None,
) -> float:
    """Largest hash-power fraction a coalition of operators controls.

    Before decentralization an "operator" is a pool operator (or solo miner);
    after, the decentralized pools' operators control nothing and their
    members count individually.  This is the Nakamoto analogue of
    Proposition 3's rational-operator analysis.
    """
    if colluding_operators < 0:
        raise ProtocolError(
            f"colluding operator count must be non-negative, got {colluding_operators}"
        )
    population = decentralize_pools(
        pools, solo_miners, decentralized_pool_ids=decentralized_pool_ids
    )
    total = population.total_power()
    powers = sorted((replica.power for replica in population), reverse=True)
    if total <= 0:
        return 0.0
    return min(1.0, sum(powers[:colluding_operators]) / total)
