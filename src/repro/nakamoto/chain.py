"""The block tree and longest-chain fork-choice rule."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.core.exceptions import ProtocolError
from repro.nakamoto.block import Block


class BlockTree:
    """All known blocks, organized as a tree rooted at genesis.

    The fork-choice rule is longest chain (greatest height), with ties broken
    by earliest arrival (insertion order), matching Bitcoin's first-seen
    behaviour.
    """

    def __init__(self) -> None:
        genesis = Block.genesis()
        self._blocks: Dict[str, Block] = {genesis.block_id: genesis}
        self._children: Dict[str, List[str]] = {genesis.block_id: []}
        self._arrival: Dict[str, int] = {genesis.block_id: 0}
        self._arrival_counter = 1
        self._genesis_id = genesis.block_id

    # -- mutation ----------------------------------------------------------------

    def add(self, block: Block) -> None:
        """Insert a block whose parent is already known."""
        if block.block_id in self._blocks:
            raise ProtocolError(f"block {block.block_id!r} already in tree")
        if block.parent_id is None:
            raise ProtocolError("cannot add a second genesis block")
        if block.parent_id not in self._blocks:
            raise ProtocolError(f"unknown parent {block.parent_id!r}")
        parent = self._blocks[block.parent_id]
        if block.height != parent.height + 1:
            raise ProtocolError(
                f"block height {block.height} does not extend parent height {parent.height}"
            )
        self._blocks[block.block_id] = block
        self._children[block.block_id] = []
        self._children[block.parent_id].append(block.block_id)
        self._arrival[block.block_id] = self._arrival_counter
        self._arrival_counter += 1

    # -- queries -----------------------------------------------------------------

    @property
    def genesis_id(self) -> str:
        return self._genesis_id

    def block(self, block_id: str) -> Block:
        try:
            return self._blocks[block_id]
        except KeyError:
            raise ProtocolError(f"unknown block {block_id!r}") from None

    def contains(self, block_id: str) -> bool:
        return block_id in self._blocks

    def children_of(self, block_id: str) -> Tuple[str, ...]:
        return tuple(self._children.get(block_id, ()))

    def tip(self) -> Block:
        """The head of the canonical (longest) chain."""
        best = self._blocks[self._genesis_id]
        for block in self._blocks.values():
            if block.height > best.height or (
                block.height == best.height
                and self._arrival[block.block_id] < self._arrival[best.block_id]
            ):
                best = block
        return best

    def height(self) -> int:
        """Height of the canonical chain."""
        return self.tip().height

    def main_chain(self) -> Tuple[Block, ...]:
        """Blocks of the canonical chain, genesis first."""
        chain: List[Block] = []
        current: Optional[Block] = self.tip()
        while current is not None:
            chain.append(current)
            current = (
                self._blocks[current.parent_id] if current.parent_id is not None else None
            )
        return tuple(reversed(chain))

    def main_chain_ids(self) -> Tuple[str, ...]:
        return tuple(block.block_id for block in self.main_chain())

    def blocks_by_miner(self, *, main_chain_only: bool = True) -> Dict[str, int]:
        """Number of blocks per miner (excluding genesis)."""
        source = self.main_chain() if main_chain_only else tuple(self._blocks.values())
        counts: Dict[str, int] = {}
        for block in source:
            if block.height == 0:
                continue
            counts[block.miner_id] = counts.get(block.miner_id, 0) + 1
        return counts

    def fork_count(self) -> int:
        """Number of blocks not on the canonical chain (stale/orphaned blocks)."""
        main = set(self.main_chain_ids())
        return sum(1 for block_id in self._blocks if block_id not in main)

    def common_prefix_with(self, other_tip_id: str) -> Block:
        """The deepest common ancestor of the canonical tip and ``other_tip_id``."""
        ancestors = set()
        current: Optional[Block] = self.tip()
        while current is not None:
            ancestors.add(current.block_id)
            current = (
                self._blocks[current.parent_id] if current.parent_id is not None else None
            )
        cursor = self.block(other_tip_id)
        while cursor.block_id not in ancestors:
            if cursor.parent_id is None:
                break
            cursor = self.block(cursor.parent_id)
        return cursor

    def confirmation_depth(self, block_id: str) -> int:
        """How many canonical blocks (inclusive) build on ``block_id``.

        Returns 0 when the block is not on the canonical chain.
        """
        main = self.main_chain_ids()
        if block_id not in main:
            return 0
        index = main.index(block_id)
        return len(main) - index

    # -- dunder --------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._blocks)

    def __iter__(self) -> Iterator[Block]:
        return iter(self._blocks.values())

    def __contains__(self, block_id: str) -> bool:
        return block_id in self._blocks

    def __repr__(self) -> str:
        return f"BlockTree(blocks={len(self)}, height={self.height()}, forks={self.fork_count()})"
