"""Miners: the replicas of the Nakamoto regime.

A miner holds hash power and runs a software stack just like any other
replica; its :class:`~repro.core.configuration.ReplicaConfiguration` is what
ties the Nakamoto substrate back to the fault-independence analysis (a
vulnerability in a mining client compromises the hash power of every miner
running it).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.core.configuration import ReplicaConfiguration
from repro.core.exceptions import ProtocolError
from repro.core.population import Replica, ReplicaPopulation
from repro.core.power import PowerRegime


@dataclass(frozen=True)
class Miner:
    """One mining participant.

    Attributes:
        miner_id: unique identifier.
        hash_power: absolute hash power (arbitrary units; only ratios matter).
        configuration: the miner's software/hardware stack (defaults to a
            unique labeled configuration, the paper's best-case assumption).
        compromised: whether the miner is currently attacker-controlled.
        pool_id: the mining pool this miner contributes to (``None`` = solo).
    """

    miner_id: str
    hash_power: float
    configuration: Optional[ReplicaConfiguration] = None
    compromised: bool = False
    pool_id: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.miner_id:
            raise ProtocolError("miner id must not be empty")
        if self.hash_power < 0:
            raise ProtocolError(f"hash power must be non-negative, got {self.hash_power}")
        if self.configuration is None:
            object.__setattr__(
                self, "configuration", ReplicaConfiguration.labeled(self.miner_id)
            )

    def with_compromised(self, compromised: bool) -> "Miner":
        """A copy of this miner with the compromise flag set."""
        return replace(self, compromised=compromised)

    def with_hash_power(self, hash_power: float) -> "Miner":
        """A copy of this miner with different hash power."""
        return replace(self, hash_power=hash_power)

    def as_replica(self) -> Replica:
        """View this miner as a generic replica (power = hash power)."""
        return Replica(
            replica_id=self.miner_id,
            configuration=self.configuration,
            power=self.hash_power,
        )


def miners_as_population(miners) -> ReplicaPopulation:
    """Convert a collection of miners into a :class:`ReplicaPopulation`.

    The resulting population uses the hashrate power regime so the entropy and
    resilience analysis applies unchanged.
    """
    miners = list(miners)
    if not miners:
        raise ProtocolError("at least one miner is required")
    return ReplicaPopulation(
        (miner.as_replica() for miner in miners), regime=PowerRegime.HASHRATE
    )
