"""Blocks of the simulated proof-of-work chain."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.exceptions import ProtocolError

#: Identifier of the genesis block.
GENESIS_ID = "genesis"


@dataclass(frozen=True)
class Block:
    """One mined block.

    Attributes:
        block_id: unique identifier (synthetic hash).
        parent_id: the block this one extends (``None`` only for genesis).
        height: distance from genesis (genesis has height 0).
        miner_id: who mined it ("-" for genesis).
        timestamp: simulated time at which it was mined.
        is_attacker_block: whether it belongs to an attacker's private chain.
    """

    block_id: str
    parent_id: Optional[str]
    height: int
    miner_id: str
    timestamp: float = 0.0
    is_attacker_block: bool = False

    def __post_init__(self) -> None:
        if not self.block_id:
            raise ProtocolError("block id must not be empty")
        if self.height < 0:
            raise ProtocolError(f"height must be non-negative, got {self.height}")
        if self.height == 0 and self.parent_id is not None:
            raise ProtocolError("only the genesis block may have no parent")
        if self.height > 0 and not self.parent_id:
            raise ProtocolError("non-genesis blocks need a parent")
        if self.timestamp < 0:
            raise ProtocolError(f"timestamp must be non-negative, got {self.timestamp}")

    @classmethod
    def genesis(cls) -> "Block":
        """The canonical genesis block."""
        return cls(block_id=GENESIS_ID, parent_id=None, height=0, miner_id="-")

    def child(
        self,
        block_id: str,
        miner_id: str,
        *,
        timestamp: float = 0.0,
        is_attacker_block: bool = False,
    ) -> "Block":
        """A new block extending this one."""
        return Block(
            block_id=block_id,
            parent_id=self.block_id,
            height=self.height + 1,
            miner_id=miner_id,
            timestamp=timestamp,
            is_attacker_block=is_attacker_block,
        )

    def __str__(self) -> str:
        return f"Block({self.block_id}, h={self.height}, miner={self.miner_id})"
