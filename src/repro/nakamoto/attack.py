"""Analytic attack-success models for Nakamoto consensus.

Two analyses tie the Nakamoto substrate back to the paper's safety condition:

- :func:`double_spend_success_probability` -- the classic race analysis
  (Nakamoto's appendix / Rosenfeld): the probability that an attacker with
  hash-power fraction ``q`` eventually reverts a transaction buried under
  ``z`` confirmations.
- :func:`majority_takeover` -- the shared-vulnerability route to a majority:
  given the mining-pool landscape and an exploit campaign outcome, how much
  hash power does the attacker control and does it cross the 50% bound
  (the Nakamoto analogue of exceeding ``f``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Sequence, Tuple

from repro.core.exceptions import AnalysisError


def double_spend_success_probability(attacker_fraction: float, confirmations: int) -> float:
    """Probability that a ``q``-fraction attacker reverts ``z`` confirmations.

    Uses the standard negative-binomial race formulation (Rosenfeld 2014,
    equivalent to Nakamoto's appendix in the limit): with ``p = 1 - q`` the
    honest fraction, the attacker wins outright when ``q >= p``; otherwise

    ``P = 1 - sum_{k=0}^{z} [C(z+k-1, k) (p^z q^k - p^k q^z)]``.

    Args:
        attacker_fraction: the attacker's share ``q`` of total hash power.
        confirmations: the merchant's confirmation depth ``z``.
    """
    if not 0.0 <= attacker_fraction <= 1.0:
        raise AnalysisError(
            f"attacker fraction must be in [0, 1], got {attacker_fraction}"
        )
    if confirmations < 0:
        raise AnalysisError(f"confirmations must be non-negative, got {confirmations}")
    q = attacker_fraction
    p = 1.0 - q
    if q >= p:
        return 1.0
    if q == 0.0:
        return 0.0
    if confirmations == 0:
        return 1.0
    total = 0.0
    for k in range(confirmations + 1):
        binom = math.comb(confirmations + k - 1, k)
        total += binom * (p**confirmations * q**k - q**confirmations * p**k)
    probability = 1.0 - total
    return min(1.0, max(0.0, probability))


def confirmations_for_risk(
    attacker_fraction: float, *, risk: float = 0.001, max_confirmations: int = 1000
) -> int:
    """Smallest confirmation depth keeping the double-spend risk below ``risk``.

    Raises :class:`AnalysisError` when no depth up to ``max_confirmations``
    suffices (which is always the case once the attacker has a majority).
    """
    if not 0.0 < risk < 1.0:
        raise AnalysisError(f"risk must be in (0, 1), got {risk}")
    if max_confirmations <= 0:
        raise AnalysisError(
            f"max confirmations must be positive, got {max_confirmations}"
        )
    for z in range(1, max_confirmations + 1):
        if double_spend_success_probability(attacker_fraction, z) <= risk:
            return z
    raise AnalysisError(
        f"no confirmation depth up to {max_confirmations} achieves risk {risk} "
        f"against a {attacker_fraction:.0%} attacker"
    )


@dataclass(frozen=True)
class MajorityTakeoverReport:
    """Result of a shared-vulnerability majority-takeover analysis.

    Attributes:
        compromised_fraction: hash-power fraction the attacker controls.
        majority: whether the attacker holds at least half the hash power.
        double_spend_probability: success probability against the standard
            6-confirmation rule given the compromised fraction.
        compromised_pools: the pools (or miners) whose power was captured.
    """

    compromised_fraction: float
    majority: bool
    double_spend_probability: float
    compromised_pools: Tuple[str, ...]


def majority_takeover(
    power_by_participant: Mapping[str, float],
    compromised_ids: Sequence[str],
    *,
    confirmations: int = 6,
) -> MajorityTakeoverReport:
    """Evaluate how close a compromise puts the attacker to a hash majority.

    Args:
        power_by_participant: hash power per pool / miner.
        compromised_ids: participants whose power the attacker now controls
            (e.g. the outcome of an exploit campaign against pool software).
        confirmations: confirmation depth for the double-spend probability.
    """
    if not power_by_participant:
        raise AnalysisError("power mapping must not be empty")
    total = sum(power_by_participant.values())
    if total <= 0:
        raise AnalysisError("total hash power must be positive")
    unknown = [pid for pid in compromised_ids if pid not in power_by_participant]
    if unknown:
        raise AnalysisError(f"unknown participants: {unknown!r}")
    # Sorted, not raw set order: float summation order must not depend on
    # the per-process string-hash seed, or repeat runs drift by an ulp.
    compromised_power = sum(
        power_by_participant[pid] for pid in sorted(set(compromised_ids))
    )
    fraction = compromised_power / total
    return MajorityTakeoverReport(
        compromised_fraction=fraction,
        majority=fraction >= 0.5,
        double_spend_probability=double_spend_success_probability(fraction, confirmations),
        compromised_pools=tuple(sorted(set(compromised_ids))),
    )
