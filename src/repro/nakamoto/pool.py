"""Mining pools: the oligopoly structure behind Example 1.

A pool aggregates the hash power of its member miners; the *pool operator*
chooses what its aggregated power mines, so from a fault-independence point of
view the pool is one replica with the combined power (Section III-A's point
about delegation reducing diversity).  ``pools_from_snapshot`` builds the
02-Feb-2023 pool landscape used by the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.configuration import ReplicaConfiguration
from repro.core.exceptions import ProtocolError
from repro.core.population import Replica, ReplicaPopulation
from repro.core.power import PowerRegime
from repro.datasets.bitcoin_pools import BITCOIN_POOL_SHARES_FEB_2023, RESIDUAL_SHARE_FEB_2023
from repro.nakamoto.miner import Miner


@dataclass
class MiningPool:
    """One mining pool and its member miners.

    Attributes:
        pool_id: unique pool identifier.
        operator_configuration: the configuration of the pool's coordination
            software (the fault domain that matters for pool-level attacks).
        members: miners contributing hash power to the pool.
    """

    pool_id: str
    operator_configuration: Optional[ReplicaConfiguration] = None
    members: List[Miner] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.pool_id:
            raise ProtocolError("pool id must not be empty")
        if self.operator_configuration is None:
            self.operator_configuration = ReplicaConfiguration.labeled(self.pool_id)

    # -- membership ---------------------------------------------------------------

    def add_member(self, miner: Miner) -> None:
        """Add a miner to the pool (rewrites its pool id)."""
        if any(member.miner_id == miner.miner_id for member in self.members):
            raise ProtocolError(f"miner {miner.miner_id!r} already in pool {self.pool_id!r}")
        self.members.append(
            Miner(
                miner_id=miner.miner_id,
                hash_power=miner.hash_power,
                configuration=miner.configuration,
                compromised=miner.compromised,
                pool_id=self.pool_id,
            )
        )

    def total_hash_power(self) -> float:
        """Combined hash power of the pool."""
        return sum(member.hash_power for member in self.members)

    def as_replica(self) -> Replica:
        """The pool viewed as a single replica with the combined power."""
        return Replica(
            replica_id=self.pool_id,
            configuration=self.operator_configuration,
            power=self.total_hash_power(),
        )

    def as_miner(self) -> Miner:
        """The pool viewed as a single (aggregate) miner."""
        return Miner(
            miner_id=self.pool_id,
            hash_power=self.total_hash_power(),
            configuration=self.operator_configuration,
        )

    def __len__(self) -> int:
        return len(self.members)


def pools_from_snapshot(
    *,
    residual_miners: int = 0,
    members_per_pool: int = 1,
) -> Tuple[List[MiningPool], List[Miner]]:
    """Build the 02-Feb-2023 Bitcoin pool landscape.

    Args:
        residual_miners: how many solo miners share the residual 0.87% of
            hash power (0 omits the residual entirely).
        members_per_pool: how many equal-power member miners each pool has
            (1 keeps the pool-as-single-miner abstraction of Figure 1).

    Returns:
        ``(pools, solo_miners)``.
    """
    if residual_miners < 0:
        raise ProtocolError(f"residual miners must be non-negative, got {residual_miners}")
    if members_per_pool <= 0:
        raise ProtocolError(f"members per pool must be positive, got {members_per_pool}")
    pools: List[MiningPool] = []
    for pool_name, share in BITCOIN_POOL_SHARES_FEB_2023:
        pool = MiningPool(pool_id=pool_name)
        member_power = share / members_per_pool
        for index in range(members_per_pool):
            pool.add_member(
                Miner(miner_id=f"{pool_name}-member-{index}", hash_power=member_power)
            )
        pools.append(pool)
    solo: List[Miner] = []
    if residual_miners:
        per_miner = RESIDUAL_SHARE_FEB_2023 / residual_miners
        solo = [
            Miner(miner_id=f"solo-{index}", hash_power=per_miner)
            for index in range(residual_miners)
        ]
    return pools, solo


def pool_population(
    pools: Sequence[MiningPool],
    solo_miners: Sequence[Miner] = (),
) -> ReplicaPopulation:
    """Population with one replica per pool (plus solo miners).

    This is the granularity Example 1 analyses: pools are the effective
    replicas because their operators control the aggregated power.
    """
    replicas = [pool.as_replica() for pool in pools] + [
        miner.as_replica() for miner in solo_miners
    ]
    if not replicas:
        raise ProtocolError("at least one pool or miner is required")
    return ReplicaPopulation(replicas, regime=PowerRegime.HASHRATE)


def compromised_power_fraction(
    pools: Sequence[MiningPool],
    solo_miners: Sequence[Miner],
    compromised_pool_ids: Sequence[str],
) -> float:
    """Fraction of total hash power controlled via the compromised pools."""
    compromised_set = set(compromised_pool_ids)
    unknown = compromised_set - {pool.pool_id for pool in pools}
    if unknown:
        raise ProtocolError(f"unknown pools: {sorted(unknown)}")
    total = sum(pool.total_hash_power() for pool in pools) + sum(
        miner.hash_power for miner in solo_miners
    )
    if total <= 0:
        raise ProtocolError("total hash power must be positive")
    compromised = sum(
        pool.total_hash_power() for pool in pools if pool.pool_id in compromised_set
    )
    return compromised / total
