"""Stochastic mining simulation with an optional attacker coalition.

The simulation abstracts proof of work as an exponential race: block
inter-arrival times are exponentially distributed and each block is won by a
miner with probability proportional to its hash power (the standard
memoryless PoW model).  Honest miners always extend the longest public chain;
the attacker coalition (compromised miners/pools) secretly extends a private
fork from a chosen point and publishes it once it is longer than the public
chain — the classic double-spend strategy.

This gives the end-to-end Nakamoto counterpart of the BFT safety runs: when a
shared vulnerability hands the attacker more than half of the hash power, the
private fork overtakes the public chain with high probability and committed
(confirmed) blocks are reverted.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.exceptions import ProtocolError
from repro.nakamoto.block import Block
from repro.nakamoto.chain import BlockTree
from repro.nakamoto.miner import Miner


@dataclass(frozen=True)
class MiningSimulationResult:
    """Outcome of one mining simulation run.

    Attributes:
        total_blocks: blocks mined in total (public + private).
        main_chain_length: height of the final canonical chain.
        blocks_by_miner: canonical-chain blocks per miner id.
        attacker_fraction: the attacker coalition's share of hash power.
        attack_launched: whether an attacker fork was attempted.
        attack_succeeded: whether the attacker fork overtook the public chain
            and reverted at least ``confirmations`` blocks.
        reverted_blocks: number of previously-canonical blocks reverted by the
            published attacker fork.
        revenue_share: fraction of canonical blocks mined by the attacker.
    """

    total_blocks: int
    main_chain_length: int
    blocks_by_miner: Tuple[Tuple[str, int], ...]
    attacker_fraction: float
    attack_launched: bool
    attack_succeeded: bool
    reverted_blocks: int
    revenue_share: float


class MiningSimulation:
    """Simulates honest mining plus an optional private-fork attack."""

    def __init__(
        self,
        miners: Sequence[Miner],
        *,
        seed: int = 0,
        block_interval: float = 600.0,
    ) -> None:
        if not miners:
            raise ProtocolError("at least one miner is required")
        if block_interval <= 0:
            raise ProtocolError(f"block interval must be positive, got {block_interval}")
        powers = [miner.hash_power for miner in miners]
        if sum(powers) <= 0:
            raise ProtocolError("total hash power must be positive")
        self._miners = list(miners)
        self._rng = random.Random(seed)
        self._block_interval = block_interval

    # -- helpers -----------------------------------------------------------------

    def _pick_winner(self, miners: Sequence[Miner]) -> Miner:
        weights = [miner.hash_power for miner in miners]
        return self._rng.choices(miners, weights=weights, k=1)[0]

    def attacker_fraction(self, attacker_ids: Iterable[str]) -> float:
        """Hash-power fraction controlled by the given miners."""
        attacker_set = set(attacker_ids)
        total = sum(miner.hash_power for miner in self._miners)
        attacker = sum(
            miner.hash_power for miner in self._miners if miner.miner_id in attacker_set
        )
        return attacker / total if total > 0 else 0.0

    # -- honest-only mining ---------------------------------------------------------

    def mine_honest(self, blocks: int) -> MiningSimulationResult:
        """Mine ``blocks`` blocks with everyone honest (no fork attack)."""
        if blocks <= 0:
            raise ProtocolError(f"block count must be positive, got {blocks}")
        tree = BlockTree()
        tip = tree.block(tree.genesis_id)
        time = 0.0
        for index in range(blocks):
            time += self._rng.expovariate(1.0 / self._block_interval)
            winner = self._pick_winner(self._miners)
            block = tip.child(f"blk-{index}", winner.miner_id, timestamp=time)
            tree.add(block)
            tip = block
        by_miner = tree.blocks_by_miner()
        return MiningSimulationResult(
            total_blocks=blocks,
            main_chain_length=tree.height(),
            blocks_by_miner=tuple(sorted(by_miner.items())),
            attacker_fraction=0.0,
            attack_launched=False,
            attack_succeeded=False,
            reverted_blocks=0,
            revenue_share=0.0,
        )

    # -- double-spend attack -----------------------------------------------------------

    def run_double_spend(
        self,
        attacker_ids: Iterable[str],
        *,
        confirmations: int = 6,
        max_blocks: int = 2000,
        give_up_deficit: int = 20,
    ) -> MiningSimulationResult:
        """Run a private-fork double-spend attempt.

        The attacker coalition forks from the block that the merchant's
        transaction lands in, waits for ``confirmations`` public blocks, then
        keeps extending its private chain until it is longer than the public
        chain (success: the public suffix is reverted) or it falls
        ``give_up_deficit`` blocks behind / ``max_blocks`` are mined (failure).
        """
        if confirmations < 1:
            raise ProtocolError(f"confirmations must be positive, got {confirmations}")
        if max_blocks <= confirmations:
            raise ProtocolError("max blocks must exceed the confirmation depth")
        if give_up_deficit < 1:
            raise ProtocolError(f"give-up deficit must be positive, got {give_up_deficit}")
        attacker_set = set(attacker_ids)
        attackers = [m for m in self._miners if m.miner_id in attacker_set]
        honest = [m for m in self._miners if m.miner_id not in attacker_set]
        if not attackers:
            raise ProtocolError("the attacker coalition is empty")
        if not honest:
            raise ProtocolError("at least one honest miner is required")
        fraction = self.attacker_fraction(attacker_set)
        attacker_power = sum(m.hash_power for m in attackers)
        honest_power = sum(m.hash_power for m in honest)
        total_power = attacker_power + honest_power

        # Fork point: the block containing the double-spent transaction.
        public_height = 0  # blocks mined on the public chain after the fork point
        private_height = 0  # blocks on the attacker's private fork
        total_blocks = 0
        attacker_canonical = 0
        attack_succeeded = False
        reverted = 0

        while total_blocks < max_blocks:
            total_blocks += 1
            # Who finds the next block overall is proportional to power.
            if self._rng.random() < attacker_power / total_power:
                private_height += 1
            else:
                public_height += 1
            if public_height >= confirmations:
                # The merchant has released the goods; the attacker publishes
                # as soon as its fork is strictly longer.
                if private_height > public_height:
                    attack_succeeded = True
                    reverted = public_height
                    attacker_canonical = private_height
                    break
                if public_height - private_height >= give_up_deficit:
                    break

        if attack_succeeded:
            main_chain_length = private_height
            revenue_share = 1.0
        else:
            main_chain_length = public_height
            revenue_share = 0.0

        by_miner: Dict[str, int] = {}
        label = "attacker-coalition" if attack_succeeded else "honest-miners"
        by_miner[label] = main_chain_length
        return MiningSimulationResult(
            total_blocks=total_blocks,
            main_chain_length=main_chain_length,
            blocks_by_miner=tuple(sorted(by_miner.items())),
            attacker_fraction=fraction,
            attack_launched=True,
            attack_succeeded=attack_succeeded,
            reverted_blocks=reverted,
            revenue_share=revenue_share,
        )

    def estimate_attack_success(
        self,
        attacker_ids: Iterable[str],
        *,
        confirmations: int = 6,
        trials: int = 200,
        max_blocks: int = 2000,
    ) -> float:
        """Monte-Carlo estimate of the double-spend success probability."""
        if trials <= 0:
            raise ProtocolError(f"trial count must be positive, got {trials}")
        attacker_list = list(attacker_ids)
        successes = 0
        for _ in range(trials):
            result = self.run_double_spend(
                attacker_list, confirmations=confirmations, max_blocks=max_blocks
            )
            if result.attack_succeeded:
                successes += 1
        return successes / trials
