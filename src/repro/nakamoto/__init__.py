"""Nakamoto (proof-of-work) consensus substrate.

Bitcoin is the paper's running example of a permissionless blockchain, so the
reproduction ships a proof-of-work substrate:

- :mod:`repro.nakamoto.block` / :mod:`repro.nakamoto.chain` -- the block tree
  and longest-chain rule;
- :mod:`repro.nakamoto.miner` / :mod:`repro.nakamoto.pool` -- miners, mining
  pools and the pool-level power oligopoly of Example 1;
- :mod:`repro.nakamoto.simulation` -- a stochastic mining simulation (block
  intervals are an exponential race weighted by hash power) with an optional
  attacker coalition building a private chain;
- :mod:`repro.nakamoto.selfish` -- the selfish-mining baseline (Eyal & Sirer)
  the paper cites as prior work on hash-power bounds;
- :mod:`repro.nakamoto.attack` -- analytic double-spend success probabilities
  and majority-takeover analysis driven by shared-vulnerability campaigns.
"""

from repro.nakamoto.attack import double_spend_success_probability, majority_takeover
from repro.nakamoto.block import Block
from repro.nakamoto.chain import BlockTree
from repro.nakamoto.decentralized_pool import (
    DecentralizationReport,
    decentralization_report,
    decentralize_pools,
)
from repro.nakamoto.miner import Miner
from repro.nakamoto.pool import MiningPool, pools_from_snapshot
from repro.nakamoto.selfish import selfish_mining_revenue
from repro.nakamoto.simulation import MiningSimulation, MiningSimulationResult

__all__ = [
    "Block",
    "BlockTree",
    "DecentralizationReport",
    "Miner",
    "MiningPool",
    "MiningSimulation",
    "MiningSimulationResult",
    "decentralization_report",
    "decentralize_pools",
    "double_spend_success_probability",
    "majority_takeover",
    "pools_from_snapshot",
    "selfish_mining_revenue",
]
