"""Diversity management: planners, managers and voting-weight policies.

- :mod:`repro.diversity.planner` -- an entropy-maximizing configuration
  planner (assigns configurations to replicas under availability constraints).
- :mod:`repro.diversity.manager` -- a Lazarus-style centralized diversity
  manager for permissioned deployments (the baseline the paper contrasts
  permissionless systems against).
- :mod:`repro.diversity.policy` -- voting-weight policies for permissionless
  systems, including the paper's concluding two-class (attested /
  non-attested) proposal.
- :mod:`repro.diversity.monitor` -- continuous diversity monitoring over an
  attestation registry with alerting thresholds.
"""

from repro.diversity.manager import DiversityManager, ManagedDeployment
from repro.diversity.monitor import DiversityAlert, DiversityMonitor
from repro.diversity.planner import AssignmentPlan, EntropyPlanner
from repro.diversity.policy import TwoClassWeightPolicy, WeightedCensus

__all__ = [
    "AssignmentPlan",
    "DiversityAlert",
    "DiversityManager",
    "DiversityMonitor",
    "EntropyPlanner",
    "ManagedDeployment",
    "TwoClassWeightPolicy",
    "WeightedCensus",
]
