"""Voting-weight policies for permissionless systems.

The paper's conclusion sketches a concrete mitigation: run two classes of
replicas — those that support configuration attestation and those that do not
— "potentially with different voting right/weight".  The
:class:`TwoClassWeightPolicy` implements that proposal: it rescales voting
power by an attested/non-attested weight ratio and reports the effect on the
configuration-census entropy and on the power an attacker can grab through
the unattested (unknown-configuration, assumed-worst-case) class.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.core.distribution import ConfigurationDistribution
from repro.core.exceptions import AnalysisError
from repro.core.population import ReplicaPopulation


@dataclass(frozen=True)
class WeightedCensus:
    """Result of applying a weight policy to a population.

    Attributes:
        entropy: census entropy (bits) of the effective-power distribution.
        attested_power_fraction: fraction of effective power held by attested
            replicas after reweighting.
        unattested_worst_case_fraction: effective-power fraction an attacker
            controls if the *entire* unattested class shares one exploitable
            fault (the conservative reading of "unknown configuration").
        effective_power: effective (reweighted) power per replica.
    """

    entropy: float
    attested_power_fraction: float
    unattested_worst_case_fraction: float
    effective_power: Tuple[Tuple[str, float], ...]


@dataclass(frozen=True)
class TwoClassWeightPolicy:
    """Voting weights for attested vs non-attested replicas.

    Attributes:
        attested_weight: multiplier applied to attested replicas' power.
        unattested_weight: multiplier applied to non-attested replicas' power.
    """

    attested_weight: float = 1.0
    unattested_weight: float = 1.0

    def __post_init__(self) -> None:
        if self.attested_weight < 0 or self.unattested_weight < 0:
            raise AnalysisError("voting weights must be non-negative")
        if self.attested_weight == 0 and self.unattested_weight == 0:
            raise AnalysisError("at least one class must have positive weight")

    def effective_power(self, population: ReplicaPopulation) -> Dict[str, float]:
        """Reweighted absolute power per replica."""
        result: Dict[str, float] = {}
        for replica in population:
            factor = self.attested_weight if replica.attested else self.unattested_weight
            result[replica.replica_id] = replica.power * factor
        return result

    def apply(self, population: ReplicaPopulation) -> WeightedCensus:
        """Apply the policy and summarize the diversity / exposure effect."""
        power = self.effective_power(population)
        total = sum(power.values())
        if total <= 0:
            raise AnalysisError("the policy removed all effective voting power")
        attested_power = sum(
            power[replica.replica_id] for replica in population if replica.attested
        )
        unattested_power = total - attested_power

        # Census over configurations: attested replicas contribute their
        # (attested) configuration; unattested replicas are lumped into a
        # single worst-case "unknown" bucket because nothing verifiable
        # distinguishes their fault domains.
        weights: Dict[object, float] = {}
        for replica in population:
            effective = power[replica.replica_id]
            if effective <= 0:
                continue
            key: object = replica.configuration if replica.attested else "unattested-unknown"
            weights[key] = weights.get(key, 0.0) + effective
        census = ConfigurationDistribution(weights)

        return WeightedCensus(
            entropy=census.entropy(),
            attested_power_fraction=attested_power / total,
            unattested_worst_case_fraction=unattested_power / total,
            effective_power=tuple(sorted(power.items())),
        )

    def sweep_ratio(
        self, population: ReplicaPopulation, ratios: Tuple[float, ...]
    ) -> Tuple[Tuple[float, WeightedCensus], ...]:
        """Apply a family of policies with attested:unattested weight ratios.

        ``ratio = attested_weight / unattested_weight`` with the unattested
        weight fixed at 1, so ratios above 1 privilege attested replicas (the
        paper's proposal) and a ratio of 1 is the status quo.
        """
        results = []
        for ratio in ratios:
            if ratio <= 0:
                raise AnalysisError(f"ratio must be positive, got {ratio}")
            policy = TwoClassWeightPolicy(attested_weight=ratio, unattested_weight=1.0)
            results.append((ratio, policy.apply(population)))
        return tuple(results)
