"""An entropy-maximizing configuration planner.

Given a configuration space (or an explicit list of candidate configurations,
possibly with per-configuration capacity limits) and a number of replicas to
deploy, the planner produces an assignment whose census entropy is maximal:
replica counts per configuration differ by at most one, using as many distinct
configurations as capacity allows.  This is the constructive counterpart of
Definition 1/2 and the optimization a Lazarus-style manager would run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

from repro.core.abundance import AbundanceVector
from repro.core.configuration import ConfigurationSpace, ReplicaConfiguration
from repro.core.distribution import ConfigurationDistribution
from repro.core.exceptions import PlanningError

ConfigKey = Hashable


@dataclass(frozen=True)
class AssignmentPlan:
    """The planner's output.

    Attributes:
        counts: replicas assigned per configuration.
        total_replicas: total replicas assigned.
        entropy: census entropy (bits) of the assignment.
        kappa: number of distinct configurations used.
        omega: mean replicas per used configuration.
    """

    counts: Tuple[Tuple[ConfigKey, int], ...]
    total_replicas: int
    entropy: float
    kappa: int
    omega: float

    def as_abundance(self) -> AbundanceVector:
        """The plan as an abundance vector."""
        return AbundanceVector.from_counts(dict(self.counts))

    def as_distribution(self) -> ConfigurationDistribution:
        """The plan's census distribution."""
        return self.as_abundance().to_distribution()

    def assignment_list(self) -> List[ConfigKey]:
        """One configuration per replica, in a deterministic order."""
        result: List[ConfigKey] = []
        for key, count in self.counts:
            result.extend([key] * count)
        return result


class EntropyPlanner:
    """Plans configuration assignments that maximize census entropy.

    Args:
        candidates: the configurations available for assignment (e.g. the
            enumeration of a :class:`~repro.core.configuration.ConfigurationSpace`,
            or opaque labels).
        capacity: optional per-configuration limit on how many replicas may
            use it (licensing limits, hardware availability, ...).  Missing
            keys are unconstrained.
    """

    def __init__(
        self,
        candidates: Sequence[ConfigKey],
        *,
        capacity: Optional[Mapping[ConfigKey, int]] = None,
    ) -> None:
        candidates = list(candidates)
        if not candidates:
            raise PlanningError("the planner needs at least one candidate configuration")
        if len(set(candidates)) != len(candidates):
            raise PlanningError("candidate configurations must be unique")
        self._candidates = candidates
        self._capacity: Dict[ConfigKey, int] = {}
        for key, limit in (capacity or {}).items():
            if key not in candidates:
                raise PlanningError(f"capacity given for unknown configuration {key!r}")
            if limit < 0:
                raise PlanningError(f"capacity must be non-negative, got {limit}")
            self._capacity[key] = int(limit)

    @classmethod
    def from_space(cls, space: ConfigurationSpace, *, limit: Optional[int] = None) -> "EntropyPlanner":
        """Build a planner over (a prefix of) a configuration space's enumeration."""
        candidates: List[ReplicaConfiguration] = []
        for index, configuration in enumerate(space.enumerate()):
            if limit is not None and index >= limit:
                break
            candidates.append(configuration)
        return cls(candidates)

    # -- planning -----------------------------------------------------------------------

    def plan(self, total_replicas: int) -> AssignmentPlan:
        """Assign ``total_replicas`` replicas as evenly as capacity allows.

        The algorithm is round-robin water-filling: repeatedly give one more
        replica to the least-loaded configuration that still has capacity.
        This yields counts that differ by at most one wherever capacity is not
        binding, which maximizes entropy among capacity-feasible assignments.
        """
        if total_replicas <= 0:
            raise PlanningError(f"total replicas must be positive, got {total_replicas}")
        total_capacity = sum(
            self._capacity.get(key, total_replicas) for key in self._candidates
        )
        if total_capacity < total_replicas:
            raise PlanningError(
                f"capacity ({total_capacity}) cannot host {total_replicas} replicas"
            )
        counts: Dict[ConfigKey, int] = {key: 0 for key in self._candidates}
        for _ in range(total_replicas):
            target = self._least_loaded_with_capacity(counts)
            counts[target] += 1
        used = {key: count for key, count in counts.items() if count > 0}
        abundance = AbundanceVector.from_counts(used)
        distribution = abundance.to_distribution()
        return AssignmentPlan(
            counts=tuple(sorted(used.items(), key=lambda item: str(item[0]))),
            total_replicas=total_replicas,
            entropy=distribution.entropy(),
            kappa=distribution.support_size(),
            omega=abundance.mean_abundance(),
        )

    def plan_kappa_omega(self, kappa: int, omega: int) -> AssignmentPlan:
        """Plan an exactly (κ, ω)-optimal deployment (Definition 2).

        Raises when fewer than κ configurations are available or capacity
        does not allow ω replicas on each of the first κ configurations.
        """
        if kappa <= 0 or omega <= 0:
            raise PlanningError("kappa and omega must be positive")
        if kappa > len(self._candidates):
            raise PlanningError(
                f"requested kappa={kappa} but only {len(self._candidates)} configurations exist"
            )
        chosen = self._candidates[:kappa]
        for key in chosen:
            limit = self._capacity.get(key)
            if limit is not None and limit < omega:
                raise PlanningError(
                    f"configuration {key!r} has capacity {limit} < omega={omega}"
                )
        counts = {key: omega for key in chosen}
        abundance = AbundanceVector.from_counts(counts)
        distribution = abundance.to_distribution()
        return AssignmentPlan(
            counts=tuple(sorted(counts.items(), key=lambda item: str(item[0]))),
            total_replicas=kappa * omega,
            entropy=distribution.entropy(),
            kappa=kappa,
            omega=float(omega),
        )

    # -- baselines (for the ablation experiments) ------------------------------------------

    def plan_monoculture(self, total_replicas: int) -> AssignmentPlan:
        """Worst-case baseline: everyone on the first configuration with room."""
        if total_replicas <= 0:
            raise PlanningError(f"total replicas must be positive, got {total_replicas}")
        counts: Dict[ConfigKey, int] = {}
        remaining = total_replicas
        for key in self._candidates:
            room = self._capacity.get(key, remaining)
            take = min(room, remaining)
            if take > 0:
                counts[key] = take
                remaining -= take
            if remaining == 0:
                break
        if remaining > 0:
            raise PlanningError("capacity cannot host the requested replicas")
        abundance = AbundanceVector.from_counts(counts)
        distribution = abundance.to_distribution()
        return AssignmentPlan(
            counts=tuple(sorted(counts.items(), key=lambda item: str(item[0]))),
            total_replicas=total_replicas,
            entropy=distribution.entropy(),
            kappa=distribution.support_size(),
            omega=abundance.mean_abundance(),
        )

    def plan_proportional(
        self, total_replicas: int, popularity: Mapping[ConfigKey, float]
    ) -> AssignmentPlan:
        """Market-driven baseline: assign proportionally to component popularity.

        Models what happens with no diversity management at all: replicas pick
        whatever is most popular, reproducing the ecosystem's skew.
        """
        if total_replicas <= 0:
            raise PlanningError(f"total replicas must be positive, got {total_replicas}")
        weights = {key: float(popularity.get(key, 0.0)) for key in self._candidates}
        if sum(weights.values()) <= 0:
            raise PlanningError("popularity weights must have positive total")
        # Largest-remainder apportionment keeps the counts integral.
        total_weight = sum(weights.values())
        quotas = {
            key: total_replicas * weight / total_weight for key, weight in weights.items()
        }
        counts = {key: int(quota) for key, quota in quotas.items()}
        assigned = sum(counts.values())
        remainders = sorted(
            quotas.items(), key=lambda item: (item[1] - int(item[1]), str(item[0])), reverse=True
        )
        for key, _ in remainders:
            if assigned >= total_replicas:
                break
            counts[key] += 1
            assigned += 1
        used = {key: count for key, count in counts.items() if count > 0}
        abundance = AbundanceVector.from_counts(used)
        distribution = abundance.to_distribution()
        return AssignmentPlan(
            counts=tuple(sorted(used.items(), key=lambda item: str(item[0]))),
            total_replicas=total_replicas,
            entropy=distribution.entropy(),
            kappa=distribution.support_size(),
            omega=abundance.mean_abundance(),
        )

    # -- internals -------------------------------------------------------------------------

    def _least_loaded_with_capacity(self, counts: Dict[ConfigKey, int]) -> ConfigKey:
        best_key = None
        best_count = None
        for key in self._candidates:
            limit = self._capacity.get(key)
            if limit is not None and counts[key] >= limit:
                continue
            if best_count is None or counts[key] < best_count:
                best_key = key
                best_count = counts[key]
        if best_key is None:
            raise PlanningError("no configuration has remaining capacity")
        return best_key
