"""Continuous diversity monitoring with alerting thresholds.

A permissionless system cannot *enforce* diversity, but it can *observe* it
through the attestation registry and raise alarms when the census drifts into
dangerous territory — e.g. when a single configuration's share approaches the
protocol's fault tolerance, which is the precondition for a one-vulnerability
safety violation.  The monitor encodes those checks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.distribution import ConfigurationDistribution
from repro.core.exceptions import AnalysisError
from repro.core.resilience import ProtocolFamily, tolerated_fault_fraction


@dataclass(frozen=True)
class DiversityAlert:
    """One triggered alert.

    Attributes:
        code: stable machine-readable alert code.
        message: human-readable description.
        severity: "warning" or "critical".
    """

    code: str
    message: str
    severity: str


@dataclass(frozen=True)
class MonitorThresholds:
    """Alerting thresholds of the diversity monitor.

    Attributes:
        min_entropy_bits: minimum acceptable census entropy.
        max_single_share_factor: maximum tolerated ratio between the largest
            configuration share and the protocol's fault-tolerance fraction
            (1.0 means alerting only once a single configuration can by
            itself violate safety; lower values alert earlier).
        min_support: minimum number of distinct configurations.
    """

    min_entropy_bits: float = 3.0
    max_single_share_factor: float = 0.75
    min_support: int = 4

    def __post_init__(self) -> None:
        if self.min_entropy_bits < 0:
            raise AnalysisError("minimum entropy must be non-negative")
        if not 0 < self.max_single_share_factor <= 1.5:
            raise AnalysisError("single-share factor must be in (0, 1.5]")
        if self.min_support < 1:
            raise AnalysisError("minimum support must be positive")


class DiversityMonitor:
    """Evaluates a configuration census against alerting thresholds."""

    def __init__(
        self,
        *,
        family: ProtocolFamily = ProtocolFamily.BFT,
        thresholds: Optional[MonitorThresholds] = None,
    ) -> None:
        self._family = family
        self._thresholds = thresholds or MonitorThresholds()
        self._history: List[float] = []

    @property
    def thresholds(self) -> MonitorThresholds:
        return self._thresholds

    def evaluate(self, census: ConfigurationDistribution) -> Tuple[DiversityAlert, ...]:
        """Check one census snapshot and return the triggered alerts."""
        alerts: List[DiversityAlert] = []
        entropy = census.entropy()
        self._history.append(entropy)

        if entropy < self._thresholds.min_entropy_bits:
            alerts.append(
                DiversityAlert(
                    code="low-entropy",
                    message=(
                        f"census entropy {entropy:.3f} bits is below the "
                        f"minimum of {self._thresholds.min_entropy_bits:.3f} bits"
                    ),
                    severity="warning",
                )
            )

        if census.support_size() < self._thresholds.min_support:
            alerts.append(
                DiversityAlert(
                    code="low-richness",
                    message=(
                        f"only {census.support_size()} distinct configurations are in "
                        f"use (minimum {self._thresholds.min_support})"
                    ),
                    severity="warning",
                )
            )

        tolerance = tolerated_fault_fraction(self._family)
        largest_key, largest_share = census.largest(1)[0]
        if largest_share >= tolerance:
            alerts.append(
                DiversityAlert(
                    code="single-configuration-violation",
                    message=(
                        f"configuration {largest_key!r} holds {largest_share:.1%} of power, "
                        f"at or above the {tolerance:.0%} tolerance of the "
                        f"{self._family.value} protocol family: one shared fault violates safety"
                    ),
                    severity="critical",
                )
            )
        elif largest_share >= tolerance * self._thresholds.max_single_share_factor:
            alerts.append(
                DiversityAlert(
                    code="single-configuration-risk",
                    message=(
                        f"configuration {largest_key!r} holds {largest_share:.1%} of power, "
                        f"within {self._thresholds.max_single_share_factor:.0%} of the "
                        f"{tolerance:.0%} safety threshold"
                    ),
                    severity="warning",
                )
            )

        return tuple(alerts)

    def is_healthy(self, census: ConfigurationDistribution) -> bool:
        """True when no alert (of any severity) triggers for ``census``."""
        return not self.evaluate(census)

    def entropy_history(self) -> Tuple[float, ...]:
        """Entropy of every census evaluated so far, in order."""
        return tuple(self._history)
