"""A Lazarus-style centralized diversity manager (permissioned baseline).

Lazarus (Garcia, Bessani & Neves, Middleware 2019) automatically manages the
diversity of operating systems in a permissioned BFT deployment: it tracks
which configurations are deployed, scores risk from known vulnerabilities and
rotates replicas onto safer, more diverse configurations.  The paper uses it
as the state of the art that *cannot* be applied directly to permissionless
systems (no global manager exists there).

The :class:`DiversityManager` reproduces that baseline at the level the
reproduction needs: it owns a fixed set of replica slots, plans their
configurations with the entropy planner, reacts to vulnerability disclosures
by migrating exposed replicas to patched/alternative configurations, and
reports the deployment's entropy and exposure over time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.configuration import ReplicaConfiguration, SoftwareComponent
from repro.core.distribution import ConfigurationDistribution
from repro.core.exceptions import PlanningError
from repro.core.population import Replica, ReplicaPopulation
from repro.diversity.planner import EntropyPlanner
from repro.faults.catalog import VulnerabilityCatalog
from repro.faults.vulnerability import Vulnerability


@dataclass(frozen=True)
class ManagedDeployment:
    """A snapshot of the managed deployment.

    Attributes:
        assignment: configuration per replica slot.
        entropy: census entropy of the deployment (bits).
        exposed_slots: slots currently running a configuration affected by a
            known, unpatched vulnerability.
    """

    assignment: Tuple[Tuple[str, ReplicaConfiguration], ...]
    entropy: float
    exposed_slots: Tuple[str, ...]

    def population(self) -> ReplicaPopulation:
        """The deployment as a population (power 1 per slot)."""
        return ReplicaPopulation(
            Replica(replica_id=slot, configuration=configuration)
            for slot, configuration in self.assignment
        )


class DiversityManager:
    """Centralized manager assigning and rotating replica configurations."""

    def __init__(
        self,
        slots: Sequence[str],
        candidates: Sequence[ReplicaConfiguration],
    ) -> None:
        if not slots:
            raise PlanningError("the manager needs at least one replica slot")
        if len(set(slots)) != len(slots):
            raise PlanningError("slot names must be unique")
        if not candidates:
            raise PlanningError("the manager needs at least one candidate configuration")
        self._slots = list(slots)
        self._candidates = list(candidates)
        self._assignment: Dict[str, ReplicaConfiguration] = {}
        self._migrations = 0
        self.rebalance()

    # -- planning -----------------------------------------------------------------------

    def rebalance(self) -> ManagedDeployment:
        """(Re)assign every slot using the entropy planner."""
        planner = EntropyPlanner(self._candidates)
        plan = planner.plan(len(self._slots))
        configurations = plan.assignment_list()
        self._assignment = dict(zip(self._slots, configurations))
        return self.deployment()

    def deployment(self, catalog: Optional[VulnerabilityCatalog] = None) -> ManagedDeployment:
        """The current deployment snapshot (optionally with exposure info)."""
        census = ConfigurationDistribution(
            self._count_by_configuration()
        )
        exposed: List[str] = []
        if catalog is not None:
            for slot, configuration in self._assignment.items():
                if any(
                    catalog.affecting_component(component)
                    for component in configuration.components()
                ):
                    exposed.append(slot)
        return ManagedDeployment(
            assignment=tuple(sorted(self._assignment.items())),
            entropy=census.entropy(),
            exposed_slots=tuple(sorted(exposed)),
        )

    def population(self) -> ReplicaPopulation:
        """The managed deployment as a population."""
        return self.deployment().population()

    @property
    def migrations_performed(self) -> int:
        """How many slot migrations the manager has executed."""
        return self._migrations

    # -- vulnerability response --------------------------------------------------------------

    def respond_to_vulnerability(self, vulnerability: Vulnerability) -> Tuple[str, ...]:
        """Migrate every slot exposed to ``vulnerability`` off the vulnerable component.

        Exposed slots are moved to the candidate configuration (not containing
        the vulnerable component) that currently hosts the fewest slots, which
        preserves as much evenness as possible.  Returns the migrated slots.
        """
        safe_candidates = [
            candidate
            for candidate in self._candidates
            if not candidate.has_component(vulnerability.component)
        ]
        if not safe_candidates:
            raise PlanningError(
                "no candidate configuration avoids the vulnerable component "
                f"{vulnerability.component.identifier!r}"
            )
        migrated: List[str] = []
        for slot, configuration in sorted(self._assignment.items()):
            if not configuration.has_component(vulnerability.component):
                continue
            target = self._least_loaded(safe_candidates)
            self._assignment[slot] = target
            self._migrations += 1
            migrated.append(slot)
        return tuple(migrated)

    def exposure_fraction(self, catalog: VulnerabilityCatalog) -> float:
        """Fraction of slots exposed to at least one catalog vulnerability."""
        deployment = self.deployment(catalog)
        return len(deployment.exposed_slots) / len(self._slots)

    # -- internals ------------------------------------------------------------------------------

    def _count_by_configuration(self) -> Dict[ReplicaConfiguration, int]:
        counts: Dict[ReplicaConfiguration, int] = {}
        for configuration in self._assignment.values():
            counts[configuration] = counts.get(configuration, 0) + 1
        return counts

    def _least_loaded(self, candidates: Sequence[ReplicaConfiguration]) -> ReplicaConfiguration:
        counts = self._count_by_configuration()
        return min(candidates, key=lambda candidate: (counts.get(candidate, 0), candidate.identifier))

    # -- dunder -----------------------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._slots)
