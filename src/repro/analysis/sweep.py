"""Generic parameter-sweep helpers.

Every experiment in the paper-reproduction is a sweep of one metric over one
parameter (residual miners for Figure 1, abundance for Proposition 3, ...).
The helpers here run such sweeps, keep the (parameter, value) pairs together
and compute the summary statistics the experiment drivers print.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    Generic,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

from repro.core.exceptions import AnalysisError

P = TypeVar("P")
V = TypeVar("V")
K = TypeVar("K")
R = TypeVar("R")


@dataclass(frozen=True)
class SweepResult(Generic[P, V]):
    """The outcome of sweeping a function over a parameter range.

    Attributes:
        parameter_name: name of the swept parameter (for reporting).
        points: ``(parameter, value)`` pairs in sweep order.
    """

    parameter_name: str
    points: Tuple[Tuple[P, V], ...]

    def parameters(self) -> Tuple[P, ...]:
        return tuple(parameter for parameter, _ in self.points)

    def values(self) -> Tuple[V, ...]:
        return tuple(value for _, value in self.points)

    def as_dict(self) -> Dict[P, V]:
        return dict(self.points)

    def value_at(self, parameter: P) -> V:
        for candidate, value in self.points:
            if candidate == parameter:
                return value
        raise AnalysisError(f"parameter {parameter!r} was not part of the sweep")

    def __len__(self) -> int:
        return len(self.points)


def sweep(
    parameters: Iterable[P],
    function: Callable[[P], V],
    *,
    parameter_name: str = "parameter",
    parallel: bool = False,
    max_workers: Optional[int] = None,
) -> SweepResult[P, V]:
    """Evaluate ``function`` at every parameter value, preserving order.

    With ``parallel=True`` the points are fanned out over a
    ``concurrent.futures`` thread pool while the result order still follows
    the input order.  ``function`` must then be thread-safe and derive any
    randomness deterministically from its parameter (the Monte-Carlo callers
    seed per point), so a parallel sweep returns exactly what the serial
    sweep would.

    Being thread-based, the fan-out only buys wall-clock time when the
    per-point work releases the GIL — NumPy-backend kernels and I/O do,
    pure-Python computation does not (it runs correctly in parallel mode,
    just without speedup).
    """
    parameter_list: List[P] = list(parameters)
    if not parameter_list:
        raise AnalysisError("a sweep needs at least one parameter value")
    if parallel and len(parameter_list) > 1:
        with ThreadPoolExecutor(max_workers=max_workers) as pool:
            values = list(pool.map(function, parameter_list))
    else:
        values = [function(parameter) for parameter in parameter_list]
    return SweepResult(
        parameter_name=parameter_name,
        points=tuple(zip(parameter_list, values)),
    )


def mapping_sweep(
    items: Mapping[K, V],
    function: Callable[[int, K, V], R],
    *,
    parallel: bool = False,
    max_workers: Optional[int] = None,
) -> List[R]:
    """Evaluate ``function(index, key, value)`` over a mapping, in order.

    The shared scaffolding behind the Monte-Carlo entry points that sweep a
    family of censuses: each item gets its stable enumeration index (the
    per-point seed offset), results come back in mapping iteration order,
    and ``parallel`` / ``max_workers`` behave exactly as in :func:`sweep`.
    """
    points = [(index, key, value) for index, (key, value) in enumerate(items.items())]
    result = sweep(
        points,
        lambda point: function(*point),
        parallel=parallel,
        max_workers=max_workers,
    )
    return list(result.values())


def numeric_summary(values: Sequence[float]) -> Dict[str, float]:
    """Minimum, maximum, mean and span of a numeric series."""
    if not values:
        raise AnalysisError("cannot summarize an empty series")
    values = [float(value) for value in values]
    return {
        "min": min(values),
        "max": max(values),
        "mean": sum(values) / len(values),
        "span": max(values) - min(values),
    }


def is_monotonic(values: Sequence[float], *, increasing: bool = True, tolerance: float = 1e-12) -> bool:
    """Whether a series is monotonic (used to verify proposition sweeps)."""
    if len(values) < 2:
        return True
    if increasing:
        return all(later >= earlier - tolerance for earlier, later in zip(values, values[1:]))
    return all(later <= earlier + tolerance for earlier, later in zip(values, values[1:]))


def crossover_parameter(
    result: SweepResult[P, float], threshold: float
) -> Tuple[bool, P]:
    """First parameter at which the swept value reaches ``threshold``.

    Returns ``(found, parameter)``; when never reached, ``found`` is false and
    the last parameter is returned for context.
    """
    last_parameter = None
    for parameter, value in result.points:
        last_parameter = parameter
        if value >= threshold:
            return True, parameter
    return False, last_parameter
