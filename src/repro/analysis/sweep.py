"""Generic parameter-sweep helpers.

Every experiment in the paper-reproduction is a sweep of one metric over one
parameter (residual miners for Figure 1, abundance for Proposition 3, ...).
The helpers here run such sweeps, keep the (parameter, value) pairs together
and compute the summary statistics the experiment drivers print.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Generic, Iterable, List, Sequence, Tuple, TypeVar

from repro.core.exceptions import AnalysisError

P = TypeVar("P")
V = TypeVar("V")


@dataclass(frozen=True)
class SweepResult(Generic[P, V]):
    """The outcome of sweeping a function over a parameter range.

    Attributes:
        parameter_name: name of the swept parameter (for reporting).
        points: ``(parameter, value)`` pairs in sweep order.
    """

    parameter_name: str
    points: Tuple[Tuple[P, V], ...]

    def parameters(self) -> Tuple[P, ...]:
        return tuple(parameter for parameter, _ in self.points)

    def values(self) -> Tuple[V, ...]:
        return tuple(value for _, value in self.points)

    def as_dict(self) -> Dict[P, V]:
        return dict(self.points)

    def value_at(self, parameter: P) -> V:
        for candidate, value in self.points:
            if candidate == parameter:
                return value
        raise AnalysisError(f"parameter {parameter!r} was not part of the sweep")

    def __len__(self) -> int:
        return len(self.points)


def sweep(
    parameters: Iterable[P],
    function: Callable[[P], V],
    *,
    parameter_name: str = "parameter",
) -> SweepResult[P, V]:
    """Evaluate ``function`` at every parameter value, preserving order."""
    points: List[Tuple[P, V]] = []
    for parameter in parameters:
        points.append((parameter, function(parameter)))
    if not points:
        raise AnalysisError("a sweep needs at least one parameter value")
    return SweepResult(parameter_name=parameter_name, points=tuple(points))


def numeric_summary(values: Sequence[float]) -> Dict[str, float]:
    """Minimum, maximum, mean and span of a numeric series."""
    if not values:
        raise AnalysisError("cannot summarize an empty series")
    values = [float(value) for value in values]
    return {
        "min": min(values),
        "max": max(values),
        "mean": sum(values) / len(values),
        "span": max(values) - min(values),
    }


def is_monotonic(values: Sequence[float], *, increasing: bool = True, tolerance: float = 1e-12) -> bool:
    """Whether a series is monotonic (used to verify proposition sweeps)."""
    if len(values) < 2:
        return True
    if increasing:
        return all(later >= earlier - tolerance for earlier, later in zip(values, values[1:]))
    return all(later <= earlier + tolerance for earlier, later in zip(values, values[1:]))


def crossover_parameter(
    result: SweepResult[P, float], threshold: float
) -> Tuple[bool, P]:
    """First parameter at which the swept value reaches ``threshold``.

    Returns ``(found, parameter)``; when never reached, ``found`` is false and
    the last parameter is returned for context.
    """
    last_parameter = None
    for parameter, value in result.points:
        last_parameter = parameter
        if value >= threshold:
            return True, parameter
    return False, last_parameter
