"""Benchmark harness for the batched campaign engine.

Times :meth:`BatchCampaignEngine.estimate` — thousands of randomized exploit
campaigns over one ecosystem-sampled population — on every available compute
backend.  Because the campaign kernels draw from a shared counter-based RNG
stream, the backends must produce *identical* results here, which makes this
benchmark double as the strongest cross-backend equivalence check: the
recorded violation counts are asserted equal, not just close.

The snapshot (``BENCH_5.json`` in CI) records scalar-vs-batched campaign
throughput the same way ``BENCH_1.json`` records the census-mode estimator:
the pure-Python backend *is* the scalar per-trial loop, so
``speedup_numpy_over_python`` is the batched-over-scalar factor future
optimization PRs have to beat.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.backend import available_backends
from repro.core.exceptions import AnalysisError
from repro.faults.engine import BatchCampaignEngine, CampaignEstimate
from repro.faults.scenarios import ecosystem_scenario

#: Schema version of the snapshot document.
CAMPAIGN_SNAPSHOT_VERSION = 1


@dataclass(frozen=True)
class CampaignTiming:
    """One backend's measurement on the campaign benchmark workload."""

    backend: str
    seconds: float
    trials_per_second: float
    violations: int
    violation_probability: float
    mean_compromised_fraction: float


@dataclass(frozen=True)
class CampaignBenchmarkReport:
    """All backend timings for one campaign workload."""

    trials: int
    replicas: int
    vulnerabilities: int
    ecosystem: str
    exploit_probability: float
    budget: int
    seed: int
    repeats: int
    timings: Tuple[CampaignTiming, ...]

    def timing(self, backend: str) -> CampaignTiming:
        for timing in self.timings:
            if timing.backend == backend:
                return timing
        raise AnalysisError(f"backend {backend!r} was not benchmarked")

    def speedup_over_python(self, backend: str) -> Optional[float]:
        """``python_seconds / backend_seconds``; None when python was not run."""
        names = {timing.backend for timing in self.timings}
        if "python" not in names or backend not in names:
            return None
        return self.timing("python").seconds / self.timing(backend).seconds

    def as_dict(self) -> Dict:
        """JSON-serializable snapshot of the report."""
        document: Dict = {
            "version": CAMPAIGN_SNAPSHOT_VERSION,
            "benchmark": "batch_campaign_engine",
            "workload": {
                "trials": self.trials,
                "replicas": self.replicas,
                "vulnerabilities": self.vulnerabilities,
                "ecosystem": self.ecosystem,
                "exploit_probability": self.exploit_probability,
                "budget": self.budget,
                "seed": self.seed,
                "repeats": self.repeats,
            },
            "results": {
                timing.backend: {
                    "seconds": timing.seconds,
                    "trials_per_second": timing.trials_per_second,
                    "violations": timing.violations,
                    "violation_probability": timing.violation_probability,
                    "mean_compromised_fraction": timing.mean_compromised_fraction,
                }
                for timing in self.timings
            },
        }
        for timing in self.timings:
            if timing.backend != "python":
                speedup = self.speedup_over_python(timing.backend)
                if speedup is not None:
                    document[f"speedup_{timing.backend}_over_python"] = speedup
        return document


def benchmark_campaigns(
    *,
    trials: int = 10_000,
    replicas: int = 150,
    ecosystem: str = "default",
    exploit_probability: float = 0.6,
    budget: int = 4,
    seed: int = 42,
    repeats: int = 2,
    backends: Optional[Tuple[str, ...]] = None,
) -> CampaignBenchmarkReport:
    """Time the campaign engine on each backend with a shared workload.

    Each backend gets one small untimed warmup, then ``repeats`` timed runs
    of which the fastest counts.  The campaign kernels are bit-identical
    across backends by contract; any disagreement in the violation counts
    raises :class:`~repro.core.exceptions.AnalysisError`.
    """
    if trials <= 0 or replicas <= 0:
        raise AnalysisError("trials and replicas must be positive")
    if repeats <= 0:
        raise AnalysisError("repeats must be positive")
    scenario = ecosystem_scenario(
        ecosystem=ecosystem,
        population_size=replicas,
        seed=seed,
        exploit_probability=exploit_probability,
    )
    selected = tuple(backends) if backends is not None else available_backends()
    if not selected:
        raise AnalysisError("no backends selected for benchmarking")
    timings = []
    reference: Optional[CampaignEstimate] = None
    for name in selected:
        engine = BatchCampaignEngine(
            scenario.population, scenario.catalog, backend=name
        )

        def run(run_trials: int = trials) -> CampaignEstimate:
            return engine.estimate_worst_case(
                max_vulnerabilities=budget,
                trials=run_trials,
                seed=seed,
            )

        run(min(trials, 500))  # warmup (array conversion, caches)
        estimate = None
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            estimate = run()
            best = min(best, time.perf_counter() - start)
        if reference is None:
            reference = estimate
        elif estimate != reference:
            raise AnalysisError(
                f"backend {name!r} broke the cross-backend identity contract: "
                f"{estimate.violations} != {reference.violations} violations"
            )
        timings.append(
            CampaignTiming(
                backend=name,
                seconds=best,
                trials_per_second=trials / best,
                violations=estimate.violations,
                violation_probability=estimate.violation_probability,
                mean_compromised_fraction=estimate.mean_compromised_fraction,
            )
        )
    return CampaignBenchmarkReport(
        trials=trials,
        replicas=replicas,
        vulnerabilities=len(scenario.catalog),
        ecosystem=ecosystem,
        exploit_probability=exploit_probability,
        budget=budget,
        seed=seed,
        repeats=repeats,
        timings=tuple(timings),
    )


def write_campaign_snapshot(report: CampaignBenchmarkReport, path: str) -> None:
    """Write a campaign benchmark report to ``path`` as indented JSON."""
    try:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(report.as_dict(), handle, indent=2, sort_keys=False)
            handle.write("\n")
    except OSError as error:
        raise AnalysisError(
            f"cannot write benchmark snapshot to {path!r}: {error}"
        ) from error
