"""Component-level diversity decomposition.

Section III-A discusses diversity slot by slot (trusted hardware, operating
system, consensus client, wallet, crypto library).  Whole-configuration
entropy hides *where* the monoculture sits; this module decomposes it:

- :func:`component_census` — the voting-power distribution over the choices
  of one component kind;
- :func:`component_entropy_profile` — per-kind entropy, largest share and
  whether a single fault in the dominant choice of that kind violates a
  protocol tolerance (the "weakest slot" view);
- :func:`weakest_component` — the slot whose dominant choice concentrates the
  most voting power, i.e. the cheapest single target for an attacker;
- :func:`exposure_by_component` — voting power exposed per concrete component,
  the raw input for prioritizing diversification or patching.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.backend import get_backend
from repro.backend.selection import BackendLike
from repro.core.configuration import ComponentKind, SoftwareComponent
from repro.core.distribution import ConfigurationDistribution
from repro.core.exceptions import AnalysisError
from repro.core.population import ReplicaPopulation
from repro.core.resilience import ProtocolFamily, tolerated_fault_fraction

#: Census key used for replicas that do not populate a given component kind.
ABSENT = "(absent)"


@dataclass(frozen=True)
class ComponentKindProfile:
    """Diversity summary of one component kind.

    Attributes:
        kind: the component slot.
        entropy_bits: Shannon entropy of the voting-power distribution over
            the slot's concrete choices (absent counts as its own choice).
        distinct_choices: number of concrete choices in use.
        dominant_component: identifier of the most popular choice.
        dominant_share: voting-power fraction running the dominant choice.
        single_fault_violates: whether one fault in the dominant choice
            compromises at least the protocol tolerance.
    """

    kind: ComponentKind
    entropy_bits: float
    distinct_choices: int
    dominant_component: str
    dominant_share: float
    single_fault_violates: bool


def component_census(
    population: ReplicaPopulation,
    kind: ComponentKind,
    *,
    weight_by_power: bool = True,
    backend: BackendLike = None,
) -> ConfigurationDistribution:
    """Voting-power (or replica-count) distribution over one component kind.

    The per-label accumulation runs on the selected compute backend's
    ``weighted_bincount`` kernel, which preserves first-appearance order, so
    the census is backend-independent.
    """
    if len(population) == 0:
        raise AnalysisError("cannot analyse an empty population")
    labels: List[str] = []
    weights: List[float] = []
    for replica in population:
        component = replica.configuration.component(kind)
        labels.append(component.identifier if component is not None else ABSENT)
        weights.append(replica.power if weight_by_power else 1.0)
    return ConfigurationDistribution(get_backend(backend).weighted_bincount(labels, weights))


def component_entropy_profile(
    population: ReplicaPopulation,
    *,
    family: ProtocolFamily = ProtocolFamily.BFT,
    weight_by_power: bool = True,
    backend: BackendLike = None,
) -> Tuple[ComponentKindProfile, ...]:
    """Per-kind diversity profile across every kind present in the population."""
    if len(population) == 0:
        raise AnalysisError("cannot analyse an empty population")
    kinds = sorted(
        {
            kind
            for replica in population
            for kind in replica.configuration.kinds()
        },
        key=lambda kind: kind.value,
    )
    tolerance = tolerated_fault_fraction(family)
    profiles = []
    for kind in kinds:
        census = component_census(
            population, kind, weight_by_power=weight_by_power, backend=backend
        )
        dominant_key, dominant_share = census.largest(1)[0]
        profiles.append(
            ComponentKindProfile(
                kind=kind,
                entropy_bits=census.entropy(),
                distinct_choices=census.support_size(),
                dominant_component=str(dominant_key),
                dominant_share=dominant_share,
                single_fault_violates=(
                    dominant_key != ABSENT and dominant_share >= tolerance
                ),
            )
        )
    return tuple(profiles)


def weakest_component(
    population: ReplicaPopulation,
    *,
    family: ProtocolFamily = ProtocolFamily.BFT,
    backend: BackendLike = None,
) -> ComponentKindProfile:
    """The slot whose dominant choice concentrates the most voting power."""
    profiles = component_entropy_profile(population, family=family, backend=backend)
    concrete = [profile for profile in profiles if profile.dominant_component != ABSENT]
    candidates = concrete or list(profiles)
    return max(candidates, key=lambda profile: profile.dominant_share)


def exposure_by_component(
    population: ReplicaPopulation,
    *,
    kind: Optional[ComponentKind] = None,
    backend: BackendLike = None,
) -> Dict[str, float]:
    """Voting power exposed per concrete component identifier.

    Args:
        population: the replica population.
        kind: restrict the analysis to one component kind (``None`` = all).
        backend: compute backend for the weighted accumulation.

    Returns:
        Mapping component identifier -> absolute exposed voting power, sorted
        by decreasing exposure.
    """
    if len(population) == 0:
        raise AnalysisError("cannot analyse an empty population")
    labels: List[str] = []
    weights: List[float] = []
    for replica in population:
        for component in replica.configuration:
            if kind is not None and component.kind is not kind:
                continue
            labels.append(component.identifier)
            weights.append(replica.power)
    exposure = get_backend(backend).weighted_bincount(labels, weights)
    return dict(sorted(exposure.items(), key=lambda item: (-item[1], item[0])))


def diversification_priority(
    population: ReplicaPopulation,
    *,
    family: ProtocolFamily = ProtocolFamily.BFT,
    backend: BackendLike = None,
) -> Tuple[Tuple[str, float], ...]:
    """Components whose exposure exceeds the protocol tolerance, largest first.

    These are the concrete components an operator community would have to
    diversify (or a Lazarus-style manager would migrate away from) before any
    single vulnerability stops being fatal.
    """
    tolerance = tolerated_fault_fraction(family)
    total = population.total_power()
    if total <= 0:
        raise AnalysisError("the population has no voting power")
    ranked = exposure_by_component(population, backend=backend)
    return tuple(
        (identifier, power / total)
        for identifier, power in ranked.items()
        if power / total >= tolerance
    )
