"""Plain-text tabular reports.

The paper's evaluation is one figure and one worked example; the reproduction
regenerates them as text tables and series so no plotting stack is required.
``Table`` is a tiny column-aligned formatter used by every experiment driver
and by ``EXPERIMENTS.md`` generation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Union

from repro.core.exceptions import AnalysisError

Cell = Union[str, int, float]


def _format_cell(cell: Cell, float_digits: int) -> str:
    if isinstance(cell, bool):  # bool is an int subclass; keep it readable
        return "yes" if cell else "no"
    if isinstance(cell, float):
        return f"{cell:.{float_digits}f}"
    return str(cell)


@dataclass
class Table:
    """A simple column-aligned text table.

    ``title`` is optional provenance used when a table travels inside a
    structured experiment result (several tables per experiment need telling
    apart); the text renderer ignores it.
    """

    headers: Sequence[str]
    rows: List[Sequence[Cell]] = field(default_factory=list)
    float_digits: int = 4
    title: Optional[str] = None

    def add_row(self, *cells: Cell) -> None:
        """Append one row; the cell count must match the headers."""
        if len(cells) != len(self.headers):
            raise AnalysisError(
                f"expected {len(self.headers)} cells, got {len(cells)}"
            )
        self.rows.append(tuple(cells))

    def extend(self, rows: Iterable[Sequence[Cell]]) -> None:
        """Append several rows."""
        for row in rows:
            self.add_row(*row)

    def render(self) -> str:
        """The table as aligned text."""
        return format_table(self.headers, self.rows, float_digits=self.float_digits)

    def __str__(self) -> str:
        return self.render()

    def __len__(self) -> int:
        return len(self.rows)

    def to_dict(self) -> Dict[str, Any]:
        """The table as a JSON-ready dict with **raw** (unformatted) cells.

        Cell types survive a JSON round-trip unchanged: ``bool`` stays bool
        (not collapsed into int), floats keep full precision — formatting is
        applied only at :meth:`render` time.
        """
        return {
            "title": self.title,
            "headers": list(self.headers),
            "rows": [list(row) for row in self.rows],
            "float_digits": self.float_digits,
        }

    @classmethod
    def from_dict(cls, document: Mapping[str, Any]) -> "Table":
        """Rebuild a table from :meth:`to_dict` output (validating shape)."""
        try:
            raw_headers = document["headers"]
            rows = document.get("rows", [])
            float_digits = int(document.get("float_digits", 4))
            title = document.get("title")
        except (KeyError, TypeError, ValueError) as error:
            raise AnalysisError(f"malformed table document: {error}") from error
        if isinstance(raw_headers, (str, bytes)) or not isinstance(raw_headers, Sequence):
            # A bare string would silently split into one column per character.
            raise AnalysisError(f"table headers must be a sequence, got {raw_headers!r}")
        headers = tuple(raw_headers)
        if not headers:
            raise AnalysisError("a table needs at least one column")
        if title is not None and not isinstance(title, str):
            raise AnalysisError(f"table title must be a string, got {title!r}")
        table = cls(headers=headers, float_digits=float_digits, title=title)
        for row in rows:
            if isinstance(row, (str, bytes)) or not isinstance(row, Sequence):
                raise AnalysisError(f"table row must be a sequence of cells, got {row!r}")
            table.add_row(*row)
        return table


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Cell]],
    *,
    float_digits: int = 4,
) -> str:
    """Format headers and rows as an aligned text table."""
    if not headers:
        raise AnalysisError("a table needs at least one column")
    formatted_rows = [
        [_format_cell(cell, float_digits) for cell in row] for row in rows
    ]
    for row in formatted_rows:
        if len(row) != len(headers):
            raise AnalysisError(
                f"row has {len(row)} cells but the table has {len(headers)} columns"
            )
    widths = [len(header) for header in headers]
    for row in formatted_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    header_line = "  ".join(header.ljust(widths[i]) for i, header in enumerate(headers))
    separator = "  ".join("-" * width for width in widths)
    body = [
        "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        for row in formatted_rows
    ]
    return "\n".join([header_line, separator, *body])


def format_series(
    name: str, points: Sequence[tuple], *, float_digits: int = 4
) -> str:
    """Format an ``(x, y)`` series as two aligned columns with a title."""
    table = Table(headers=("x", name), float_digits=float_digits)
    for x, y in points:
        table.add_row(x, y)
    return table.render()
