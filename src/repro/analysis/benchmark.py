"""Backend benchmark harness for the Monte-Carlo hot path.

Times :func:`~repro.analysis.monte_carlo.estimate_violation_probability` on
every available compute backend against the same census and seed, checks the
runs are deterministic per backend, and serializes the measurements as a JSON
perf snapshot (``BENCH_1.json`` in CI) so future optimization PRs have a
recorded trajectory to beat.

The workload is the acceptance-size one by default: 10k trials × 1k
configurations of a Zipf(1.2) census — large enough that interpreter
overhead dominates the scalar path, small enough to finish in seconds.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.analysis.monte_carlo import estimate_violation_probability
from repro.backend import available_backends, get_backend
from repro.core.exceptions import AnalysisError
from repro.datasets.generators import zipf_distribution

#: Schema version of the snapshot document.
SNAPSHOT_VERSION = 1


@dataclass(frozen=True)
class BackendTiming:
    """One backend's measurement on the benchmark workload.

    Attributes:
        backend: backend name.
        seconds: best-of-``repeats`` wall time for one full estimate.
        trials_per_second: ``trials / seconds``.
        violations: violation count (identical across repeats by contract).
        violation_probability: the estimate the timed run produced.
    """

    backend: str
    seconds: float
    trials_per_second: float
    violations: int
    violation_probability: float


@dataclass(frozen=True)
class BenchmarkReport:
    """All backend timings for one workload, plus the derived speedup."""

    trials: int
    configs: int
    exploit_budget: int
    vulnerability_probability: float
    seed: int
    repeats: int
    timings: Tuple[BackendTiming, ...]

    def timing(self, backend: str) -> BackendTiming:
        for timing in self.timings:
            if timing.backend == backend:
                return timing
        raise AnalysisError(f"backend {backend!r} was not benchmarked")

    def speedup_over_python(self, backend: str) -> Optional[float]:
        """``python_seconds / backend_seconds``; None when python was not run."""
        names = {timing.backend for timing in self.timings}
        if "python" not in names or backend not in names:
            return None
        return self.timing("python").seconds / self.timing(backend).seconds

    def as_dict(self) -> Dict:
        """JSON-serializable snapshot of the report."""
        document: Dict = {
            "version": SNAPSHOT_VERSION,
            "benchmark": "monte_carlo_estimator",
            "workload": {
                "trials": self.trials,
                "configs": self.configs,
                "exploit_budget": self.exploit_budget,
                "vulnerability_probability": self.vulnerability_probability,
                "seed": self.seed,
                "repeats": self.repeats,
                "census": "zipf(s=1.2)",
            },
            "results": {
                timing.backend: {
                    "seconds": timing.seconds,
                    "trials_per_second": timing.trials_per_second,
                    "violations": timing.violations,
                    "violation_probability": timing.violation_probability,
                }
                for timing in self.timings
            },
        }
        for timing in self.timings:
            if timing.backend != "python":
                speedup = self.speedup_over_python(timing.backend)
                if speedup is not None:
                    document[f"speedup_{timing.backend}_over_python"] = speedup
        return document


def benchmark_backends(
    *,
    trials: int = 10_000,
    configs: int = 1_000,
    exploit_budget: int = 1,
    vulnerability_probability: float = 0.25,
    seed: int = 42,
    repeats: int = 3,
    backends: Optional[Tuple[str, ...]] = None,
) -> BenchmarkReport:
    """Time the Monte-Carlo estimator on each backend with a shared workload.

    Each backend gets one untimed warmup run, then ``repeats`` timed runs of
    which the fastest counts (standard best-of-N to suppress scheduler
    noise).  A :class:`~repro.core.exceptions.AnalysisError` is raised if a
    backend's repeated runs disagree — that would break the determinism
    contract the equivalence tests rely on.
    """
    if trials <= 0 or configs <= 0:
        raise AnalysisError("trials and configs must be positive")
    if repeats <= 0:
        raise AnalysisError("repeats must be positive")
    selected = tuple(backends) if backends is not None else available_backends()
    if not selected:
        raise AnalysisError("no backends selected for benchmarking")
    census = zipf_distribution(configs, 1.2)
    timings = []
    for name in selected:
        backend = get_backend(name)

        def run():
            return estimate_violation_probability(
                census,
                vulnerability_probability=vulnerability_probability,
                exploit_budget=exploit_budget,
                trials=trials,
                seed=seed,
                backend=backend,
            )

        reference = run()  # warmup, also the determinism reference
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            estimate = run()
            elapsed = time.perf_counter() - start
            best = min(best, elapsed)
            if estimate.violations != reference.violations:
                raise AnalysisError(
                    f"backend {name!r} is non-deterministic: "
                    f"{estimate.violations} != {reference.violations} violations"
                )
        timings.append(
            BackendTiming(
                backend=name,
                seconds=best,
                trials_per_second=trials / best,
                violations=reference.violations,
                violation_probability=reference.violation_probability,
            )
        )
    return BenchmarkReport(
        trials=trials,
        configs=configs,
        exploit_budget=exploit_budget,
        vulnerability_probability=vulnerability_probability,
        seed=seed,
        repeats=repeats,
        timings=tuple(timings),
    )


def write_snapshot(report: BenchmarkReport, path: str) -> None:
    """Write a benchmark report to ``path`` as indented JSON."""
    try:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(report.as_dict(), handle, indent=2, sort_keys=False)
            handle.write("\n")
    except OSError as error:
        raise AnalysisError(f"cannot write benchmark snapshot to {path!r}: {error}") from error
