"""Benchmark harness for the sparse population plane.

Sweeps the replica count through the streaming build path
(:func:`~repro.faults.scenarios.sparse_ecosystem_matrix`) and the row-chunked
sparse campaign engine, recording per scale point:

- **build**: seconds to stream the population into CSR (the population is
  never materialized — peak memory is one replica chunk plus the CSR arrays);
- **sparse**: seconds for a full-catalog worst-case campaign through
  :meth:`BatchCampaignEngine.estimate` on the sparse matrix;
- **dense** (scales up to ``dense_limit`` only): the same campaign on the
  materialized population's dense matrix, asserted **bit-identical** to the
  sparse estimate — the benchmark doubles as the overlapping-scale identity
  gate;
- **peak RSS**: :func:`~repro.backend.timing.peak_rss_kb` after the point —
  the process high-water mark the CI scale-smoke job holds the million-replica
  sparse-only run (``--dense-limit 0``) to a documented ceiling with.

The snapshot (``BENCH_9.json`` in CI) records the per-scale timings, the
identity verdict and the memory high-water marks.  ``ru_maxrss`` never
shrinks, so a meaningful ceiling gate must skip the dense comparison (its
materialized population dominates the high-water mark); the default
invocation documents both paths instead.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.backend import get_backend
from repro.backend.timing import peak_rss_kb
from repro.core.exceptions import AnalysisError
from repro.faults.engine import BatchCampaignEngine, DEFAULT_CAMPAIGN_CHUNK_ROWS
from repro.faults.matrix import PopulationMatrix
from repro.faults.scenarios import resolve_ecosystem, sparse_ecosystem_matrix

#: Schema version of the snapshot document.
POPULATION_SNAPSHOT_VERSION = 1

#: Population sizes the default sweep covers (the 10⁴ → 10⁶ scale run).
DEFAULT_POPULATION_SIZES = (10_000, 100_000, 1_000_000)

#: Largest size the dense comparison materializes by default.
DEFAULT_DENSE_LIMIT = 100_000


@dataclass(frozen=True)
class PopulationScalePoint:
    """One population size's build/campaign timings and memory mark."""

    size: int
    nnz: int
    density: float
    build_seconds: float
    sparse_seconds: float
    sparse_trials_per_second: float
    dense_seconds: Optional[float]
    dense_trials_per_second: Optional[float]
    identical_sparse_vs_dense: Optional[bool]
    peak_rss_kb: int


@dataclass(frozen=True)
class PopulationBenchmarkReport:
    """All scale points for one sparse-population benchmark run."""

    backend: str
    ecosystem: str
    vulnerabilities: int
    trials: int
    exploit_probability: float
    seed: int
    repeats: int
    dense_limit: int
    chunk_rows: int
    memory_ceiling_kb: Optional[int]
    points: Tuple[PopulationScalePoint, ...]

    def point(self, size: int) -> PopulationScalePoint:
        for point in self.points:
            if point.size == size:
                return point
        raise AnalysisError(f"population size {size} was not benchmarked")

    def peak_rss_kb(self) -> int:
        """The largest high-water mark across every scale point."""
        return max(point.peak_rss_kb for point in self.points)

    def within_memory_ceiling(self) -> Optional[bool]:
        """Peak RSS vs the ceiling (``None`` when no ceiling was set)."""
        if self.memory_ceiling_kb is None:
            return None
        return self.peak_rss_kb() <= self.memory_ceiling_kb

    def identical_sparse_vs_dense(self) -> Optional[bool]:
        """Overall identity verdict (``None`` when no scale compared dense)."""
        verdicts = [
            point.identical_sparse_vs_dense
            for point in self.points
            if point.identical_sparse_vs_dense is not None
        ]
        if not verdicts:
            return None
        return all(verdicts)

    def as_dict(self) -> Dict:
        """JSON-serializable snapshot of the report."""
        document: Dict = {
            "version": POPULATION_SNAPSHOT_VERSION,
            "benchmark": "sparse_population_plane",
            "workload": {
                "backend": self.backend,
                "ecosystem": self.ecosystem,
                "vulnerabilities": self.vulnerabilities,
                "trials": self.trials,
                "exploit_probability": self.exploit_probability,
                "seed": self.seed,
                "repeats": self.repeats,
                "dense_limit": self.dense_limit,
                "chunk_rows": self.chunk_rows,
            },
            "results": {
                str(point.size): {
                    "nnz": point.nnz,
                    "density": point.density,
                    "build_seconds": point.build_seconds,
                    "sparse_seconds": point.sparse_seconds,
                    "sparse_trials_per_second": point.sparse_trials_per_second,
                    "dense_seconds": point.dense_seconds,
                    "dense_trials_per_second": point.dense_trials_per_second,
                    "identical_sparse_vs_dense": point.identical_sparse_vs_dense,
                    "peak_rss_kb": point.peak_rss_kb,
                }
                for point in self.points
            },
            "identical_sparse_vs_dense": self.identical_sparse_vs_dense(),
            "peak_rss_kb": self.peak_rss_kb(),
        }
        if self.memory_ceiling_kb is not None:
            document["memory_ceiling_kb"] = self.memory_ceiling_kb
            document["within_memory_ceiling"] = self.within_memory_ceiling()
        return document


def _best_of(repeats: int, run) -> Tuple[float, object]:
    """(best wall seconds, last result) over ``repeats`` timed runs."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = run()
        best = min(best, time.perf_counter() - start)
    return best, result


def benchmark_population(
    *,
    sizes: Tuple[int, ...] = DEFAULT_POPULATION_SIZES,
    trials: int = 32,
    ecosystem: str = "default",
    exploit_probability: float = 0.45,
    seed: int = 29,
    repeats: int = 1,
    dense_limit: int = DEFAULT_DENSE_LIMIT,
    chunk_rows: int = DEFAULT_CAMPAIGN_CHUNK_ROWS,
    memory_ceiling_mb: Optional[int] = None,
    backend: Optional[str] = None,
) -> PopulationBenchmarkReport:
    """Time the streaming sparse plane across population scales.

    Every size streams its population into a sparse matrix and runs one
    full-catalog campaign through the row-chunked sparse path; sizes within
    ``dense_limit`` additionally materialize the same population densely and
    assert the two estimates exactly equal (``dense_limit=0`` skips the
    dense comparison everywhere — the configuration the CI memory gate uses,
    since ``ru_maxrss`` is a process-lifetime high-water mark).
    """
    if not sizes:
        raise AnalysisError("at least one population size is required")
    if any(size <= 0 for size in sizes):
        raise AnalysisError("population sizes must be positive")
    if trials <= 0:
        raise AnalysisError(f"trial count must be positive, got {trials}")
    if repeats <= 0:
        raise AnalysisError("repeats must be positive")
    if dense_limit < 0:
        raise AnalysisError(f"dense limit must be non-negative, got {dense_limit}")
    if memory_ceiling_mb is not None and memory_ceiling_mb <= 0:
        raise AnalysisError(
            f"memory ceiling must be positive, got {memory_ceiling_mb}"
        )

    points = []
    vulnerabilities = 0
    resolved_backend = get_backend(backend).name
    for size in sorted(sizes):
        build_start = time.perf_counter()
        matrix, catalog = sparse_ecosystem_matrix(
            ecosystem=ecosystem,
            population_size=size,
            seed=seed,
            exploit_probability=exploit_probability,
        )
        build_seconds = time.perf_counter() - build_start
        vulnerabilities = len(catalog)
        engine = BatchCampaignEngine.from_matrix(
            matrix, backend=backend, chunk_rows=chunk_rows
        )

        def run_sparse(sparse_engine: BatchCampaignEngine = engine):
            return sparse_engine.estimate(trials=trials, seed=seed)

        sparse_seconds, sparse_estimate = _best_of(repeats, run_sparse)

        dense_seconds = None
        dense_rate = None
        identical = None
        if dense_limit and size <= dense_limit:
            population = resolve_ecosystem(ecosystem).sample_population(
                size, seed=seed
            )
            dense_matrix = PopulationMatrix.build(
                population, catalog, layout="dense"
            )
            dense_engine = BatchCampaignEngine.from_matrix(
                dense_matrix, backend=backend
            )

            def run_dense(engine_dense: BatchCampaignEngine = dense_engine):
                return engine_dense.estimate(trials=trials, seed=seed)

            dense_seconds, dense_estimate = _best_of(repeats, run_dense)
            dense_rate = trials / dense_seconds
            identical = sparse_estimate == dense_estimate

        points.append(
            PopulationScalePoint(
                size=size,
                nnz=matrix.nnz,
                density=matrix.density,
                build_seconds=build_seconds,
                sparse_seconds=sparse_seconds,
                sparse_trials_per_second=trials / sparse_seconds,
                dense_seconds=dense_seconds,
                dense_trials_per_second=dense_rate,
                identical_sparse_vs_dense=identical,
                peak_rss_kb=peak_rss_kb(),
            )
        )

    report = PopulationBenchmarkReport(
        backend=resolved_backend,
        ecosystem=ecosystem,
        vulnerabilities=vulnerabilities,
        trials=trials,
        exploit_probability=exploit_probability,
        seed=seed,
        repeats=repeats,
        dense_limit=dense_limit,
        chunk_rows=chunk_rows,
        memory_ceiling_kb=(
            None if memory_ceiling_mb is None else memory_ceiling_mb * 1024
        ),
        points=tuple(points),
    )
    if report.identical_sparse_vs_dense() is False:
        raise AnalysisError(
            "the sparse campaign path broke bit-identity with the dense path"
        )
    return report


def write_population_snapshot(report: PopulationBenchmarkReport, path: str) -> None:
    """Write a population benchmark report to ``path`` as indented JSON."""
    try:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(report.as_dict(), handle, indent=2, sort_keys=False)
            handle.write("\n")
    except OSError as error:
        raise AnalysisError(
            f"cannot write benchmark snapshot to {path!r}: {error}"
        ) from error
