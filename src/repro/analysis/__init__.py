"""Analysis tools: Monte-Carlo safety estimation, parameter sweeps and reports.

- :mod:`repro.analysis.monte_carlo` -- probability of a safety violation
  under randomly-arriving shared vulnerabilities, as a function of the
  configuration census.
- :mod:`repro.analysis.sweep` -- generic parameter-sweep helpers used by the
  experiments and benchmarks.
- :mod:`repro.analysis.report` -- plain-text tables (no plotting dependency)
  matching the rows/series the paper reports.
"""

from repro.analysis.components import (
    ComponentKindProfile,
    component_census,
    component_entropy_profile,
    diversification_priority,
    exposure_by_component,
    weakest_component,
)
from repro.analysis.monte_carlo import (
    SafetyViolationEstimate,
    estimate_violation_probability,
)
from repro.analysis.report import Table, format_table
from repro.analysis.sweep import SweepResult, sweep

__all__ = [
    "ComponentKindProfile",
    "SafetyViolationEstimate",
    "SweepResult",
    "Table",
    "component_census",
    "component_entropy_profile",
    "diversification_priority",
    "estimate_violation_probability",
    "exposure_by_component",
    "format_table",
    "sweep",
    "weakest_component",
]
