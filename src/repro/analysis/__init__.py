"""Analysis tools: Monte-Carlo safety estimation, parameter sweeps and reports.

- :mod:`repro.analysis.monte_carlo` -- probability of a safety violation
  under randomly-arriving shared vulnerabilities, as a function of the
  configuration census; runs on a pluggable compute backend
  (:mod:`repro.backend`) and supports parallel census fan-out.
- :mod:`repro.analysis.sweep` -- generic parameter-sweep helpers used by the
  experiments and benchmarks, with optional thread-pool parallelism.
- :mod:`repro.analysis.benchmark` -- times the Monte-Carlo hot path on every
  available backend and serializes perf snapshots (``BENCH_1.json``).
- :mod:`repro.analysis.report` -- plain-text tables (no plotting dependency)
  matching the rows/series the paper reports.
"""

from repro.analysis.benchmark import BenchmarkReport, benchmark_backends, write_snapshot
from repro.analysis.components import (
    ComponentKindProfile,
    component_census,
    component_entropy_profile,
    diversification_priority,
    exposure_by_component,
    weakest_component,
)
from repro.analysis.monte_carlo import (
    SafetyViolationEstimate,
    analytic_single_vulnerability_violation,
    estimate_violation_probability,
    violation_probability_by_entropy,
)
from repro.analysis.report import Table, format_table
from repro.analysis.sweep import SweepResult, mapping_sweep, sweep

__all__ = [
    "BenchmarkReport",
    "ComponentKindProfile",
    "SafetyViolationEstimate",
    "SweepResult",
    "Table",
    "analytic_single_vulnerability_violation",
    "benchmark_backends",
    "component_census",
    "component_entropy_profile",
    "diversification_priority",
    "estimate_violation_probability",
    "exposure_by_component",
    "format_table",
    "mapping_sweep",
    "sweep",
    "violation_probability_by_entropy",
    "weakest_component",
    "write_snapshot",
]
