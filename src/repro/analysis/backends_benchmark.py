"""Three-way backend benchmark: python vs numpy vs shm worker sweeps.

Phase A replays the ``BENCH_5.json`` campaign workload (10k trials × 150
replicas through :meth:`BatchCampaignEngine.estimate_worst_case`) on the
scalar python backend, the vectorized numpy backend, and the shared-memory
multiprocess ``shm`` backend at each requested worker count.  The campaign
kernels share one counter-based RNG stream and every shipped scenario's
replica powers are 1.0 (exact float64 sums), so all measurements are
asserted *identical* — the speedup table can never hide a numerics change.

Phase B replays the ``BENCH_9.json`` sparse workload at sweep scale: a
budgeted :meth:`~repro.backend.base.ComputeBackend.sparse_campaign_grid`
over a CSR ecosystem (10⁷ replicas in the committed snapshot), once with
the shm backend's exact column pruning and once with pruning disabled
(``REPRO_SHM_PRUNE=0``), asserting the two runs byte-identical and
recording parent peak RSS against an optional memory ceiling.

The snapshot (``BENCH_10.json`` in CI) records the host's CPU count next
to every speedup: a single-core container honestly shows ~1× from process
fan-out, which is why the CI gate (``--min-speedup``) runs on multi-core
runners rather than being baked into the library.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Tuple

from contextlib import contextmanager

from repro.backend import available_backends, get_backend
from repro.backend.base import CampaignGridPoint
from repro.backend.shm_backend import PRUNE_ENV_VAR, WORKERS_ENV_VAR
from repro.backend.timing import peak_rss_kb
from repro.core.exceptions import AnalysisError
from repro.faults.engine import BatchCampaignEngine, CampaignEstimate
from repro.faults.scenarios import ecosystem_scenario, sparse_ecosystem_matrix

#: Schema version of the snapshot document.
BACKENDS_SNAPSHOT_VERSION = 1

#: Worker counts swept for the shm backend by default.
DEFAULT_WORKER_COUNTS = (1, 2, 4, 8)

#: Sparse sweep scale of the committed snapshot (Phase B).
DEFAULT_SPARSE_SIZE = 10_000_000

#: Tolerances evaluated by the sparse grid point.
SPARSE_TOLERANCES = (1.0 / 3.0, 0.5)


@dataclass(frozen=True)
class BackendTiming:
    """One backend configuration's measurement on the campaign workload."""

    label: str
    backend: str
    workers: Optional[int]
    trials: int
    seconds: float
    trials_per_second: float
    identical: bool


@dataclass(frozen=True)
class SparseSweepResult:
    """The column-pruned sparse campaign at sweep scale (shm backend)."""

    population_size: int
    trials: int
    nnz: int
    workers: int
    budget: int
    build_seconds: float
    pruned_seconds: float
    unpruned_seconds: Optional[float]
    pruned_identical_to_unpruned: Optional[bool]
    peak_rss_kb: int

    def prune_speedup(self) -> Optional[float]:
        if self.unpruned_seconds is None or self.pruned_seconds <= 0:
            return None
        return self.unpruned_seconds / self.pruned_seconds


@dataclass(frozen=True)
class BackendsBenchmarkReport:
    """All backend timings plus the sparse sweep for one workload."""

    trials: int
    python_trials: int
    replicas: int
    vulnerabilities: int
    ecosystem: str
    exploit_probability: float
    budget: int
    seed: int
    repeats: int
    cpu_count: int
    worker_counts: Tuple[int, ...]
    timings: Tuple[BackendTiming, ...]
    sparse: Optional[SparseSweepResult]
    memory_ceiling_mb: Optional[int]

    def timing(self, label: str) -> BackendTiming:
        for timing in self.timings:
            if timing.label == label:
                return timing
        raise AnalysisError(f"configuration {label!r} was not benchmarked")

    def shm_speedup_over_numpy(self, workers: int) -> Optional[float]:
        """Throughput ratio of ``shm`` at ``workers`` over plain numpy."""
        labels = {timing.label for timing in self.timings}
        label = f"shm[w={workers}]"
        if "numpy" not in labels or label not in labels:
            return None
        return (
            self.timing(label).trials_per_second
            / self.timing("numpy").trials_per_second
        )

    @property
    def memory_ceiling_kb(self) -> Optional[int]:
        if self.memory_ceiling_mb is None:
            return None
        return self.memory_ceiling_mb * 1024

    def within_memory_ceiling(self) -> Optional[bool]:
        """None without a ceiling or sparse phase; else the gate verdict."""
        if self.memory_ceiling_kb is None or self.sparse is None:
            return None
        return self.sparse.peak_rss_kb <= self.memory_ceiling_kb

    def as_dict(self) -> Dict:
        """JSON-serializable snapshot of the report."""
        document: Dict = {
            "version": BACKENDS_SNAPSHOT_VERSION,
            "benchmark": "backend_comparison",
            "workload": {
                "trials": self.trials,
                "python_trials": self.python_trials,
                "replicas": self.replicas,
                "vulnerabilities": self.vulnerabilities,
                "ecosystem": self.ecosystem,
                "exploit_probability": self.exploit_probability,
                "budget": self.budget,
                "seed": self.seed,
                "repeats": self.repeats,
                "cpu_count": self.cpu_count,
                "worker_counts": list(self.worker_counts),
            },
            "results": {
                timing.label: {
                    "backend": timing.backend,
                    "workers": timing.workers,
                    "trials": timing.trials,
                    "seconds": timing.seconds,
                    "trials_per_second": timing.trials_per_second,
                    "identical": timing.identical,
                }
                for timing in self.timings
            },
            "speedups_shm_over_numpy": {
                str(workers): self.shm_speedup_over_numpy(workers)
                for workers in self.worker_counts
            },
        }
        if self.sparse is not None:
            document["sparse_sweep"] = {
                "population_size": self.sparse.population_size,
                "trials": self.sparse.trials,
                "nnz": self.sparse.nnz,
                "workers": self.sparse.workers,
                "budget": self.sparse.budget,
                "build_seconds": self.sparse.build_seconds,
                "pruned_seconds": self.sparse.pruned_seconds,
                "unpruned_seconds": self.sparse.unpruned_seconds,
                "pruned_identical_to_unpruned": (
                    self.sparse.pruned_identical_to_unpruned
                ),
                "prune_speedup": self.sparse.prune_speedup(),
                "peak_rss_kb": self.sparse.peak_rss_kb,
            }
        document["memory_ceiling_kb"] = self.memory_ceiling_kb
        document["within_memory_ceiling"] = self.within_memory_ceiling()
        return document


@contextmanager
def _environment(overrides: Dict[str, Optional[str]]) -> Iterator[None]:
    """Temporarily set/unset environment variables, restoring on exit."""
    saved = {name: os.environ.get(name) for name in overrides}
    try:
        for name, value in overrides.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value
        yield
    finally:
        for name, value in saved.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value


def _time_campaign(
    engine: BatchCampaignEngine,
    *,
    budget: int,
    trials: int,
    seed: int,
    repeats: int,
) -> Tuple[float, CampaignEstimate]:
    """Best-of-``repeats`` wall time for one worst-case campaign estimate."""

    def run(run_trials: int) -> CampaignEstimate:
        return engine.estimate_worst_case(
            max_vulnerabilities=budget, trials=run_trials, seed=seed
        )

    run(min(trials, 500))  # warmup: array conversion, pools, shm publication
    best = float("inf")
    estimate: Optional[CampaignEstimate] = None
    for _ in range(repeats):
        start = time.perf_counter()
        estimate = run(trials)
        best = min(best, time.perf_counter() - start)
    assert estimate is not None  # repeats >= 1 is validated by the caller
    return best, estimate


def benchmark_backend_suite(
    *,
    trials: int = 10_000,
    python_trials: int = 1_000,
    replicas: int = 150,
    ecosystem: str = "default",
    exploit_probability: float = 0.6,
    budget: int = 4,
    seed: int = 42,
    repeats: int = 2,
    worker_counts: Tuple[int, ...] = DEFAULT_WORKER_COUNTS,
    sparse_size: int = DEFAULT_SPARSE_SIZE,
    sparse_trials: int = 8,
    sparse_workers: int = 4,
    sparse_seed: int = 29,
    sparse_exploit_probability: float = 0.45,
    compare_unpruned: bool = True,
    memory_ceiling_mb: Optional[int] = None,
) -> BackendsBenchmarkReport:
    """Run both benchmark phases; see the module docstring for the design.

    Phase A requires the numpy backend (it is the identity reference and
    the speedup denominator); the python backend runs a reduced
    ``python_trials`` workload (the scalar loop is ~100× slower) checked
    against a numpy run of the same size.  Phase B runs only when the shm
    backend is available and ``sparse_size > 0``.
    """
    if trials <= 0 or replicas <= 0:
        raise AnalysisError("trials and replicas must be positive")
    if python_trials < 0 or repeats <= 0:
        raise AnalysisError("python_trials must be >= 0 and repeats positive")
    if any(count <= 0 for count in worker_counts):
        raise AnalysisError("worker counts must be positive")
    names = available_backends()
    if "numpy" not in names:
        raise AnalysisError(
            "the backend comparison needs the numpy backend as its "
            "identity reference"
        )
    scenario = ecosystem_scenario(
        ecosystem=ecosystem,
        population_size=replicas,
        seed=seed,
        exploit_probability=exploit_probability,
    )
    timings = []

    def engine_for(backend: str) -> BatchCampaignEngine:
        return BatchCampaignEngine(
            scenario.population, scenario.catalog, backend=backend
        )

    numpy_engine = engine_for("numpy")
    numpy_seconds, reference = _time_campaign(
        numpy_engine, budget=budget, trials=trials, seed=seed, repeats=repeats
    )
    timings.append(
        BackendTiming(
            label="numpy",
            backend="numpy",
            workers=None,
            trials=trials,
            seconds=numpy_seconds,
            trials_per_second=trials / numpy_seconds,
            identical=True,
        )
    )

    if "python" in names and python_trials > 0:
        python_seconds, python_estimate = _time_campaign(
            engine_for("python"),
            budget=budget,
            trials=python_trials,
            seed=seed,
            repeats=repeats,
        )
        python_reference = numpy_engine.estimate_worst_case(
            max_vulnerabilities=budget, trials=python_trials, seed=seed
        )
        if python_estimate != python_reference:
            raise AnalysisError(
                "the python backend broke the cross-backend identity "
                "contract on the benchmark workload"
            )
        timings.append(
            BackendTiming(
                label="python",
                backend="python",
                workers=None,
                trials=python_trials,
                seconds=python_seconds,
                trials_per_second=python_trials / python_seconds,
                identical=True,
            )
        )

    shm_available = "shm" in names
    if shm_available:
        shm_engine = engine_for("shm")
        for workers in worker_counts:
            with _environment({WORKERS_ENV_VAR: str(workers)}):
                shm_seconds, shm_estimate = _time_campaign(
                    shm_engine,
                    budget=budget,
                    trials=trials,
                    seed=seed,
                    repeats=repeats,
                )
            if shm_estimate != reference:
                raise AnalysisError(
                    f"the shm backend at {workers} workers broke the "
                    "cross-backend identity contract on the benchmark "
                    "workload"
                )
            timings.append(
                BackendTiming(
                    label=f"shm[w={workers}]",
                    backend="shm",
                    workers=workers,
                    trials=trials,
                    seconds=shm_seconds,
                    trials_per_second=trials / shm_seconds,
                    identical=True,
                )
            )

    sparse: Optional[SparseSweepResult] = None
    if shm_available and sparse_size > 0:
        sparse = _sparse_sweep(
            size=sparse_size,
            trials=sparse_trials,
            workers=sparse_workers,
            budget=budget,
            seed=sparse_seed,
            ecosystem=ecosystem,
            exploit_probability=sparse_exploit_probability,
            compare_unpruned=compare_unpruned,
        )

    return BackendsBenchmarkReport(
        trials=trials,
        python_trials=python_trials,
        replicas=replicas,
        vulnerabilities=len(scenario.catalog),
        ecosystem=ecosystem,
        exploit_probability=exploit_probability,
        budget=budget,
        seed=seed,
        repeats=repeats,
        cpu_count=os.cpu_count() or 1,
        worker_counts=tuple(worker_counts),
        timings=tuple(timings),
        sparse=sparse,
        memory_ceiling_mb=memory_ceiling_mb,
    )


def _sparse_sweep(
    *,
    size: int,
    trials: int,
    workers: int,
    budget: int,
    seed: int,
    ecosystem: str,
    exploit_probability: float,
    compare_unpruned: bool,
) -> SparseSweepResult:
    """Phase B: the budgeted sparse campaign, pruned vs unpruned."""
    if trials <= 0 or workers <= 0:
        raise AnalysisError("sparse trials and workers must be positive")
    start = time.perf_counter()
    matrix, _catalog = sparse_ecosystem_matrix(
        ecosystem=ecosystem,
        population_size=size,
        seed=seed,
        exploit_probability=exploit_probability,
    )
    sparse_exposure = matrix.sparse_exposure()
    build_seconds = time.perf_counter() - start
    backend = get_backend("shm")
    point = CampaignGridPoint(tolerances=SPARSE_TOLERANCES, budget=budget)

    def run() -> Tuple[float, object]:
        begin = time.perf_counter()
        results = backend.sparse_campaign_grid(
            sparse_exposure,
            (point,),
            trials=trials,
            seed=seed,
            total_power=matrix.total_power,
        )
        return time.perf_counter() - begin, results

    with _environment({WORKERS_ENV_VAR: str(workers), PRUNE_ENV_VAR: None}):
        pruned_seconds, pruned_results = run()
    unpruned_seconds: Optional[float] = None
    identical: Optional[bool] = None
    if compare_unpruned:
        with _environment({WORKERS_ENV_VAR: str(workers), PRUNE_ENV_VAR: "0"}):
            unpruned_seconds, unpruned_results = run()
        identical = pruned_results == unpruned_results
        if not identical:
            raise AnalysisError(
                "column pruning changed the sparse campaign output — the "
                "exactness contract is broken"
            )
    return SparseSweepResult(
        population_size=size,
        trials=trials,
        nnz=sparse_exposure.nnz,
        workers=workers,
        budget=budget,
        build_seconds=build_seconds,
        pruned_seconds=pruned_seconds,
        unpruned_seconds=unpruned_seconds,
        pruned_identical_to_unpruned=identical,
        peak_rss_kb=peak_rss_kb(),
    )


def write_backends_snapshot(report: BackendsBenchmarkReport, path: str) -> None:
    """Write a backend comparison report to ``path`` as indented JSON."""
    try:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(report.as_dict(), handle, indent=2, sort_keys=False)
            handle.write("\n")
    except OSError as error:
        raise AnalysisError(
            f"cannot write benchmark snapshot to {path!r}: {error}"
        ) from error
