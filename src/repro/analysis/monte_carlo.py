"""Monte-Carlo estimation of safety-violation probability.

The Section II-C condition is deterministic once the compromised powers are
known; what is *not* deterministic in practice is which components turn out
to harbor exploitable vulnerabilities during a given window.  The estimator
here samples that uncertainty: in each trial, every distinct component (or
configuration) independently turns out vulnerable with a given probability,
the attacker exploits the ``m`` most damaging of the vulnerable ones, and the
trial records whether the compromised power exceeds the protocol's tolerance.

Running the estimator across populations with different census entropy makes
the paper's core claim quantitative: the probability that a small number of
shared faults violates safety falls as diversity (entropy) rises.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Hashable, Mapping, Optional, Sequence, Tuple

from repro.core.distribution import ConfigurationDistribution
from repro.core.exceptions import AnalysisError
from repro.core.resilience import ProtocolFamily, tolerated_fault_fraction


@dataclass(frozen=True)
class SafetyViolationEstimate:
    """Result of a Monte-Carlo safety estimation.

    Attributes:
        trials: number of sampled vulnerability scenarios.
        violations: scenarios in which compromised power reached the tolerance.
        violation_probability: ``violations / trials``.
        mean_compromised_fraction: mean compromised power fraction per trial.
        tolerated_fraction: the protocol tolerance used for the verdicts.
    """

    trials: int
    violations: int
    violation_probability: float
    mean_compromised_fraction: float
    tolerated_fraction: float


def estimate_violation_probability(
    census: ConfigurationDistribution,
    *,
    family: ProtocolFamily = ProtocolFamily.BFT,
    vulnerability_probability: float = 0.2,
    exploit_budget: int = 1,
    trials: int = 1000,
    seed: int = 0,
    tolerated_fraction: Optional[float] = None,
) -> SafetyViolationEstimate:
    """Estimate the probability that shared vulnerabilities violate safety.

    Args:
        census: the configuration distribution of voting power.  Each
            configuration is one independent fault domain (the paper's
            best-case assumption); its share is the power lost if it turns out
            vulnerable and is exploited.
        family: protocol family providing the tolerance (1/3 BFT, 1/2 hybrid
            and Nakamoto).
        vulnerability_probability: probability that any given configuration
            has an exploitable vulnerability during the window.
        exploit_budget: how many vulnerable configurations the attacker can
            exploit simultaneously (it greedily picks the largest shares).
        trials: Monte-Carlo sample count.
        seed: RNG seed.
        tolerated_fraction: explicit tolerance override (otherwise derived
            from ``family``).
    """
    if not 0.0 <= vulnerability_probability <= 1.0:
        raise AnalysisError(
            f"vulnerability probability must be in [0, 1], got {vulnerability_probability}"
        )
    if exploit_budget < 0:
        raise AnalysisError(f"exploit budget must be non-negative, got {exploit_budget}")
    if trials <= 0:
        raise AnalysisError(f"trial count must be positive, got {trials}")
    tolerance = (
        tolerated_fraction
        if tolerated_fraction is not None
        else tolerated_fault_fraction(family)
    )
    if not 0.0 < tolerance <= 1.0:
        raise AnalysisError(f"tolerated fraction must be in (0, 1], got {tolerance}")

    shares = sorted(census.probabilities(), reverse=True)
    rng = random.Random(seed)
    violations = 0
    compromised_total = 0.0
    for _ in range(trials):
        vulnerable = [share for share in shares if rng.random() < vulnerability_probability]
        vulnerable.sort(reverse=True)
        compromised = sum(vulnerable[:exploit_budget])
        compromised_total += compromised
        if compromised >= tolerance:
            violations += 1
    return SafetyViolationEstimate(
        trials=trials,
        violations=violations,
        violation_probability=violations / trials,
        mean_compromised_fraction=compromised_total / trials,
        tolerated_fraction=tolerance,
    )


def violation_probability_by_entropy(
    censuses: Mapping[Hashable, ConfigurationDistribution],
    *,
    family: ProtocolFamily = ProtocolFamily.BFT,
    vulnerability_probability: float = 0.2,
    exploit_budget: int = 1,
    trials: int = 1000,
    seed: int = 0,
) -> Tuple[Tuple[Hashable, float, float], ...]:
    """Estimate violation probability for several censuses at once.

    Returns ``(label, entropy_bits, violation_probability)`` tuples sorted by
    entropy, which is the series the safety-violation experiment reports.
    """
    if not censuses:
        raise AnalysisError("at least one census is required")
    rows = []
    for index, (label, census) in enumerate(censuses.items()):
        estimate = estimate_violation_probability(
            census,
            family=family,
            vulnerability_probability=vulnerability_probability,
            exploit_budget=exploit_budget,
            trials=trials,
            seed=seed + index,
        )
        rows.append((label, census.entropy(), estimate.violation_probability))
    rows.sort(key=lambda row: row[1])
    return tuple(rows)


def analytic_single_vulnerability_violation(
    census: ConfigurationDistribution,
    *,
    vulnerability_probability: float,
    tolerated_fraction: float,
) -> float:
    """Closed-form check for the ``exploit_budget = 1`` case.

    With one exploit, safety is violated exactly when at least one
    configuration whose share reaches the tolerance turns out vulnerable, so
    the probability is ``1 - (1 - p)^c`` where ``c`` counts configurations at
    or above the tolerance.  Used to validate the Monte-Carlo estimator.
    """
    if not 0.0 <= vulnerability_probability <= 1.0:
        raise AnalysisError(
            f"vulnerability probability must be in [0, 1], got {vulnerability_probability}"
        )
    if not 0.0 < tolerated_fraction <= 1.0:
        raise AnalysisError(
            f"tolerated fraction must be in (0, 1], got {tolerated_fraction}"
        )
    critical = sum(1 for share in census.probabilities() if share >= tolerated_fraction)
    return 1.0 - (1.0 - vulnerability_probability) ** critical
