"""Monte-Carlo estimation of safety-violation probability.

The Section II-C condition is deterministic once the compromised powers are
known; what is *not* deterministic in practice is which components turn out
to harbor exploitable vulnerabilities during a given window.  The estimator
here samples that uncertainty: in each trial, every distinct component (or
configuration) independently turns out vulnerable with a given probability,
the attacker exploits the ``m`` most damaging of the vulnerable ones, and the
trial records whether the compromised power exceeds the protocol's tolerance.

Running the estimator across populations with different census entropy makes
the paper's core claim quantitative: the probability that a small number of
shared faults violates safety falls as diversity (entropy) rises.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Mapping, Optional, Sequence, Tuple

from repro.analysis.sweep import mapping_sweep
from repro.backend import get_backend
from repro.backend.selection import BackendLike
from repro.core.distribution import ConfigurationDistribution
from repro.core.exceptions import AnalysisError
from repro.core.resilience import ProtocolFamily, tolerated_fault_fraction
from repro.faults.engine import run_census_trials


@dataclass(frozen=True)
class SafetyViolationEstimate:
    """Result of a Monte-Carlo safety estimation.

    Attributes:
        trials: number of sampled vulnerability scenarios.
        violations: scenarios in which compromised power reached the tolerance.
        violation_probability: ``violations / trials``.
        mean_compromised_fraction: mean compromised power fraction per trial.
        tolerated_fraction: the protocol tolerance used for the verdicts.
    """

    trials: int
    violations: int
    violation_probability: float
    mean_compromised_fraction: float
    tolerated_fraction: float


def estimate_violation_probability(
    census: ConfigurationDistribution,
    *,
    family: ProtocolFamily = ProtocolFamily.BFT,
    vulnerability_probability: float = 0.2,
    exploit_budget: int = 1,
    trials: int = 1000,
    seed: int = 0,
    tolerated_fraction: Optional[float] = None,
    backend: BackendLike = None,
) -> SafetyViolationEstimate:
    """Estimate the probability that shared vulnerabilities violate safety.

    Args:
        census: the configuration distribution of voting power.  Each
            configuration is one independent fault domain (the paper's
            best-case assumption); its share is the power lost if it turns out
            vulnerable and is exploited.
        family: protocol family providing the tolerance (1/3 BFT, 1/2 hybrid
            and Nakamoto).
        vulnerability_probability: probability that any given configuration
            has an exploitable vulnerability during the window.
        exploit_budget: how many vulnerable configurations the attacker can
            exploit simultaneously (it greedily picks the largest shares).
        trials: Monte-Carlo sample count.
        seed: RNG seed.  Results are deterministic per backend for a fixed
            seed; the pure-Python and NumPy backends use different RNG
            streams and agree only within Monte-Carlo tolerance.
        tolerated_fraction: explicit tolerance override (otherwise derived
            from ``family``).
        backend: compute backend name ("python", "numpy", "auto"), instance,
            or ``None`` to use :func:`repro.backend.get_backend` resolution
            (default / ``REPRO_BACKEND`` / auto-detect).
    """
    if not 0.0 <= vulnerability_probability <= 1.0:
        raise AnalysisError(
            f"vulnerability probability must be in [0, 1], got {vulnerability_probability}"
        )
    if exploit_budget < 0:
        raise AnalysisError(f"exploit budget must be non-negative, got {exploit_budget}")
    if trials <= 0:
        raise AnalysisError(f"trial count must be positive, got {trials}")
    tolerance = (
        tolerated_fraction
        if tolerated_fraction is not None
        else tolerated_fault_fraction(family)
    )
    if not 0.0 < tolerance <= 1.0:
        raise AnalysisError(f"tolerated fraction must be in (0, 1], got {tolerance}")

    # Census-mode trials route through the campaign engine's backend seam;
    # the kernel, RNG streams and therefore every number are unchanged.
    batch = run_census_trials(
        census,
        vulnerability_probability=vulnerability_probability,
        exploit_budget=exploit_budget,
        trials=trials,
        seed=seed,
        tolerance=tolerance,
        backend=backend,
    )
    return SafetyViolationEstimate(
        trials=batch.trials,
        violations=batch.violations,
        violation_probability=batch.violations / batch.trials,
        mean_compromised_fraction=batch.compromised_total / batch.trials,
        tolerated_fraction=tolerance,
    )


def violation_probability_by_entropy(
    censuses: Mapping[Hashable, ConfigurationDistribution],
    *,
    family: ProtocolFamily = ProtocolFamily.BFT,
    vulnerability_probability: float = 0.2,
    exploit_budget: int = 1,
    trials: int = 1000,
    seed: int = 0,
    backend: BackendLike = None,
    parallel: bool = False,
    max_workers: Optional[int] = None,
) -> Tuple[Tuple[Hashable, float, float], ...]:
    """Estimate violation probability for several censuses at once.

    Returns ``(label, entropy_bits, violation_probability)`` tuples sorted by
    entropy, which is the series the safety-violation experiment reports.

    Each census gets its own deterministic seed (``seed + index`` over the
    mapping's iteration order), so with ``parallel=True`` the points are
    fanned out over a thread pool and the result is identical to the serial
    run regardless of scheduling.
    """
    if not censuses:
        raise AnalysisError("at least one census is required")
    resolved = get_backend(backend)

    def estimate_point(index: int, label: Hashable, census: ConfigurationDistribution):
        estimate = estimate_violation_probability(
            census,
            family=family,
            vulnerability_probability=vulnerability_probability,
            exploit_budget=exploit_budget,
            trials=trials,
            seed=seed + index,
            backend=resolved,
        )
        return (label, census.entropy(), estimate.violation_probability)

    rows = mapping_sweep(
        censuses, estimate_point, parallel=parallel, max_workers=max_workers
    )
    rows.sort(key=lambda row: row[1])
    return tuple(rows)


def analytic_single_vulnerability_violation(
    census: ConfigurationDistribution,
    *,
    vulnerability_probability: float,
    tolerated_fraction: float,
) -> float:
    """Closed-form check for the ``exploit_budget = 1`` case.

    With one exploit, safety is violated exactly when at least one
    configuration whose share reaches the tolerance turns out vulnerable, so
    the probability is ``1 - (1 - p)^c`` where ``c`` counts configurations at
    or above the tolerance.  Used to validate the Monte-Carlo estimator.
    """
    if not 0.0 <= vulnerability_probability <= 1.0:
        raise AnalysisError(
            f"vulnerability probability must be in [0, 1], got {vulnerability_probability}"
        )
    if not 0.0 < tolerated_fraction <= 1.0:
        raise AnalysisError(
            f"tolerated fraction must be in (0, 1], got {tolerated_fraction}"
        )
    critical = sum(1 for share in census.probabilities() if share >= tolerated_fraction)
    return 1.0 - (1.0 - vulnerability_probability) ** critical
