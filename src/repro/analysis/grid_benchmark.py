"""Benchmark harness for the fused grid campaign engine.

Times one whole scenario grid — adversary budgets × exploit reliabilities,
every point judged at the BFT and majority tolerances — three ways:

- **fused**: one :meth:`GridCampaignEngine.estimate_grid` call per backend,
  the single-kernel path the campaign sweep experiments now use;
- **looped**: the pre-grid pattern, one
  :meth:`BatchCampaignEngine.estimate_worst_case` call per (point, family) —
  what ``speedup_fused_over_looped_numpy`` is measured against;
- **scalar**: the fused pure-Python backend, which *is* the scalar per-cell
  loop.  The full workload takes minutes scalar, so it runs at a reduced
  ``scalar_trials`` and the fused-over-scalar factor compares point-trial
  throughput (the per-trial cost is constant in the trial count).

The grid kernels are bit-identical to the looped path by contract, so the
benchmark doubles as an end-to-end identity check: every fused estimate is
asserted **equal** to its looped counterpart, not just close.  The snapshot
(``BENCH_8.json`` in CI) records both speedup factors the grid-smoke job
gates on.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.backend import available_backends
from repro.core.exceptions import AnalysisError
from repro.core.resilience import ProtocolFamily
from repro.faults.engine import (
    BatchCampaignEngine,
    GridCampaignEngine,
    GridPointEstimate,
    GridPointRequest,
)
from repro.faults.scenarios import ecosystem_scenario, family_tolerances

#: Schema version of the snapshot document.
GRID_SNAPSHOT_VERSION = 1

#: The two protocol families every grid point is judged at.
GRID_FAMILIES = (ProtocolFamily.BFT, ProtocolFamily.NAKAMOTO)


@dataclass(frozen=True)
class GridTiming:
    """One execution mode's measurement on the grid benchmark workload."""

    mode: str
    backend: str
    trials: int
    seconds: float
    point_trials_per_second: float


@dataclass(frozen=True)
class GridBenchmarkReport:
    """All mode timings for one grid workload."""

    trials: int
    scalar_trials: int
    replicas: int
    vulnerabilities: int
    grid_points: int
    ecosystem: str
    budgets: Tuple[int, ...]
    probabilities: Tuple[float, ...]
    seed: int
    repeats: int
    identical_fused_vs_looped: bool
    timings: Tuple[GridTiming, ...]

    def timing(self, mode: str) -> GridTiming:
        for timing in self.timings:
            if timing.mode == mode:
                return timing
        raise AnalysisError(f"mode {mode!r} was not benchmarked")

    def _has(self, mode: str) -> bool:
        return any(timing.mode == mode for timing in self.timings)

    def speedup_fused_over_looped(self) -> Optional[float]:
        """Same backend, same trials: plain wall-time ratio."""
        if not (self._has("numpy_fused") and self._has("numpy_looped")):
            return None
        return self.timing("numpy_looped").seconds / self.timing("numpy_fused").seconds

    def speedup_fused_numpy_over_scalar(self) -> Optional[float]:
        """Fused NumPy vs the pre-grid scalar path (looped pure-Python).

        A throughput ratio — the scalar run uses fewer trials by design, and
        its per-trial cost is constant in the trial count.
        """
        if not (self._has("numpy_fused") and self._has("python_looped")):
            return None
        return (
            self.timing("numpy_fused").point_trials_per_second
            / self.timing("python_looped").point_trials_per_second
        )

    def as_dict(self) -> Dict:
        """JSON-serializable snapshot of the report."""
        document: Dict = {
            "version": GRID_SNAPSHOT_VERSION,
            "benchmark": "grid_campaign_engine",
            "workload": {
                "trials": self.trials,
                "scalar_trials": self.scalar_trials,
                "replicas": self.replicas,
                "vulnerabilities": self.vulnerabilities,
                "grid_points": self.grid_points,
                "tolerances_per_point": len(GRID_FAMILIES),
                "ecosystem": self.ecosystem,
                "budgets": list(self.budgets),
                "probabilities": list(self.probabilities),
                "seed": self.seed,
                "repeats": self.repeats,
            },
            "identical_fused_vs_looped": self.identical_fused_vs_looped,
            "results": {
                timing.mode: {
                    "backend": timing.backend,
                    "trials": timing.trials,
                    "seconds": timing.seconds,
                    "point_trials_per_second": timing.point_trials_per_second,
                }
                for timing in self.timings
            },
        }
        fused_over_looped = self.speedup_fused_over_looped()
        if fused_over_looped is not None:
            document["speedup_fused_over_looped_numpy"] = fused_over_looped
        fused_over_scalar = self.speedup_fused_numpy_over_scalar()
        if fused_over_scalar is not None:
            document["speedup_numpy_fused_over_python_scalar"] = fused_over_scalar
        return document


def _best_of(repeats: int, run) -> Tuple[float, object]:
    """(best wall seconds, last result) over ``repeats`` timed runs."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = run()
        best = min(best, time.perf_counter() - start)
    return best, result


def benchmark_grid(
    *,
    trials: int = 10_000,
    replicas: int = 150,
    ecosystem: str = "default",
    budgets: Tuple[int, ...] = (1, 2, 3, 4, 5, 6, 7, 8),
    probabilities: Tuple[float, ...] = (0.45, 0.6, 0.75),
    seed: int = 42,
    repeats: int = 2,
    scalar_trials: int = 400,
    backends: Optional[Tuple[str, ...]] = None,
) -> GridBenchmarkReport:
    """Time the fused grid against the looped and scalar paths.

    The grid is ``budgets × probabilities`` points (24 by default), every
    point judged at both family tolerances on shared draws.  Each timed mode
    gets one small untimed warmup, then ``repeats`` runs of which the
    fastest counts.  Fused and looped results are asserted exactly equal.
    """
    if trials <= 0 or replicas <= 0 or scalar_trials <= 0:
        raise AnalysisError("trials, replicas and scalar_trials must be positive")
    if repeats <= 0:
        raise AnalysisError("repeats must be positive")
    if not budgets or not probabilities:
        raise AnalysisError("at least one budget and one probability are required")
    selected = tuple(backends) if backends is not None else available_backends()
    if not selected:
        raise AnalysisError("no backends selected for benchmarking")

    scenario = ecosystem_scenario(
        ecosystem=ecosystem,
        population_size=replicas,
        seed=seed,
        exploit_probability=probabilities[0],
    )
    tolerances = family_tolerances(GRID_FAMILIES)
    requests = tuple(
        GridPointRequest(
            tolerances=tolerances,
            worst_case=budget,
            success_probability=probability,
            seed_offset=index,
        )
        for index, (budget, probability) in enumerate(
            (budget, probability)
            for budget in budgets
            for probability in probabilities
        )
    )
    point_count = len(requests)
    timings = []
    identical = True

    for name in selected:
        engine = GridCampaignEngine(
            scenario.population, scenario.catalog, backend=name
        )
        mode_trials = trials if name != "python" else min(trials, scalar_trials)

        def run_fused(run_trials: int = mode_trials) -> Tuple[GridPointEstimate, ...]:
            return engine.estimate_grid(requests, trials=run_trials, seed=seed)

        run_fused(min(mode_trials, 200))  # warmup (array conversion, caches)
        seconds, estimates = _best_of(repeats, run_fused)
        timings.append(
            GridTiming(
                mode=f"{name}_fused",
                backend=name,
                trials=mode_trials,
                seconds=seconds,
                point_trials_per_second=mode_trials * point_count / seconds,
            )
        )

        # The looped path is the pre-grid sweep pattern: one catalog per
        # probability, one estimate_worst_case call per (point, family).
        loop_engines = {
            probability: BatchCampaignEngine(
                looped.population, looped.catalog, backend=name
            )
            for probability, looped in (
                (
                    probability,
                    ecosystem_scenario(
                        ecosystem=ecosystem,
                        population_size=replicas,
                        seed=seed,
                        exploit_probability=probability,
                    ),
                )
                for probability in probabilities
            )
        }

        def run_looped(run_trials: int = mode_trials):
            results = []
            for index, request in enumerate(requests):
                looped_engine = loop_engines[request.success_probability]
                results.append(
                    tuple(
                        looped_engine.estimate_worst_case(
                            max_vulnerabilities=request.worst_case,
                            trials=run_trials,
                            seed=seed + index,
                            family=family,
                        )
                        for family in GRID_FAMILIES
                    )
                )
            return results

        run_looped(min(mode_trials, 200))  # warmup
        looped_seconds, looped_results = _best_of(repeats, run_looped)
        timings.append(
            GridTiming(
                mode=f"{name}_looped",
                backend=name,
                trials=mode_trials,
                seconds=looped_seconds,
                point_trials_per_second=mode_trials * point_count / looped_seconds,
            )
        )
        for estimate, looped_pair in zip(estimates, looped_results):
            for position in range(len(GRID_FAMILIES)):
                if estimate.estimate_at(position) != looped_pair[position]:
                    identical = False
    if not identical:
        raise AnalysisError(
            "the fused grid broke bit-identity with the looped campaign path"
        )

    return GridBenchmarkReport(
        trials=trials,
        scalar_trials=min(trials, scalar_trials),
        replicas=replicas,
        vulnerabilities=len(scenario.catalog),
        grid_points=point_count,
        ecosystem=ecosystem,
        budgets=tuple(budgets),
        probabilities=tuple(probabilities),
        seed=seed,
        repeats=repeats,
        identical_fused_vs_looped=identical,
        timings=tuple(timings),
    )


def write_grid_snapshot(report: GridBenchmarkReport, path: str) -> None:
    """Write a grid benchmark report to ``path`` as indented JSON."""
    try:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(report.as_dict(), handle, indent=2, sort_keys=False)
            handle.write("\n")
    except OSError as error:
        raise AnalysisError(
            f"cannot write benchmark snapshot to {path!r}: {error}"
        ) from error
