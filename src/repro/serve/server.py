"""The asyncio TCP server hosting the result service.

:class:`ResultServer` owns the listening socket, the bounded
:class:`~concurrent.futures.ProcessPoolExecutor` misses are computed on,
and the periodic **fingerprint refresh**: every ``refresh_interval``
seconds the source tree is re-hashed and, when it changed, the memoized
cache fingerprint is refreshed *and the process pool is recycled* — forked
workers hold the old modules in memory, so without the recycle a long-lived
server would keep serving results computed from code that no longer exists.

Connections speak HTTP/1.1 with keep-alive; a malformed request is answered
with its JSON error and the connection is closed.
"""

from __future__ import annotations

import asyncio
import os
import sys
from typing import Optional

from repro.core.exceptions import ServeError
from repro.experiments.orchestrator import ResultCache, invalidate_code_fingerprint
from repro.experiments.orchestrator.cache import (
    code_fingerprint,
    compute_code_fingerprint,
    set_code_fingerprint,
)
from repro.experiments.orchestrator.resilient import ResilientExecutor
from repro.serve.app import ResultApp, error_response
from repro.serve.breaker import (
    DEFAULT_FAILURE_THRESHOLD,
    DEFAULT_RESET_TIMEOUT,
    CircuitBreaker,
)
from repro.serve.http import LAST_CHUNK, StreamingHttpResponse, encode_chunk, read_request
from repro.serve.jobs import DEFAULT_JOB_HISTORY, JobStore
from repro.serve.metrics import ServiceMetrics
from repro.serve.service import ResultService

#: Default keep-alive idle timeout, in seconds.
DEFAULT_KEEP_ALIVE_TIMEOUT = 75.0

#: Default fingerprint-refresh interval, in seconds (0 disables).
DEFAULT_REFRESH_INTERVAL = 5.0


def default_jobs() -> int:
    """Default process-pool size: bounded even on very wide machines."""
    return min(4, os.cpu_count() or 1)


class ResultServer:
    """One listening result service; create, ``await start()``, ``stop()``."""

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        jobs: Optional[int] = None,
        cache_dir: Optional[str] = None,
        backend: Optional[str] = None,
        refresh_interval: float = DEFAULT_REFRESH_INTERVAL,
        keep_alive_timeout: float = DEFAULT_KEEP_ALIVE_TIMEOUT,
        metrics: Optional[ServiceMetrics] = None,
        build_deadline: Optional[float] = None,
        build_retries: int = 0,
        breaker_threshold: int = DEFAULT_FAILURE_THRESHOLD,
        breaker_reset: float = DEFAULT_RESET_TIMEOUT,
        job_history: int = DEFAULT_JOB_HISTORY,
    ) -> None:
        """Args:
        host: interface to bind.
        port: TCP port; ``0`` picks an ephemeral one (see :attr:`port`).
        jobs: process-pool size for miss computations.
        cache_dir: result-cache directory (``None``: the orchestrator
            default, ``$REPRO_CACHE_DIR`` or ``.repro-cache``).
        backend: default compute backend for requests without
            ``?backend=``; ``None`` resolves the ambient default.
        refresh_interval: seconds between source-tree re-hashes; ``0``
            disables the refresh loop.
        keep_alive_timeout: idle seconds before a keep-alive connection is
            dropped.
        metrics: shared counters; a private instance by default.
        build_deadline: per-request build deadline (seconds) answered
            ``504`` when exceeded; also the executor's per-attempt deadline
            so hung workers are terminated.  ``None`` waits forever.
        build_retries: re-dispatches per build after a worker crash or
            injected fault (0: fail fast — a request's failure is reported
            immediately and the breaker counts it).
        breaker_threshold: consecutive build failures that open the
            circuit breaker (serve ``503`` + ``Retry-After``).
        breaker_reset: seconds an open breaker waits before probing.
        job_history: finished ``POST /jobs`` submissions retained for
            status polling.
        """
        self.host = host
        self.requested_port = port
        self.jobs = jobs if jobs is not None else default_jobs()
        self.cache_dir = cache_dir
        self.backend = backend
        self.refresh_interval = refresh_interval
        self.keep_alive_timeout = keep_alive_timeout
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        self.build_deadline = build_deadline
        self.build_retries = build_retries
        self.breaker = CircuitBreaker(
            failure_threshold=breaker_threshold, reset_timeout=breaker_reset
        )
        self.job_store = JobStore(history_limit=job_history)
        self.service: Optional[ResultService] = None
        self.app: Optional[ResultApp] = None
        self._executor: Optional[ResilientExecutor] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._refresh_task: Optional["asyncio.Task[None]"] = None

    @property
    def port(self) -> int:
        """The bound TCP port (resolves ``port=0`` to the actual one)."""
        if self._server is None or not self._server.sockets:
            raise ServeError(500, "server is not running")
        return self._server.sockets[0].getsockname()[1]

    @property
    def url(self) -> str:
        """Base URL of the running server."""
        return f"http://{self.host}:{self.port}"

    async def start(self) -> "ResultServer":
        """Bind the socket, create the pool, start the refresh loop."""
        # Serve keys for the source as it is *now*, not as it was when this
        # process first imported the cache module.
        invalidate_code_fingerprint()
        self._executor = ResilientExecutor(
            max_workers=self.jobs,
            deadline=self.build_deadline,
            retries=self.build_retries,
        )
        self.metrics.attach_section("resilience", self._executor.snapshot)
        self.metrics.attach_section("breaker", self.breaker.snapshot)
        self.service = ResultService(
            cache=ResultCache(self.cache_dir),
            executor=self._executor,
            metrics=self.metrics,
            backend=self.backend,
            build_deadline=self.build_deadline,
            breaker=self.breaker,
        )
        self.metrics.attach_section("jobs", self.job_store.counts)
        self.app = ResultApp(
            self.service,
            self.metrics,
            jobs=self.job_store,
            # The admin plane's fingerprint refresh goes through the same
            # path as the periodic loop, so the pool recycle comes with it.
            refresh=self.refresh_now,
        )
        try:
            self._server = await asyncio.start_server(
                self._handle_connection, host=self.host, port=self.requested_port
            )
        except OSError:
            self._executor.shutdown(wait=False)
            self._executor = None
            raise
        if self.refresh_interval > 0:
            self._refresh_task = asyncio.get_running_loop().create_task(
                self._refresh_loop()
            )
        return self

    async def serve_forever(self) -> None:
        """Run until cancelled (the CLI's foreground mode)."""
        if self._server is None:
            raise ServeError(500, "server is not running")
        await self._server.serve_forever()

    async def stop(self) -> None:
        """Stop listening, cancel the refresh loop, release the pool."""
        if self._refresh_task is not None:
            self._refresh_task.cancel()
            try:
                await self._refresh_task
            except asyncio.CancelledError:
                pass
            self._refresh_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self.app is not None:
            # Cancel in-flight job runs before the pool goes away; their
            # jobs are marked failed so pollers see a terminal state.
            await self.app.close()
        if self._executor is not None:
            # wait=False: in-flight builds finish in the background without
            # blocking the event loop; nothing new can be submitted.
            self._executor.shutdown(wait=False)
            self._executor = None

    async def refresh_now(self) -> bool:
        """Force one fingerprint refresh; ``True`` when the source changed.

        The tree is hashed in a worker thread, but the memo update and the
        executor swap happen together, synchronously, on the event loop —
        so any request code reading (fingerprint, executor) without an
        ``await`` in between sees a consistent pair.
        """
        current = await asyncio.to_thread(code_fingerprint)
        fresh = await asyncio.to_thread(compute_code_fingerprint)
        if fresh == current:
            return False
        set_code_fingerprint(fresh)
        self.metrics.fingerprint_refreshes += 1
        self._recycle_executor()
        return True

    def _recycle_executor(self) -> None:
        """Recycle the resilient executor's pool so new builds run the
        edited source.

        The executor object itself is stable (the service and the metrics
        section keep their references); only its inner pool is swapped.
        The old pool's in-flight builds complete (their results are keyed
        under the old fingerprint, consistently), after which it drains.
        """
        if self._executor is not None:
            self._executor.recycle()

    async def _refresh_loop(self) -> None:
        while True:
            await asyncio.sleep(self.refresh_interval)
            try:
                await self.refresh_now()
            except asyncio.CancelledError:
                raise
            except Exception as error:
                # A transient failure (pool respawn under fd pressure, an
                # unreadable tree mid-edit) must not kill the loop: the whole
                # point of the refresh is that it keeps running for the
                # lifetime of the server.
                print(f"warning: fingerprint refresh failed: {error}", file=sys.stderr)

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await asyncio.wait_for(
                        read_request(reader), timeout=self.keep_alive_timeout
                    )
                except asyncio.TimeoutError:
                    break
                except ServeError as error:
                    response = error_response(error.status, str(error))
                    self.metrics.count_response(response.status)
                    writer.write(response.encode(keep_alive=False))
                    await writer.drain()
                    break
                if request is None:
                    break
                assert self.app is not None  # set in start()
                response = await self.app.handle(request)
                keep_alive = request.keep_alive
                if isinstance(response, StreamingHttpResponse):
                    writer.write(response.encode_head(keep_alive=keep_alive))
                    async for chunk in response.chunks:
                        writer.write(encode_chunk(chunk))
                        await writer.drain()
                    writer.write(LAST_CHUNK)
                else:
                    writer.write(response.encode(keep_alive=keep_alive))
                await writer.drain()
                if not keep_alive:
                    break
        except asyncio.CancelledError:
            # The event loop is shutting down mid-connection; terminating the
            # handler cleanly is the cancellation, so don't re-raise into the
            # stream protocol's noisy exception callback.
            pass
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (
                asyncio.CancelledError,
                ConnectionResetError,
                BrokenPipeError,
                OSError,
            ):  # pragma: no cover
                pass


async def start_server(**kwargs: object) -> ResultServer:
    """Create and start a :class:`ResultServer` in one call."""
    server = ResultServer(**kwargs)  # type: ignore[arg-type]
    return await server.start()
