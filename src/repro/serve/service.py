"""The result service: registry lookup, param coercion, cache, single-flight.

:class:`ResultService` is the transport-free core of the HTTP server — it
maps an (experiment id, query string) pair to a content-addressed cache key
and an :class:`~repro.experiments.orchestrator.ExperimentResult`, computing
on miss via the orchestrator's :func:`engine._pool_execute` seam on a
bounded :class:`~concurrent.futures.ProcessPoolExecutor`:

- the cache key doubles as the response's strong ``ETag``, and is computed
  without touching disk, so conditional requests can be answered ``304``
  before any I/O;
- concurrent identical requests are **single-flighted**: the first request
  registers an :class:`asyncio.Task` under the key synchronously (before
  any ``await``), every later request joins it, and exactly one computation
  runs no matter how many clients ask;
- disk reads/writes go through ``asyncio.to_thread`` and computations
  through the process pool, so the event loop never blocks on an
  experiment;
- builds degrade gracefully instead of hanging or cascading: an optional
  per-request ``build_deadline`` answers ``504`` when a build exceeds it,
  and a :class:`~repro.serve.breaker.CircuitBreaker` rejects new builds
  with ``503`` + ``Retry-After`` after repeated failures — cache hits keep
  being served throughout, and one successful probe build closes the
  breaker again without a restart.
"""

from __future__ import annotations

import asyncio
import dataclasses
from concurrent.futures import Executor
from dataclasses import dataclass
from typing import (
    Any,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
    get_args,
    get_origin,
    get_type_hints,
)

from repro.backend import get_backend, registered_backends
from repro.core.exceptions import BackendError, ServeError
from repro.experiments.orchestrator import (
    ExperimentResult,
    ResultCache,
    code_fingerprint,
)
from repro.experiments.orchestrator import registry
from repro.experiments.orchestrator.engine import _pool_execute
from repro.experiments.orchestrator.spec import ExperimentSpec
from repro.serve.breaker import CircuitBreaker
from repro.serve.metrics import ServiceMetrics

#: Query parameters with transport meaning, never forwarded as experiment params.
RESERVED_QUERY_PARAMS = frozenset({"backend"})


@dataclass(frozen=True)
class PreparedRequest:
    """A validated request: spec, canonical params, backend and cache key.

    ``fingerprint`` is the code fingerprint ``key`` embeds, captured once at
    prepare time — the store after a build records this same value, so an
    entry written by a build that straddled a source-edit refresh stays
    consistent (old key, old fingerprint, prunable) instead of pairing an
    old key with the new fingerprint, which prune() could never reclaim.
    """

    spec: ExperimentSpec
    params_doc: Mapping[str, Any]
    backend: str
    key: str
    fingerprint: str


def _type_label(annotation: Any) -> Tuple[str, bool]:
    """``(label, nullable)`` for a params-dataclass field annotation."""
    if get_origin(annotation) is Union:
        non_none = [arg for arg in get_args(annotation) if arg is not type(None)]
        if len(non_none) == 1:
            label, _ = _type_label(non_none[0])
            return label, True
    if annotation in (int, float, bool, str):
        return annotation.__name__, False
    return getattr(annotation, "__name__", str(annotation)), False


def _coerce_value(text: str, annotation: Any, name: str) -> Any:
    """Parse one query-string value into the field's annotated type."""
    if get_origin(annotation) is Union:
        non_none = [arg for arg in get_args(annotation) if arg is not type(None)]
        if len(non_none) == 1:
            if text.lower() in ("none", "null"):
                return None
            return _coerce_value(text, non_none[0], name)
    if annotation is bool:
        lowered = text.lower()
        if lowered in ("1", "true", "yes", "on"):
            return True
        if lowered in ("0", "false", "no", "off"):
            return False
        raise ServeError(400, f"parameter {name!r} must be a boolean, got {text!r}")
    if annotation is int:
        try:
            return int(text)
        except ValueError:
            raise ServeError(
                400, f"parameter {name!r} must be an integer, got {text!r}"
            ) from None
    if annotation is float:
        try:
            value = float(text)
        except ValueError:
            raise ServeError(
                400, f"parameter {name!r} must be a number, got {text!r}"
            ) from None
        if value != value or value in (float("inf"), float("-inf")):
            raise ServeError(400, f"parameter {name!r} must be finite, got {text!r}")
        return value
    if annotation is str:
        return text
    raise ServeError(
        400, f"parameter {name!r} has unsupported type {annotation!r}"
    )  # pragma: no cover - params dataclasses only use JSON scalars


def _coerce_json_value(value: Any, annotation: Any, name: str) -> Any:
    """Validate one JSON body value against the field's annotated type.

    The write path receives real JSON types, so unlike the query-string
    coercion this never parses strings — it type-checks (allowing the one
    lossless widening JSON has, int → float).
    """
    if get_origin(annotation) is Union:
        non_none = [arg for arg in get_args(annotation) if arg is not type(None)]
        if len(non_none) == 1:
            if value is None:
                return None
            return _coerce_json_value(value, non_none[0], name)
    if annotation is bool:
        if isinstance(value, bool):
            return value
        raise ServeError(400, f"parameter {name!r} must be a boolean, got {value!r}")
    if annotation is int:
        if isinstance(value, int) and not isinstance(value, bool):
            return value
        raise ServeError(400, f"parameter {name!r} must be an integer, got {value!r}")
    if annotation is float:
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            number = float(value)
            if number != number or number in (float("inf"), float("-inf")):
                raise ServeError(400, f"parameter {name!r} must be finite, got {value!r}")
            return number
        raise ServeError(400, f"parameter {name!r} must be a number, got {value!r}")
    if annotation is str:
        if isinstance(value, str):
            return value
        raise ServeError(400, f"parameter {name!r} must be a string, got {value!r}")
    raise ServeError(
        400, f"parameter {name!r} has unsupported type {annotation!r}"
    )  # pragma: no cover - params dataclasses only use JSON scalars


class ResultService:
    """Serves experiment results from the cache, computing on miss."""

    def __init__(
        self,
        *,
        cache: ResultCache,
        executor: Executor,
        metrics: Optional[ServiceMetrics] = None,
        backend: Optional[str] = None,
        build_deadline: Optional[float] = None,
        breaker: Optional[CircuitBreaker] = None,
    ) -> None:
        """Args:
        cache: the content-addressed result cache to serve from.
        executor: bounded pool misses are computed on (swapped out by the
            server when a source edit is detected — workers forked before
            the edit still run the old code).
        metrics: shared counters; a private instance by default.
        backend: default compute-backend name for requests without an
            explicit ``?backend=``; ``None`` resolves the ambient default.
        build_deadline: end-to-end seconds a request's build may take before
            the request is answered ``504`` (the build itself is abandoned
            to the executor's own policy); ``None`` waits forever.
        breaker: circuit breaker gating new builds; a default-configured
            instance when ``None``.
        """
        self.cache = cache
        self.executor = executor
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        self.build_deadline = build_deadline
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        self.default_backend = get_backend(backend).name
        self._inflight: Dict[str, "asyncio.Task[Tuple[ExperimentResult, str]]"] = {}
        # The registry is immutable for the process lifetime; build the
        # listing document once instead of re-running get_type_hints/asdict
        # over every spec per GET /experiments.
        self._experiments_document = self._describe_experiments()

    # --------------------------------------------------------------- health

    def health(self) -> Dict[str, Any]:
        """The ``GET /healthz`` document: ``ok``, or ``degraded`` while the
        breaker rejects builds (cached results still flow either way)."""
        breaker_state = self.breaker.state
        status = "ok" if breaker_state == "closed" else "degraded"
        return {"status": status, "breaker": breaker_state}

    # ------------------------------------------------------------- registry

    def describe_experiments(self) -> Dict[str, Any]:
        """The ``GET /experiments`` document: ids, tags and params schema."""
        return self._experiments_document

    @staticmethod
    def _describe_experiments() -> Dict[str, Any]:
        experiments: List[Dict[str, Any]] = []
        for spec in registry.all_specs():
            params_schema: List[Dict[str, Any]] = []
            if spec.params_type is not None:
                hints = get_type_hints(spec.params_type)
                defaults = dataclasses.asdict(spec.default_params())
                for spec_field in dataclasses.fields(spec.params_type):
                    label, nullable = _type_label(hints[spec_field.name])
                    params_schema.append(
                        {
                            "name": spec_field.name,
                            "type": label,
                            "nullable": nullable,
                            "default": defaults[spec_field.name],
                        }
                    )
            experiments.append(
                {
                    "id": spec.experiment_id,
                    "title": spec.title,
                    "tags": list(spec.tags),
                    "seed": spec.seed,
                    "backend_sensitive": spec.backend_sensitive,
                    "params": params_schema,
                    "path": f"/experiments/{spec.experiment_id}",
                }
            )
        return {"experiments": experiments, "tags": registry.known_tags()}

    # ------------------------------------------------------------ validation

    def prepare(
        self, experiment_id: str, query: Mapping[str, Sequence[str]]
    ) -> PreparedRequest:
        """Validate a request and compute its cache key, touching no disk."""
        spec = self._lookup_spec(experiment_id)
        backend = self._resolve_backend(query)
        params_doc = self._parse_params(spec, query)
        return self._prepared(spec, params_doc, backend)

    def prepare_document(
        self,
        experiment_id: str,
        params: Optional[Mapping[str, Any]] = None,
        backend: Optional[str] = None,
    ) -> PreparedRequest:
        """Validate a JSON-document request (job submissions, bulk results).

        The write-path twin of :meth:`prepare`: ``params`` carries real JSON
        values instead of query strings, ``backend`` an explicit name or
        ``None`` for the service default.  Touches no disk.
        """
        spec = self._lookup_spec(experiment_id)
        resolved = self._resolve_backend_name(backend)
        params_doc = self._params_from_document(spec, params)
        return self._prepared(spec, params_doc, resolved)

    def _prepared(
        self, spec: ExperimentSpec, params_doc: Mapping[str, Any], backend: str
    ) -> PreparedRequest:
        fingerprint = code_fingerprint()
        key = self.cache.key_for(spec, params_doc, backend, fingerprint=fingerprint)
        return PreparedRequest(
            spec=spec,
            params_doc=params_doc,
            backend=backend,
            key=key,
            fingerprint=fingerprint,
        )

    def _lookup_spec(self, experiment_id: str) -> ExperimentSpec:
        try:
            return registry.get_spec(experiment_id)
        except Exception:
            raise ServeError(
                404,
                f"unknown experiment {experiment_id!r} "
                f"(known: {', '.join(registry.experiment_ids())})",
            ) from None

    def _resolve_backend(self, query: Mapping[str, Sequence[str]]) -> str:
        values = list(query.get("backend", []))
        if not values:
            return self.default_backend
        if len(values) > 1:
            raise ServeError(400, "query parameter 'backend' was given more than once")
        return self._resolve_backend_name(values[0])

    def _resolve_backend_name(self, name: Optional[str]) -> str:
        if name is None:
            return self.default_backend
        if not isinstance(name, str):
            raise ServeError(400, f"backend must be a string, got {name!r}")
        try:
            return get_backend(name).name
        except BackendError as error:
            raise ServeError(
                400,
                f"unknown or unavailable backend {name!r} "
                f"(registered: {', '.join(registered_backends())}): {error}",
            ) from None

    def _parse_params(
        self, spec: ExperimentSpec, query: Mapping[str, Sequence[str]]
    ) -> Dict[str, Any]:
        extra = [name for name in query if name not in RESERVED_QUERY_PARAMS]
        if spec.params_type is None:
            if extra:
                raise ServeError(
                    400,
                    f"experiment {spec.experiment_id!r} takes no parameters, "
                    f"got: {', '.join(sorted(extra))}",
                )
            return {}
        hints = get_type_hints(spec.params_type)
        known = {spec_field.name for spec_field in dataclasses.fields(spec.params_type)}
        unknown = sorted(set(extra) - known)
        if unknown:
            raise ServeError(
                400,
                f"unknown parameter(s) for {spec.experiment_id!r}: "
                f"{', '.join(unknown)} (known: {', '.join(sorted(known))})",
            )
        kwargs: Dict[str, Any] = {}
        for name in extra:
            values = query[name]
            if len(values) > 1:
                raise ServeError(400, f"parameter {name!r} was given more than once")
            kwargs[name] = _coerce_value(values[0], hints[name], name)
        return spec.params_dict(spec.params_type(**kwargs))

    def _params_from_document(
        self, spec: ExperimentSpec, params: Optional[Mapping[str, Any]]
    ) -> Dict[str, Any]:
        if params is None:
            params = {}
        if not isinstance(params, Mapping):
            raise ServeError(
                400, f"params for {spec.experiment_id!r} must be an object"
            )
        if spec.params_type is None:
            if params:
                raise ServeError(
                    400,
                    f"experiment {spec.experiment_id!r} takes no parameters, "
                    f"got: {', '.join(sorted(params))}",
                )
            return {}
        hints = get_type_hints(spec.params_type)
        known = {spec_field.name for spec_field in dataclasses.fields(spec.params_type)}
        unknown = sorted(set(params) - known)
        if unknown:
            raise ServeError(
                400,
                f"unknown parameter(s) for {spec.experiment_id!r}: "
                f"{', '.join(unknown)} (known: {', '.join(sorted(known))})",
            )
        kwargs = {
            name: _coerce_json_value(value, hints[name], name)
            for name, value in params.items()
        }
        return spec.params_dict(spec.params_type(**kwargs))

    # ------------------------------------------------------------- fetching

    async def fetch(self, prepared: PreparedRequest) -> Tuple[ExperimentResult, str]:
        """The result for a prepared request, plus ``"hit"`` / ``"miss"``.

        Single-flight: the per-key task is registered synchronously, so any
        number of concurrent identical requests share one cache load and at
        most one computation.
        """
        task = self._inflight.get(prepared.key)
        if task is None:
            task = asyncio.get_running_loop().create_task(self._guarded_load(prepared))
            self._inflight[prepared.key] = task
            task.add_done_callback(lambda _t: self._inflight.pop(prepared.key, None))
        else:
            self.metrics.single_flight_joined += 1
        # shield(): a disconnecting client must not cancel the shared build
        # out from under the other waiters (or the cache write).
        result, state = await asyncio.shield(task)
        if state == "hit":
            self.metrics.cache_hits += 1
        else:
            self.metrics.cache_misses += 1
        return result, state

    async def _guarded_load(
        self, prepared: PreparedRequest
    ) -> Tuple[ExperimentResult, str]:
        """``_load_or_build`` that can never strand or poison the gate.

        On failure the in-flight entry is removed *synchronously, before the
        exception propagates* — the done-callback alone leaves a window in
        which a request arriving between the failure and the callback joins
        the already-failed task and receives a stale error even though a
        fresh build would have succeeded.  Every current waiter still gets
        the failure (they awaited this task); only future requests start
        clean.
        """
        try:
            return await self._load_or_build(prepared)
        except BaseException:
            self._inflight.pop(prepared.key, None)
            raise

    async def _load_or_build(
        self, prepared: PreparedRequest
    ) -> Tuple[ExperimentResult, str]:
        cached = await asyncio.to_thread(self.cache.load, prepared.key)
        if cached is not None and cached.experiment_id == prepared.spec.experiment_id:
            return cached, "hit"
        return await self._build(prepared), "miss"

    async def _build(self, prepared: PreparedRequest) -> ExperimentResult:
        loop = asyncio.get_running_loop()
        if not self.breaker.allow_build():
            # Repeated build failures opened the breaker: reject fast with a
            # recovery hint instead of feeding another doomed build to the
            # pool.  Cache hits never reach this point — only misses degrade.
            self.metrics.builds_rejected += 1
            raise ServeError(
                503,
                "experiment builds are temporarily disabled after repeated "
                f"failures (breaker {self.breaker.state}); cached results "
                "are still served",
                headers=(("Retry-After", self.breaker.retry_after_header()),),
            )
        self.metrics.builds += 1
        self.metrics.in_flight_builds += 1
        # One synchronous block, no await: the server swaps the memoized
        # fingerprint and the executor together on this thread, so this pair
        # is consistent — `executor` runs the code `fingerprint` hashes.
        executor = self.executor
        fingerprint = code_fingerprint()
        try:
            future = loop.run_in_executor(
                executor,
                _pool_execute,
                prepared.spec.experiment_id,
                dict(prepared.params_doc),
                prepared.backend,
            )
            if self.build_deadline is not None:
                try:
                    document = await asyncio.wait_for(future, self.build_deadline)
                except asyncio.TimeoutError:
                    self.metrics.build_timeouts += 1
                    raise ServeError(
                        504,
                        f"build of {prepared.spec.experiment_id!r} exceeded "
                        f"the {self.build_deadline}s deadline",
                    ) from None
            else:
                document = await future
        except Exception:
            self.metrics.build_failures += 1
            self.breaker.record_failure()
            raise
        finally:
            self.metrics.in_flight_builds -= 1
        self.breaker.record_success()
        result = ExperimentResult.from_dict(document)
        # The build ran in a pool worker; its kernel counters and peak RSS
        # ride back on the volatile section of the result document.
        self.metrics.record_kernels(dict(result.kernel_counters))
        self.metrics.record_build_rss(result.peak_rss_kb)
        store_key = prepared.key
        if fingerprint != prepared.fingerprint:
            # A source-edit refresh landed between prepare() and the build:
            # the result came from the *new* code, so it must be stored
            # under the new fingerprint's key — never as prepared.key, which
            # would serve new-code numbers as cache hits for the old (or a
            # later reverted) source.
            store_key = self.cache.key_for(
                prepared.spec,
                prepared.params_doc,
                prepared.backend,
                fingerprint=fingerprint,
            )
        await asyncio.to_thread(
            self.cache.store, store_key, result, fingerprint=fingerprint
        )
        return result
