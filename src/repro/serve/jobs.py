"""In-memory job store backing the write-path API (``POST /jobs``).

A **job** is one accepted submission: a list of validated tasks (each a
:class:`~repro.serve.service.PreparedRequest`) that the app runs through the
result service's single-flight gate on the shared resilient executor.  The
store itself is transport-free bookkeeping:

- jobs walk ``queued → running → done | failed`` and record wall-clock
  timestamps per transition;
- history is **bounded**: once the store holds more than ``history_limit``
  jobs, the oldest *finished* jobs are evicted (an active job is never
  evicted, so a burst of submissions can briefly exceed the limit rather
  than lose live state);
- :meth:`JobStore.counts` feeds the ``jobs`` section of ``GET /metrics``.

Everything here is only touched from the event-loop thread (the same
contract as :class:`~repro.serve.metrics.ServiceMetrics`), so plain fields
are race-free without locks.
"""

from __future__ import annotations

import itertools
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple
from urllib.parse import urlencode

from repro.serve.service import PreparedRequest

#: Finished jobs kept for polling after completion.
DEFAULT_JOB_HISTORY = 256

QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"

#: Every state a job (or task) can report, in lifecycle order.
JOB_STATES = (QUEUED, RUNNING, DONE, FAILED)


def _experiment_path(prepared: PreparedRequest) -> str:
    """The GET route serving this task's result once it is cached."""
    query: List[Tuple[str, Any]] = [
        (name, value)
        for name, value in sorted(prepared.params_doc.items())
        if value is not None
    ]
    if prepared.spec.backend_sensitive:
        query.append(("backend", prepared.backend))
    suffix = f"?{urlencode(query)}" if query else ""
    return f"/experiments/{prepared.spec.experiment_id}{suffix}"


@dataclass
class JobTask:
    """One experiment run inside a job."""

    prepared: PreparedRequest
    status: str = QUEUED
    state: Optional[str] = None  # "hit" / "miss" once finished
    error: Optional[str] = None

    def snapshot(self) -> Dict[str, Any]:
        return {
            "experiment_id": self.prepared.spec.experiment_id,
            "params": dict(self.prepared.params_doc),
            "backend": self.prepared.backend,
            "status": self.status,
            "cache": self.state,
            "key": self.prepared.key,
            "path": _experiment_path(self.prepared),
            "error": self.error,
        }


@dataclass
class Job:
    """One accepted submission and its lifecycle record."""

    job_id: str
    tasks: List[JobTask]
    created_at: float
    status: str = QUEUED
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    error: Optional[str] = None

    @property
    def finished(self) -> bool:
        return self.status in (DONE, FAILED)

    def snapshot(self, *, include_tasks: bool = True) -> Dict[str, Any]:
        """The JSON document ``GET /jobs/{id}`` serves."""
        document: Dict[str, Any] = {
            "id": self.job_id,
            "status": self.status,
            "tasks_total": len(self.tasks),
            "tasks_done": sum(1 for task in self.tasks if task.status == DONE),
            "created_at": self.created_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "error": self.error,
            "path": f"/jobs/{self.job_id}",
            "result_path": f"/jobs/{self.job_id}/result",
        }
        if include_tasks:
            document["tasks"] = [task.snapshot() for task in self.tasks]
        return document


class JobStore:
    """Bounded-history registry of jobs, keyed by id in submission order."""

    def __init__(
        self,
        *,
        history_limit: int = DEFAULT_JOB_HISTORY,
        clock: Callable[[], float] = time.time,
    ) -> None:
        if history_limit < 1:
            raise ValueError(f"history limit must be >= 1, got {history_limit}")
        self.history_limit = history_limit
        self._clock = clock
        self._jobs: "OrderedDict[str, Job]" = OrderedDict()
        self._sequence = itertools.count(1)
        self.evicted = 0

    def create(self, tasks: List[JobTask]) -> Job:
        """Register a new queued job and enforce the history bound."""
        job = Job(
            job_id=f"j{next(self._sequence):06d}",
            tasks=tasks,
            created_at=self._clock(),
        )
        self._jobs[job.job_id] = job
        self._evict()
        return job

    def get(self, job_id: str) -> Optional[Job]:
        return self._jobs.get(job_id)

    def jobs(self) -> List[Job]:
        """Every retained job, oldest first."""
        return list(self._jobs.values())

    def mark_running(self, job: Job) -> None:
        job.status = RUNNING
        job.started_at = self._clock()

    def mark_done(self, job: Job) -> None:
        job.status = DONE
        job.finished_at = self._clock()

    def mark_failed(self, job: Job, error: str) -> None:
        job.status = FAILED
        job.error = error
        job.finished_at = self._clock()

    def _evict(self) -> None:
        """Drop the oldest finished jobs beyond the history limit.

        Active (queued/running) jobs are skipped — their asyncio task still
        writes into them, and a client holding their id must be able to poll
        to completion.  If every retained job is active the store may exceed
        the limit; it shrinks back as they finish and new jobs arrive.
        """
        if len(self._jobs) <= self.history_limit:
            return
        excess = len(self._jobs) - self.history_limit
        for job_id in [
            job_id for job_id, job in self._jobs.items() if job.finished
        ][:excess]:
            del self._jobs[job_id]
            self.evicted += 1

    def counts(self) -> Dict[str, Any]:
        """The ``jobs`` section of ``GET /metrics``."""
        by_state = {state: 0 for state in JOB_STATES}
        for job in self._jobs.values():
            by_state[job.status] += 1
        return {
            "retained": len(self._jobs),
            "history_limit": self.history_limit,
            "evicted": self.evicted,
            **by_state,
        }
