"""Counters the result service exposes at ``GET /metrics``.

One instance lives on the server and is only ever mutated from the event
loop thread, so plain integer fields are race-free without locks.  The
snapshot is a flat JSON document so scrapers (and ``bench-serve``) can diff
two snapshots without walking a schema.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict

from repro.backend.timing import peak_rss_kb


@dataclass
class ServiceMetrics:
    """Request, cache and build counters for one server process.

    Attributes:
        requests_total: requests parsed successfully (any route, any status).
        responses_by_status: response count per HTTP status code.
        cache_hits: results served from the content-addressed cache (from
            disk or from the in-memory body cache).
        memory_hits: the subset of ``cache_hits`` answered from the app's
            in-memory body cache without touching disk at all.
        cache_misses: requests that required (or joined) a computation.
        not_modified: conditional requests answered ``304`` from the key alone.
        builds: experiment computations actually submitted to the pool —
            the single-flight invariant is ``builds <= cache_misses``.
        build_failures: computations that raised instead of returning.
        build_timeouts: builds abandoned at the service's per-request
            deadline (a subset of ``build_failures``).
        builds_rejected: builds refused outright by the open circuit
            breaker (answered ``503`` without touching the pool).
        single_flight_joined: requests that piggybacked on an in-flight build
            instead of starting their own.
        in_flight_requests: requests currently being handled.
        in_flight_builds: computations currently in the process pool.
        fingerprint_refreshes: source edits the refresh loop picked up.
        jobs_submitted: jobs accepted through ``POST /jobs``.
        jobs_completed: jobs whose every task finished successfully.
        jobs_failed: jobs that ended with at least one failed task.
        bulk_results_served: individual results delivered through the bulk
            ``/results`` endpoint (JSON document entries plus NDJSON lines).
        cache_admin_ops: cache-administration requests handled
            (``/cache/stats|prune|invalidate|warm``).
        kernel_counters: per-kernel ``{calls, seconds, trials}`` accumulated
            from the volatile section of every result this server built
            (builds run in pool workers; the counters ride back on the
            result document).  Cache hits contribute nothing — the section
            measures compute actually spent, so fused-vs-looped kernel wins
            are visible to scrapers.
        peak_build_rss_kb: the largest worker peak resident set size (KiB)
            observed across every build this server completed — it rides
            back on the same volatile section as the kernel counters.  The
            snapshot pairs it with ``peak_rss_kb``, the serving process's own
            high-water mark, so scrapers can tell build memory pressure from
            server memory pressure at a glance.
    """

    started_at: float = field(default_factory=time.time)
    requests_total: int = 0
    responses_by_status: Dict[int, int] = field(default_factory=dict)
    cache_hits: int = 0
    memory_hits: int = 0
    cache_misses: int = 0
    not_modified: int = 0
    builds: int = 0
    build_failures: int = 0
    build_timeouts: int = 0
    builds_rejected: int = 0
    single_flight_joined: int = 0
    in_flight_requests: int = 0
    in_flight_builds: int = 0
    fingerprint_refreshes: int = 0
    jobs_submitted: int = 0
    jobs_completed: int = 0
    jobs_failed: int = 0
    bulk_results_served: int = 0
    cache_admin_ops: int = 0
    kernel_counters: Dict[str, Dict[str, float]] = field(default_factory=dict)
    peak_build_rss_kb: int = 0
    _sections: Dict[str, Callable[[], Dict[str, Any]]] = field(
        default_factory=dict, repr=False
    )

    def count_response(self, status: int) -> None:
        """Record one response with this status code."""
        self.responses_by_status[status] = self.responses_by_status.get(status, 0) + 1

    def record_kernels(self, counters: "Dict[str, Dict[str, float]]") -> None:
        """Accumulate one build's per-kernel counters into the totals."""
        for kernel, counter in counters.items():
            total = self.kernel_counters.setdefault(
                kernel, {"calls": 0, "seconds": 0.0, "trials": 0}
            )
            total["calls"] += int(counter.get("calls", 0))
            total["seconds"] += float(counter.get("seconds", 0.0))
            total["trials"] += int(counter.get("trials", 0))

    def record_build_rss(self, peak_kb: int) -> None:
        """Fold one build's worker peak RSS into the high-water mark."""
        self.peak_build_rss_kb = max(self.peak_build_rss_kb, int(peak_kb))

    def attach_section(
        self, name: str, provider: Callable[[], Dict[str, Any]]
    ) -> None:
        """Embed ``provider()`` under ``name`` in every future snapshot.

        How subsystems with their own state (the resilient executor, the
        circuit breaker) surface in ``GET /metrics`` without this module
        importing them.
        """
        self._sections[name] = provider

    def snapshot(self) -> Dict[str, Any]:
        """The flat JSON document ``GET /metrics`` serves."""
        document: Dict[str, Any] = {
            "uptime_seconds": max(0.0, time.time() - self.started_at),
            "requests_total": self.requests_total,
            "responses_by_status": {
                str(status): count
                for status, count in sorted(self.responses_by_status.items())
            },
            "cache_hits": self.cache_hits,
            "memory_hits": self.memory_hits,
            "cache_misses": self.cache_misses,
            "not_modified": self.not_modified,
            "builds": self.builds,
            "build_failures": self.build_failures,
            "build_timeouts": self.build_timeouts,
            "builds_rejected": self.builds_rejected,
            "single_flight_joined": self.single_flight_joined,
            "in_flight_requests": self.in_flight_requests,
            "in_flight_builds": self.in_flight_builds,
            "fingerprint_refreshes": self.fingerprint_refreshes,
            "jobs_submitted": self.jobs_submitted,
            "jobs_completed": self.jobs_completed,
            "jobs_failed": self.jobs_failed,
            "bulk_results_served": self.bulk_results_served,
            "cache_admin_ops": self.cache_admin_ops,
            "kernels": {
                kernel: dict(counter)
                for kernel, counter in sorted(self.kernel_counters.items())
            },
            "peak_build_rss_kb": self.peak_build_rss_kb,
            "peak_rss_kb": peak_rss_kb(),
        }
        for name, provider in self._sections.items():
            document[name] = provider()
        return document
