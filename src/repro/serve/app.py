"""Route dispatch: maps parsed HTTP requests to service calls.

The read plane (PR 4/6):

- ``GET /healthz`` — liveness probe;
- ``GET /metrics`` — the :class:`~repro.serve.metrics.ServiceMetrics` snapshot;
- ``GET /experiments`` — the registry listing with tags and params schema;
- ``GET /experiments/{id}?param=...&backend=...`` — one experiment's
  canonical result JSON (byte-identical to the golden snapshots), computed
  on miss, with the cache key as a strong ``ETag`` so ``If-None-Match``
  round-trips answer ``304`` without touching disk.

The write plane (this module's second half):

- ``POST /jobs`` — submit an experiment (or a parameter grid) for
  asynchronous computation; ``GET /jobs`` / ``GET /jobs/{id}`` poll it and
  ``GET /jobs/{id}/result`` serves the finished document;
- ``GET|POST /results`` — a bulk results document over many experiments,
  or an NDJSON stream (``format=ndjson``) for large sweeps;
- ``GET /cache/stats`` and ``POST /cache/prune|invalidate|warm`` — the
  cache-administration plane over the content-addressed
  :class:`~repro.experiments.orchestrator.ResultCache`.

Every route goes through one table mapping path → allowed methods, so an
unsupported method is a uniform 405 with a correct ``Allow`` header, and
every error — routing, validation or a failed build — is translated into a
JSON ``{"error": {...}}`` body with the right status, never a raw traceback.
"""

from __future__ import annotations

import asyncio
import dataclasses
import itertools
import json
import sys
from collections import OrderedDict
from typing import (
    Any,
    AsyncIterator,
    Awaitable,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.core.exceptions import ServeError
from repro.experiments.orchestrator import registry
from repro.experiments.orchestrator.cache import refresh_code_fingerprint
from repro.experiments.orchestrator.result import RESULT_SCHEMA_VERSION
from repro.serve.http import (
    HttpRequest,
    HttpResponse,
    StreamingHttpResponse,
    etag_for,
    if_none_match_matches,
)
from repro.serve.jobs import DONE, FAILED, Job, JobStore, JobTask
from repro.serve.metrics import ServiceMetrics
from repro.serve.service import PreparedRequest, ResultService

#: Prefix of the per-experiment result route.
EXPERIMENTS_PREFIX = "/experiments/"

#: Prefix of the per-job routes.
JOBS_PREFIX = "/jobs/"

#: Total bytes of encoded response bodies kept in memory, keyed by cache
#: key.  Keys are content-addressed (code + params + backend), so an entry
#: can never go stale — the bound caps *memory*, and it is a byte bound
#: rather than an entry count because the bulk endpoints make individual
#: bodies arbitrarily large (256 big sweep documents is an OOM, 256 small
#: ones is nothing).
DEFAULT_BODY_CACHE_BYTES = 32 * 1024 * 1024

#: Upper bound on tasks in one job and on results in one bulk request.
MAX_JOB_TASKS = 256

#: Keys a job-submission document may carry.
JOB_DOCUMENT_KEYS = frozenset({"experiment", "experiments", "params", "grid", "backend", "wait"})

#: Keys a bulk-results selection document may carry.
RESULTS_DOCUMENT_KEYS = frozenset({"experiments", "tag", "backend", "format"})

#: Keys a cache-warm document may carry.
WARM_DOCUMENT_KEYS = frozenset({"experiments", "tag", "backend"})


def json_body(document: Any) -> bytes:
    """A JSON document in the repository's canonical on-disk format.

    Indent-2, sorted keys, trailing newline — exactly how the golden
    snapshots under ``tests/golden/`` are written, so a served result is
    byte-comparable to its golden file.
    """
    return (
        json.dumps(document, indent=2, sort_keys=True, allow_nan=False) + "\n"
    ).encode("utf-8")


def ndjson_line(document: Any) -> bytes:
    """One NDJSON frame: compact sorted-key JSON plus the newline."""
    return (
        json.dumps(document, sort_keys=True, separators=(",", ":"), allow_nan=False)
        + "\n"
    ).encode("utf-8")


def error_response(
    status: int,
    message: str,
    *,
    headers: Sequence[Tuple[str, str]] = (),
) -> HttpResponse:
    """A JSON error response for ``status`` (plus e.g. ``Retry-After``)."""
    return HttpResponse(
        status=status,
        body=json_body({"error": {"status": status, "message": message}}),
        headers=tuple(headers),
    )


class ResultApp:
    """The request handler bridging HTTP requests to the result service."""

    def __init__(
        self,
        service: ResultService,
        metrics: Optional[ServiceMetrics] = None,
        *,
        body_cache_bytes: int = DEFAULT_BODY_CACHE_BYTES,
        jobs: Optional[JobStore] = None,
        refresh: Optional[Callable[[], Awaitable[bool]]] = None,
    ) -> None:
        """Args:
        service: the transport-free result service.
        metrics: shared counters; the service's instance by default.
        body_cache_bytes: total encoded-body bytes kept in the in-memory
            LRU (one oversized body is served but never cached).
        jobs: the job store backing ``POST /jobs``; a default-configured
            one when ``None``.
        refresh: awaitable forcing a fingerprint refresh (the server's
            ``refresh_now``, which also recycles the process pool);
            ``None`` falls back to refreshing the memo alone.
        """
        self.service = service
        self.metrics = metrics if metrics is not None else service.metrics
        self.body_cache_bytes = body_cache_bytes
        self.jobs = jobs if jobs is not None else JobStore()
        self._refresh = refresh
        self._body_cache: "OrderedDict[str, bytes]" = OrderedDict()
        self._body_cache_total = 0
        self._job_runs: "set[asyncio.Task[None]]" = set()
        # One table owns routing: path → {method: handler}.  A method miss
        # is a uniform 405 through ServeError with the path's real Allow
        # set — never a hand-rolled response that drifts from the error
        # shape as routes are added.
        self._routes: Dict[str, Dict[str, Callable[..., Awaitable[object]]]] = {
            "/healthz": {"GET": self._healthz},
            "/metrics": {"GET": self._metrics_snapshot},
            "/experiments": {"GET": self._experiments_index},
            "/jobs": {"GET": self._jobs_index, "POST": self._jobs_submit},
            "/results": {"GET": self._results, "POST": self._results},
            "/cache/stats": {"GET": self._cache_stats},
            "/cache/prune": {"POST": self._cache_prune},
            "/cache/invalidate": {"POST": self._cache_invalidate},
            "/cache/warm": {"POST": self._cache_warm},
        }

    # ------------------------------------------------------------ dispatch

    async def handle(
        self, request: HttpRequest
    ) -> Union[HttpResponse, StreamingHttpResponse]:
        """Dispatch one request; never raises."""
        self.metrics.requests_total += 1
        self.metrics.in_flight_requests += 1
        try:
            response = await self._dispatch(request)
        except ServeError as error:
            response = error_response(error.status, str(error), headers=error.headers)
        except Exception as error:  # a failed build must not kill the connection
            print(
                f"error: request {request.method} {request.target} failed: {error}",
                file=sys.stderr,
            )
            response = error_response(500, f"{type(error).__name__}: {error}")
        finally:
            self.metrics.in_flight_requests -= 1
        self.metrics.count_response(response.status)
        return response

    async def _dispatch(
        self, request: HttpRequest
    ) -> Union[HttpResponse, StreamingHttpResponse]:
        path = request.path.rstrip("/") or "/"
        handlers, args = self._resolve_route(path)
        if handlers is None:
            raise ServeError(404, f"no route for {request.path!r}")
        handler = handlers.get(request.method)
        if handler is None:
            raise ServeError(
                405,
                f"method {request.method} not allowed for {path} "
                f"(allowed: {', '.join(sorted(handlers))})",
                headers=(("Allow", ", ".join(sorted(handlers))),),
            )
        return await handler(request, *args)  # type: ignore[return-value]

    def _resolve_route(
        self, path: str
    ) -> Tuple[Optional[Dict[str, Callable[..., Awaitable[object]]]], Tuple[str, ...]]:
        exact = self._routes.get(path)
        if exact is not None:
            return exact, ()
        if path.startswith(EXPERIMENTS_PREFIX):
            experiment_id = path[len(EXPERIMENTS_PREFIX):]
            if experiment_id and "/" not in experiment_id:
                return {"GET": self._experiment}, (experiment_id,)
        if path.startswith(JOBS_PREFIX):
            rest = path[len(JOBS_PREFIX):]
            if rest and "/" not in rest:
                return {"GET": self._job_status}, (rest,)
            job_id, _, tail = rest.partition("/")
            if job_id and tail == "result":
                return {"GET": self._job_result}, (job_id,)
        return None, ()

    # ---------------------------------------------------------- read plane

    async def _healthz(self, request: HttpRequest) -> HttpResponse:
        # Always 200 — probes ask "is the process alive"; a degraded
        # body (breaker open, builds rejected) is a state report, not a
        # liveness failure.
        return HttpResponse(status=200, body=json_body(self.service.health()))

    async def _metrics_snapshot(self, request: HttpRequest) -> HttpResponse:
        return HttpResponse(status=200, body=json_body(self.metrics.snapshot()))

    async def _experiments_index(self, request: HttpRequest) -> HttpResponse:
        return HttpResponse(
            status=200, body=json_body(self.service.describe_experiments())
        )

    async def _experiment(
        self, request: HttpRequest, experiment_id: str
    ) -> HttpResponse:
        prepared = self.service.prepare(experiment_id, request.query)
        return await self._serve_prepared(request, prepared)

    async def _serve_prepared(
        self, request: HttpRequest, prepared: PreparedRequest
    ) -> HttpResponse:
        """One prepared request's result: 304, body-cache hit, or fetch."""
        etag = etag_for(prepared.key)
        if if_none_match_matches(request.header("if-none-match"), etag):
            # The key is derived purely from code + params + backend, so a
            # matching If-None-Match answers without any disk access.
            self.metrics.not_modified += 1
            return HttpResponse(status=304, headers=(("ETag", etag),))
        body = self._cached_body(prepared.key)
        if body is not None:
            # Content-addressed bodies are immutable, so the warm hot path
            # is a dict lookup: no disk read, no JSON round-trip.
            self.metrics.cache_hits += 1
            self.metrics.memory_hits += 1
            state = "hit"
        else:
            result, state = await self.service.fetch(prepared)
            # Re-check: of N single-flight waiters resumed by one build, only
            # the first pays for serialization; the rest find its bytes here
            # (no await between this lookup and the insert below).
            body = self._cached_body(prepared.key)
            if body is None:
                body = json_body(result.canonical_dict())
                self._store_body(prepared.key, body)
        return HttpResponse(
            status=200,
            body=body,
            headers=(
                ("ETag", etag),
                ("X-Cache", state),
                ("Cache-Control", "no-cache"),
            ),
        )

    # ----------------------------------------------------- in-memory bodies

    def _cached_body(self, key: str) -> Optional[bytes]:
        body = self._body_cache.get(key)
        if body is not None:
            self._body_cache.move_to_end(key)
        return body

    def _store_body(self, key: str, body: bytes) -> None:
        """Insert under the byte bound, evicting least-recently-used bodies.

        A body larger than the whole budget is served but never cached —
        admitting it would evict everything else for an entry that can only
        be hit again by an identical oversized request.
        """
        if len(body) > self.body_cache_bytes:
            return
        previous = self._body_cache.pop(key, None)
        if previous is not None:
            self._body_cache_total -= len(previous)
        self._body_cache[key] = body
        self._body_cache_total += len(body)
        while self._body_cache_total > self.body_cache_bytes:
            _, evicted = self._body_cache.popitem(last=False)
            self._body_cache_total -= len(evicted)

    def _drop_body(self, key: str) -> None:
        body = self._body_cache.pop(key, None)
        if body is not None:
            self._body_cache_total -= len(body)

    def _drop_all_bodies(self) -> None:
        self._body_cache.clear()
        self._body_cache_total = 0

    # ------------------------------------------------------------ job plane

    async def _jobs_index(self, request: HttpRequest) -> HttpResponse:
        document = {
            "jobs": [job.snapshot(include_tasks=False) for job in self.jobs.jobs()],
            "counts": self.jobs.counts(),
        }
        return HttpResponse(status=200, body=json_body(document))

    async def _jobs_submit(self, request: HttpRequest) -> HttpResponse:
        document = self._parse_json_object(request)
        unknown = sorted(set(document) - JOB_DOCUMENT_KEYS)
        if unknown:
            raise ServeError(
                400,
                f"unknown job field(s): {', '.join(unknown)} "
                f"(known: {', '.join(sorted(JOB_DOCUMENT_KEYS))})",
            )
        wait = document.get("wait", False)
        if not isinstance(wait, bool):
            raise ServeError(400, f"'wait' must be a boolean, got {wait!r}")
        tasks = self._job_tasks_from(document)
        self._reject_when_breaker_open()
        job = self.jobs.create(tasks)
        self.metrics.jobs_submitted += 1
        run = asyncio.get_running_loop().create_task(self._run_job(job))
        self._job_runs.add(run)
        run.add_done_callback(self._job_runs.discard)
        if wait:
            # Synchronous mode: the response carries the finished snapshot
            # (status "done" or "failed" — job errors never become HTTP
            # errors here; the client reads the status field).
            await asyncio.shield(run)
            return HttpResponse(status=200, body=json_body(job.snapshot()))
        return HttpResponse(
            status=202,
            body=json_body(job.snapshot()),
            headers=(("Location", f"/jobs/{job.job_id}"),),
        )

    def _job_tasks_from(self, document: Mapping[str, Any]) -> List[JobTask]:
        """Expand a submission document into validated tasks (no disk I/O)."""
        backend = document.get("backend")
        entries = document.get("experiments")
        if entries is not None:
            for key in ("experiment", "params", "grid"):
                if key in document:
                    raise ServeError(
                        400, f"'experiments' cannot be combined with {key!r}"
                    )
            prepared = self._prepare_entries(entries, backend)
        elif "experiment" in document:
            prepared = self._expand_grid(
                document["experiment"],
                document.get("params"),
                document.get("grid"),
                backend,
            )
        else:
            raise ServeError(
                400, "a job document needs 'experiment' or 'experiments'"
            )
        if not prepared:
            raise ServeError(400, "a job needs at least one task")
        if len(prepared) > MAX_JOB_TASKS:
            raise ServeError(
                400,
                f"job expands to {len(prepared)} tasks "
                f"(the limit is {MAX_JOB_TASKS}); split the submission",
            )
        return [JobTask(prepared=item) for item in prepared]

    def _prepare_entries(
        self, entries: Any, default_backend: Optional[str]
    ) -> List[PreparedRequest]:
        if not isinstance(entries, list):
            raise ServeError(400, "'experiments' must be a list")
        prepared: List[PreparedRequest] = []
        for index, entry in enumerate(entries):
            if isinstance(entry, str):
                prepared.append(
                    self.service.prepare_document(entry, None, default_backend)
                )
            elif isinstance(entry, Mapping):
                unknown = sorted(set(entry) - {"experiment", "params", "backend"})
                if unknown:
                    raise ServeError(
                        400,
                        f"experiments[{index}] has unknown field(s): "
                        f"{', '.join(unknown)}",
                    )
                experiment_id = entry.get("experiment")
                if not isinstance(experiment_id, str):
                    raise ServeError(
                        400, f"experiments[{index}] needs an 'experiment' string"
                    )
                prepared.append(
                    self.service.prepare_document(
                        experiment_id,
                        entry.get("params"),
                        entry.get("backend", default_backend),
                    )
                )
            else:
                raise ServeError(
                    400,
                    f"experiments[{index}] must be an experiment id or an object",
                )
        return prepared

    def _expand_grid(
        self,
        experiment_id: Any,
        params: Any,
        grid: Any,
        backend: Optional[str],
    ) -> List[PreparedRequest]:
        if not isinstance(experiment_id, str):
            raise ServeError(400, "'experiment' must be an experiment id string")
        if grid is None:
            return [self.service.prepare_document(experiment_id, params, backend)]
        if not isinstance(grid, Mapping) or not grid:
            raise ServeError(
                400, "'grid' must be a non-empty object of parameter value lists"
            )
        axes: List[Tuple[str, List[Any]]] = []
        for name in sorted(grid):
            values = grid[name]
            if not isinstance(values, list) or not values:
                raise ServeError(
                    400, f"grid axis {name!r} must be a non-empty list of values"
                )
            axes.append((name, values))
        base = dict(params) if isinstance(params, Mapping) else {}
        if params is not None and not isinstance(params, Mapping):
            raise ServeError(400, f"params for {experiment_id!r} must be an object")
        overlap = sorted(set(base) & {name for name, _ in axes})
        if overlap:
            raise ServeError(
                400,
                f"grid axis and params overlap: {', '.join(overlap)} "
                "(a parameter is either fixed or swept, not both)",
            )
        points = itertools.product(*(values for _, values in axes))
        names = [name for name, _ in axes]
        prepared = []
        for combo in points:
            if len(prepared) >= MAX_JOB_TASKS:
                raise ServeError(
                    400,
                    f"grid expands past the {MAX_JOB_TASKS}-task limit; "
                    "split the sweep",
                )
            point = dict(base)
            point.update(zip(names, combo))
            prepared.append(
                self.service.prepare_document(experiment_id, point, backend)
            )
        return prepared

    def _reject_when_breaker_open(self) -> None:
        """Refuse new write work while builds are known to be failing.

        Reads degrade per-request inside :meth:`ResultService._build`; a job
        accepted now would only queue doomed builds behind the breaker, so
        the write path rejects at the door with the same recovery hint.
        """
        breaker = self.service.breaker
        if breaker.state == "open":
            raise ServeError(
                503,
                "job submissions are temporarily disabled after repeated "
                "build failures (circuit breaker open); cached results are "
                "still served",
                headers=(("Retry-After", breaker.retry_after_header()),),
            )

    async def _run_job(self, job: Job) -> None:
        """Drive one job's tasks through the single-flight build path."""
        self.jobs.mark_running(job)
        try:
            for task in job.tasks:
                task.status = "running"
                try:
                    result, state = await self.service.fetch(task.prepared)
                except Exception as error:
                    task.status = FAILED
                    task.error = str(error) or type(error).__name__
                    raise
                task.status = DONE
                task.state = state
                # Prime the body cache so the poll that follows completion
                # (and any GET of the same point) is a memory hit.
                if self._cached_body(task.prepared.key) is None:
                    self._store_body(
                        task.prepared.key, json_body(result.canonical_dict())
                    )
        except asyncio.CancelledError:
            self.jobs.mark_failed(job, "cancelled at server shutdown")
            self.metrics.jobs_failed += 1
            raise
        except Exception as error:
            self.jobs.mark_failed(job, str(error) or type(error).__name__)
            self.metrics.jobs_failed += 1
        else:
            self.jobs.mark_done(job)
            self.metrics.jobs_completed += 1

    async def _job_status(self, request: HttpRequest, job_id: str) -> HttpResponse:
        job = self._lookup_job(job_id)
        return HttpResponse(status=200, body=json_body(job.snapshot()))

    async def _job_result(self, request: HttpRequest, job_id: str) -> HttpResponse:
        job = self._lookup_job(job_id)
        if not job.finished:
            raise ServeError(
                409,
                f"job {job_id!r} is still {job.status}; poll /jobs/{job_id} "
                "until it reports done",
            )
        if job.status == FAILED:
            raise ServeError(500, f"job {job_id!r} failed: {job.error}")
        if len(job.tasks) == 1:
            # A single-task job's result IS the experiment document — same
            # ETag/304/body-cache path as GET /experiments/{id}, so the
            # bytes are identical to the golden snapshot.
            return await self._serve_prepared(request, job.tasks[0].prepared)
        results = []
        for task in job.tasks:
            result, _ = await self.service.fetch(task.prepared)
            results.append(result.canonical_dict())
        document = {
            "schema_version": RESULT_SCHEMA_VERSION,
            "job": job.job_id,
            "results": results,
        }
        return HttpResponse(status=200, body=json_body(document))

    def _lookup_job(self, job_id: str) -> Job:
        job = self.jobs.get(job_id)
        if job is None:
            raise ServeError(
                404,
                f"unknown job {job_id!r} (jobs are kept for the last "
                f"{self.jobs.history_limit} submissions)",
            )
        return job

    async def close(self) -> None:
        """Cancel in-flight job runs (server shutdown)."""
        for run in list(self._job_runs):
            run.cancel()
        if self._job_runs:
            await asyncio.gather(*self._job_runs, return_exceptions=True)
        self._job_runs.clear()

    # ----------------------------------------------------------- bulk plane

    async def _results(
        self, request: HttpRequest
    ) -> Union[HttpResponse, StreamingHttpResponse]:
        if request.method == "POST":
            document = self._parse_json_object(request)
            unknown = sorted(set(document) - RESULTS_DOCUMENT_KEYS)
            if unknown:
                raise ServeError(
                    400,
                    f"unknown results field(s): {', '.join(unknown)} "
                    f"(known: {', '.join(sorted(RESULTS_DOCUMENT_KEYS))})",
                )
        else:
            document = self._results_selection_from_query(request.query)
        output_format = document.get("format") or "json"
        if output_format not in ("json", "ndjson"):
            raise ServeError(
                400, f"format must be 'json' or 'ndjson', got {output_format!r}"
            )
        prepared = self._bulk_selection(document)
        if output_format == "ndjson":
            return StreamingHttpResponse(
                status=200,
                chunks=self._ndjson_results(prepared),
                headers=(("X-Result-Count", str(len(prepared))),),
            )
        ids = [item.spec.experiment_id for item in prepared]
        duplicates = sorted({x for x in ids if ids.count(x) > 1})
        if duplicates:
            raise ServeError(
                400,
                "duplicate experiment(s) in one results document: "
                f"{', '.join(duplicates)} (use format=ndjson for parameter grids)",
            )
        results: Dict[str, Any] = {}
        for item in prepared:
            result, _ = await self.service.fetch(item)
            results[item.spec.experiment_id] = result.canonical_dict()
        self.metrics.bulk_results_served += len(results)
        return HttpResponse(
            status=200,
            body=json_body(
                {"schema_version": RESULT_SCHEMA_VERSION, "results": results}
            ),
        )

    @staticmethod
    def _results_selection_from_query(
        query: Mapping[str, Sequence[str]]
    ) -> Dict[str, Any]:
        """Normalize ``GET /results`` query params to the POST document shape."""
        known = {"experiment", "tag", "backend", "format"}
        unknown = sorted(set(query) - known)
        if unknown:
            raise ServeError(
                400,
                f"unknown query parameter(s): {', '.join(unknown)} "
                f"(known: {', '.join(sorted(known))})",
            )
        document: Dict[str, Any] = {}
        experiments = list(query.get("experiment", []))
        if experiments:
            document["experiments"] = experiments
        tags = list(query.get("tag", []))
        if tags:
            document["tag"] = tags
        for name in ("backend", "format"):
            values = list(query.get(name, []))
            if len(values) > 1:
                raise ServeError(
                    400, f"query parameter {name!r} was given more than once"
                )
            if values:
                document[name] = values[0]
        return document

    def _bulk_selection(self, document: Mapping[str, Any]) -> List[PreparedRequest]:
        """The prepared requests a results/warm selection document names."""
        backend = document.get("backend")
        entries = document.get("experiments")
        tags = document.get("tag")
        if isinstance(tags, str):
            tags = [tags]
        if tags is not None:
            if entries is not None:
                raise ServeError(
                    400, "'tag' cannot be combined with an explicit experiment list"
                )
            if not isinstance(tags, list) or not all(
                isinstance(tag, str) for tag in tags
            ):
                raise ServeError(400, "'tag' must be a tag name or list of names")
            known_tags = set(registry.known_tags())
            unknown = sorted(set(tags) - known_tags)
            if unknown:
                raise ServeError(
                    400,
                    f"unknown tag(s): {', '.join(unknown)} "
                    f"(known: {', '.join(sorted(known_tags))})",
                )
            entries = [
                spec.experiment_id
                for spec in registry.all_specs()
                if set(spec.tags) & set(tags)
            ]
        if entries is None:
            entries = registry.experiment_ids()
        prepared = self._prepare_entries(entries, backend)
        if not prepared:
            raise ServeError(400, "the selection matches no experiments")
        if len(prepared) > MAX_JOB_TASKS:
            raise ServeError(
                400,
                f"selection expands to {len(prepared)} results "
                f"(the limit is {MAX_JOB_TASKS}); narrow it",
            )
        return prepared

    async def _ndjson_results(
        self, prepared: Sequence[PreparedRequest]
    ) -> AsyncIterator[bytes]:
        """One result per line, computed (or cache-hit) as the stream runs.

        The 200 status line is already on the wire when a late build fails,
        so mid-stream errors become a terminal ``{"error": ...}`` line —
        consumers must treat a stream whose last line carries ``error`` as
        truncated.
        """
        for item in prepared:
            try:
                result, _ = await self.service.fetch(item)
            except ServeError as error:
                yield ndjson_line(
                    {"error": {"status": error.status, "message": str(error)}}
                )
                return
            except Exception as error:
                yield ndjson_line(
                    {"error": {"status": 500, "message": f"{type(error).__name__}: {error}"}}
                )
                return
            self.metrics.bulk_results_served += 1
            yield ndjson_line(
                {
                    "experiment_id": item.spec.experiment_id,
                    "result": result.canonical_dict(),
                }
            )

    # ---------------------------------------------------------- cache admin

    async def _cache_stats(self, request: HttpRequest) -> HttpResponse:
        self.metrics.cache_admin_ops += 1
        stats = await asyncio.to_thread(self.service.cache.stats)
        return HttpResponse(status=200, body=json_body(dataclasses.asdict(stats)))

    async def _cache_prune(self, request: HttpRequest) -> HttpResponse:
        self.metrics.cache_admin_ops += 1
        report = await asyncio.to_thread(self.service.cache.prune)
        return HttpResponse(
            status=200,
            body=json_body({"action": "prune", **dataclasses.asdict(report)}),
        )

    async def _cache_invalidate(self, request: HttpRequest) -> HttpResponse:
        self.metrics.cache_admin_ops += 1
        document = self._parse_json_object(request)
        unknown = sorted(set(document) - {"key"})
        if unknown:
            raise ServeError(
                400, f"unknown invalidate field(s): {', '.join(unknown)}"
            )
        key = document.get("key")
        if key is not None:
            if not isinstance(key, str):
                raise ServeError(400, f"'key' must be a cache-key string, got {key!r}")
            removed = await asyncio.to_thread(self.service.cache.invalidate, key)
            self._drop_body(key)
            return HttpResponse(
                status=200,
                body=json_body(
                    {"action": "invalidate", "key": key, "removed": removed}
                ),
            )
        # No key: re-hash the source tree.  Through the server's refresh
        # hook this also recycles the process pool, exactly like the
        # periodic refresh loop — the admin plane must not introduce a
        # second, weaker notion of "the code changed".
        if self._refresh is not None:
            changed = bool(await self._refresh())
        else:
            changed = await asyncio.to_thread(refresh_code_fingerprint)
        if changed:
            # Every cache key just changed, so no retained body can be
            # requested again — drop them rather than waiting for eviction.
            self._drop_all_bodies()
        return HttpResponse(
            status=200,
            body=json_body({"action": "invalidate", "fingerprint_changed": changed}),
        )

    async def _cache_warm(self, request: HttpRequest) -> HttpResponse:
        self.metrics.cache_admin_ops += 1
        document = self._parse_json_object(request)
        unknown = sorted(set(document) - WARM_DOCUMENT_KEYS)
        if unknown:
            raise ServeError(
                400,
                f"unknown warm field(s): {', '.join(unknown)} "
                f"(known: {', '.join(sorted(WARM_DOCUMENT_KEYS))})",
            )
        prepared = self._bulk_selection(document)
        warmed: List[Dict[str, Any]] = []
        counts = {"hit": 0, "miss": 0}
        for item in prepared:
            _, state = await self.service.fetch(item)
            counts[state] = counts.get(state, 0) + 1
            warmed.append(
                {
                    "experiment_id": item.spec.experiment_id,
                    "cache": state,
                    "key": item.key,
                }
            )
        return HttpResponse(
            status=200,
            body=json_body({"action": "warm", "counts": counts, "results": warmed}),
        )

    # ------------------------------------------------------------- plumbing

    @staticmethod
    def _parse_json_object(request: HttpRequest) -> Dict[str, Any]:
        """The request body as a JSON object (empty body → empty object)."""
        if not request.body:
            return {}
        try:
            document = json.loads(request.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ServeError(400, f"request body is not valid JSON: {error}") from None
        if not isinstance(document, dict):
            raise ServeError(
                400,
                f"request body must be a JSON object, got {type(document).__name__}",
            )
        return document
