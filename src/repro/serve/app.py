"""Route dispatch: maps parsed HTTP requests to service calls.

Four routes, all read-only:

- ``GET /healthz`` — liveness probe;
- ``GET /metrics`` — the :class:`~repro.serve.metrics.ServiceMetrics` snapshot;
- ``GET /experiments`` — the registry listing with tags and params schema;
- ``GET /experiments/{id}?param=...&backend=...`` — one experiment's
  canonical result JSON (byte-identical to the golden snapshots), computed
  on miss, with the cache key as a strong ``ETag`` so ``If-None-Match``
  round-trips answer ``304`` without touching disk.

Every error — routing, validation or a failed build — is translated into a
JSON ``{"error": {...}}`` body with the right status, never a raw traceback.
"""

from __future__ import annotations

import json
import sys
from collections import OrderedDict
from typing import Any, Optional, Sequence, Tuple

from repro.core.exceptions import ServeError
from repro.serve.http import (
    HttpRequest,
    HttpResponse,
    etag_for,
    if_none_match_matches,
)
from repro.serve.metrics import ServiceMetrics
from repro.serve.service import ResultService

#: Prefix of the per-experiment result route.
EXPERIMENTS_PREFIX = "/experiments/"

#: Encoded response bodies kept in memory, keyed by cache key.  The key is
#: content-addressed (code + params + backend), so an entry can never go
#: stale — the bound only caps memory under many distinct param queries.
DEFAULT_BODY_CACHE_SIZE = 256


def json_body(document: Any) -> bytes:
    """A JSON document in the repository's canonical on-disk format.

    Indent-2, sorted keys, trailing newline — exactly how the golden
    snapshots under ``tests/golden/`` are written, so a served result is
    byte-comparable to its golden file.
    """
    return (
        json.dumps(document, indent=2, sort_keys=True, allow_nan=False) + "\n"
    ).encode("utf-8")


def error_response(
    status: int,
    message: str,
    *,
    headers: Sequence[Tuple[str, str]] = (),
) -> HttpResponse:
    """A JSON error response for ``status`` (plus e.g. ``Retry-After``)."""
    return HttpResponse(
        status=status,
        body=json_body({"error": {"status": status, "message": message}}),
        headers=tuple(headers),
    )


class ResultApp:
    """The request handler bridging HTTP requests to the result service."""

    def __init__(
        self,
        service: ResultService,
        metrics: Optional[ServiceMetrics] = None,
        *,
        body_cache_size: int = DEFAULT_BODY_CACHE_SIZE,
    ) -> None:
        self.service = service
        self.metrics = metrics if metrics is not None else service.metrics
        self.body_cache_size = body_cache_size
        self._body_cache: "OrderedDict[str, bytes]" = OrderedDict()

    async def handle(self, request: HttpRequest) -> HttpResponse:
        """Dispatch one request; never raises."""
        self.metrics.requests_total += 1
        self.metrics.in_flight_requests += 1
        try:
            response = await self._dispatch(request)
        except ServeError as error:
            response = error_response(error.status, str(error), headers=error.headers)
        except Exception as error:  # a failed build must not kill the connection
            print(
                f"error: request {request.method} {request.target} failed: {error}",
                file=sys.stderr,
            )
            response = error_response(500, f"{type(error).__name__}: {error}")
        finally:
            self.metrics.in_flight_requests -= 1
        self.metrics.count_response(response.status)
        return response

    async def _dispatch(self, request: HttpRequest) -> HttpResponse:
        if request.method != "GET":
            return HttpResponse(
                status=405,
                body=json_body(
                    {"error": {"status": 405, "message": f"method {request.method} not allowed"}}
                ),
                headers=(("Allow", "GET"),),
            )
        path = request.path.rstrip("/") or "/"
        if path == "/healthz":
            # Always 200 — probes ask "is the process alive"; a degraded
            # body (breaker open, builds rejected) is a state report, not a
            # liveness failure.
            return HttpResponse(status=200, body=json_body(self.service.health()))
        if path == "/metrics":
            return HttpResponse(status=200, body=json_body(self.metrics.snapshot()))
        if path == "/experiments":
            return HttpResponse(
                status=200, body=json_body(self.service.describe_experiments())
            )
        if path.startswith(EXPERIMENTS_PREFIX):
            experiment_id = path[len(EXPERIMENTS_PREFIX):]
            if "/" not in experiment_id:
                return await self._experiment(request, experiment_id)
        raise ServeError(404, f"no route for {request.path!r}")

    async def _experiment(self, request: HttpRequest, experiment_id: str) -> HttpResponse:
        prepared = self.service.prepare(experiment_id, request.query)
        etag = etag_for(prepared.key)
        if if_none_match_matches(request.header("if-none-match"), etag):
            # The key is derived purely from code + params + backend, so a
            # matching If-None-Match answers without any disk access.
            self.metrics.not_modified += 1
            return HttpResponse(status=304, headers=(("ETag", etag),))
        body = self._body_cache.get(prepared.key)
        if body is not None:
            # Content-addressed bodies are immutable, so the warm hot path
            # is a dict lookup: no disk read, no JSON round-trip.
            self._body_cache.move_to_end(prepared.key)
            self.metrics.cache_hits += 1
            self.metrics.memory_hits += 1
            state = "hit"
        else:
            result, state = await self.service.fetch(prepared)
            # Re-check: of N single-flight waiters resumed by one build, only
            # the first pays for serialization; the rest find its bytes here
            # (no await between this lookup and the insert below).
            body = self._body_cache.get(prepared.key)
            if body is None:
                body = json_body(result.canonical_dict())
                self._body_cache[prepared.key] = body
                while len(self._body_cache) > self.body_cache_size:
                    self._body_cache.popitem(last=False)
            else:
                self._body_cache.move_to_end(prepared.key)
        return HttpResponse(
            status=200,
            body=body,
            headers=(
                ("ETag", etag),
                ("X-Cache", state),
                ("Cache-Control", "no-cache"),
            ),
        )
