"""Circuit breaker for the result service's build path.

When experiment builds start failing repeatedly — a poisoned worker pool, a
broken source edit, resource exhaustion — continuing to submit every miss to
the pool makes things worse: each doomed build occupies a worker, queues pile
up, and every client waits the full failure latency just to receive a 500.
The :class:`CircuitBreaker` converts that failure mode into fast, explicit
degradation:

- **closed** (healthy): builds flow; consecutive failures are counted and a
  success resets the count;
- **open**: after ``failure_threshold`` consecutive failures new builds are
  rejected immediately — the service answers ``503`` with a ``Retry-After``
  header and ``/healthz`` reports ``degraded`` — while cache hits keep being
  served untouched;
- **half-open**: once ``reset_timeout`` elapses, exactly one probe build is
  let through; success closes the breaker (full recovery, no restart
  needed), failure re-opens it for another ``reset_timeout``.

The clock is injectable so tests drive the open → half-open → closed walk
deterministically without sleeping.
"""

from __future__ import annotations

import math
import time
from typing import Any, Callable, Dict

#: Consecutive build failures that open the breaker.
DEFAULT_FAILURE_THRESHOLD = 5

#: Seconds an open breaker waits before letting a probe through.
DEFAULT_RESET_TIMEOUT = 30.0

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """Consecutive-failure breaker with a single half-open probe.

    Single-threaded by design: the result service only calls it from the
    event-loop thread, so no locking is needed (same contract as
    :class:`~repro.serve.metrics.ServiceMetrics`).
    """

    def __init__(
        self,
        *,
        failure_threshold: int = DEFAULT_FAILURE_THRESHOLD,
        reset_timeout: float = DEFAULT_RESET_TIMEOUT,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure threshold must be >= 1, got {failure_threshold}"
            )
        if reset_timeout <= 0:
            raise ValueError(f"reset timeout must be positive, got {reset_timeout}")
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self._clock = clock
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probe_in_flight = False
        self.times_opened = 0

    @property
    def state(self) -> str:
        """``closed`` / ``open`` / ``half-open`` (advances open → half-open)."""
        if self._state == OPEN and self._remaining() <= 0.0:
            self._state = HALF_OPEN
            self._probe_in_flight = False
        return self._state

    def _remaining(self) -> float:
        return self._opened_at + self.reset_timeout - self._clock()

    def allow_build(self) -> bool:
        """Whether a new build may start now.

        In half-open state exactly one caller gets ``True`` (the probe);
        everyone else is rejected until the probe reports back.
        """
        state = self.state
        if state == CLOSED:
            return True
        if state == HALF_OPEN and not self._probe_in_flight:
            self._probe_in_flight = True
            return True
        return False

    def record_success(self) -> None:
        """A build finished; close the breaker and forget past failures."""
        self._state = CLOSED
        self._consecutive_failures = 0
        self._probe_in_flight = False

    def record_failure(self) -> None:
        """A build failed; open on threshold (immediately for a failed probe)."""
        if self.state == HALF_OPEN:
            # The probe failed: the backend is still sick, re-open fully.
            self._trip()
            return
        self._consecutive_failures += 1
        if self._consecutive_failures >= self.failure_threshold:
            self._trip()

    def _trip(self) -> None:
        self._state = OPEN
        self._opened_at = self._clock()
        self._consecutive_failures = self.failure_threshold
        self._probe_in_flight = False
        self.times_opened += 1

    def retry_after(self) -> float:
        """Seconds until the next build could be allowed (0 when closed)."""
        if self.state == CLOSED:
            return 0.0
        return max(0.0, self._remaining())

    def retry_after_header(self) -> str:
        """``Retry-After`` value: integral seconds, at least 1."""
        return str(max(1, math.ceil(self.retry_after())))

    def snapshot(self) -> Dict[str, Any]:
        """The JSON document ``GET /metrics`` embeds under ``"breaker"``."""
        return {
            "state": self.state,
            "consecutive_failures": self._consecutive_failures,
            "failure_threshold": self.failure_threshold,
            "reset_timeout_seconds": self.reset_timeout,
            "retry_after_seconds": round(self.retry_after(), 3),
            "times_opened": self.times_opened,
        }
