"""Load generator and throughput snapshot for the result service.

``repro.cli bench-serve`` starts a server on an ephemeral port, drives it
with this module's asyncio client, and records a phased throughput report
(the ``BENCH_4.json``/``BENCH_7.json`` CI artifacts):

- **cold** — one request per experiment against an empty cache: every
  response is a miss that pays for a real computation;
- **warm** — ``requests`` requests fanned over ``concurrency`` keep-alive
  connections: every response is a cache hit, measuring the serving hot
  path;
- **conditional** — the same fan-out with ``If-None-Match`` set to the
  ETags collected in the cold phase: every response is a ``304`` that
  touches no disk at all;
- **mixed** (``write_ratio > 0``) — the same fan-out with every
  ``1/write_ratio``-th request replaced by a synchronous ``POST /jobs``
  submission, measuring how the write path rides alongside cached reads.

The client is stdlib-only (``asyncio.open_connection``) like the server,
and understands both ``Content-Length`` and chunked response bodies.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.exceptions import ServeError

#: Schema version of the serve-bench snapshot document (2: mixed
#: read/write phase and the ``write_ratio`` workload field).
SERVE_SNAPSHOT_VERSION = 2


@dataclass(frozen=True)
class ClientResponse:
    """One response as the bench client sees it."""

    status: int
    headers: Mapping[str, str]
    body: bytes

    def header(self, name: str, default: Optional[str] = None) -> Optional[str]:
        return self.headers.get(name.lower(), default)


class BenchClient:
    """One keep-alive connection issuing sequential requests."""

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    async def __aenter__(self) -> "BenchClient":
        self._reader, self._writer = await asyncio.open_connection(self.host, self.port)
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):  # pragma: no cover
                pass
            self._writer = None
            self._reader = None

    async def get(
        self, path: str, headers: Optional[Mapping[str, str]] = None
    ) -> ClientResponse:
        """Issue one GET and read the full response."""
        return await self.request("GET", path, headers=headers)

    async def post(
        self,
        path: str,
        document: object,
        headers: Optional[Mapping[str, str]] = None,
    ) -> ClientResponse:
        """Issue one POST with a JSON body and read the full response."""
        body = json.dumps(document, sort_keys=True).encode("utf-8")
        return await self.request("POST", path, headers=headers, body=body)

    async def request(
        self,
        method: str,
        path: str,
        *,
        headers: Optional[Mapping[str, str]] = None,
        body: bytes = b"",
    ) -> ClientResponse:
        """Issue one request and read the full response (chunked or not)."""
        if self._reader is None or self._writer is None:
            raise ServeError(500, "client connection is not open")
        lines = [f"{method} {path} HTTP/1.1", f"Host: {self.host}:{self.port}"]
        for name, value in (headers or {}).items():
            lines.append(f"{name}: {value}")
        if body or method == "POST":
            lines.append("Content-Type: application/json")
            lines.append(f"Content-Length: {len(body)}")
        self._writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body)
        await self._writer.drain()

        status_line = (await self._reader.readline()).decode("latin-1").strip()
        parts = status_line.split(" ", 2)
        if len(parts) < 2 or not parts[1].isdigit():
            raise ServeError(500, f"malformed status line from server: {status_line!r}")
        status = int(parts[1])
        response_headers: Dict[str, str] = {}
        while True:
            line = (await self._reader.readline()).decode("latin-1").strip()
            if not line:
                break
            name, _, value = line.partition(":")
            response_headers[name.strip().lower()] = value.strip()
        if response_headers.get("transfer-encoding", "").lower() == "chunked":
            payload = await self._read_chunked_body()
        else:
            length = int(response_headers.get("content-length", "0"))
            payload = await self._reader.readexactly(length) if length else b""
        return ClientResponse(status=status, headers=response_headers, body=payload)

    async def _read_chunked_body(self) -> bytes:
        """Decode a chunked ``Transfer-Encoding`` response body."""
        assert self._reader is not None
        chunks: List[bytes] = []
        while True:
            size_line = (await self._reader.readline()).decode("latin-1").strip()
            try:
                size = int(size_line.split(";", 1)[0], 16)
            except ValueError:
                raise ServeError(
                    500, f"malformed chunk size from server: {size_line!r}"
                ) from None
            if size == 0:
                # Trailer section: read lines until the terminating blank one.
                while (await self._reader.readline()).strip():
                    pass
                return b"".join(chunks)
            chunks.append(await self._reader.readexactly(size))
            await self._reader.readexactly(2)  # the chunk's trailing CRLF


@dataclass
class PhaseStats:
    """One bench phase's aggregate numbers."""

    requests: int = 0
    seconds: float = 0.0
    statuses: Dict[str, int] = field(default_factory=dict)
    x_cache: Dict[str, int] = field(default_factory=dict)

    @property
    def requests_per_second(self) -> float:
        return self.requests / self.seconds if self.seconds > 0 else 0.0

    def record(self, response: ClientResponse) -> None:
        self.requests += 1
        status = str(response.status)
        self.statuses[status] = self.statuses.get(status, 0) + 1
        x_cache = response.header("x-cache")
        if x_cache:
            self.x_cache[x_cache] = self.x_cache.get(x_cache, 0) + 1

    def as_dict(self) -> Dict[str, object]:
        return {
            "requests": self.requests,
            "seconds": self.seconds,
            "requests_per_second": self.requests_per_second,
            "statuses": dict(sorted(self.statuses.items())),
            "x_cache": dict(sorted(self.x_cache.items())),
        }


@dataclass(frozen=True)
class ServeBenchReport:
    """All bench phases plus the workload that produced them."""

    experiments: Tuple[str, ...]
    requests: int
    concurrency: int
    backend: Optional[str]
    cold: PhaseStats
    warm: PhaseStats
    conditional: PhaseStats
    write_ratio: float = 0.0
    mixed: Optional[PhaseStats] = None

    def as_dict(self) -> Dict[str, object]:
        phases: Dict[str, object] = {
            "cold_misses": self.cold.as_dict(),
            "warm_hits": self.warm.as_dict(),
            "conditional_304": self.conditional.as_dict(),
        }
        if self.mixed is not None:
            phases["mixed_read_write"] = self.mixed.as_dict()
        return {
            "version": SERVE_SNAPSHOT_VERSION,
            "benchmark": "result_service",
            "workload": {
                "experiments": list(self.experiments),
                "requests": self.requests,
                "concurrency": self.concurrency,
                "backend": self.backend,
                "write_ratio": self.write_ratio,
            },
            "phases": phases,
        }


async def _fan_out(
    host: str,
    port: int,
    paths: Sequence[str],
    *,
    requests: int,
    concurrency: int,
    headers_for: Optional[Mapping[str, Mapping[str, str]]] = None,
) -> PhaseStats:
    """Issue ``requests`` GETs round-robin over ``paths`` from ``concurrency``
    keep-alive connections; returns the aggregated phase stats."""
    stats = PhaseStats()
    counter = iter(range(requests))

    async def worker() -> List[ClientResponse]:
        responses: List[ClientResponse] = []
        async with BenchClient(host, port) as client:
            for sequence in counter:
                path = paths[sequence % len(paths)]
                headers = dict(headers_for.get(path, {})) if headers_for else None
                responses.append(await client.get(path, headers))
        return responses

    start = time.perf_counter()
    all_responses = await asyncio.gather(
        *(worker() for _ in range(max(1, min(concurrency, requests))))
    )
    stats.seconds = time.perf_counter() - start
    for responses in all_responses:
        for response in responses:
            stats.record(response)
    return stats


async def _mixed_fan_out(
    host: str,
    port: int,
    experiment_ids: Sequence[str],
    *,
    requests: int,
    concurrency: int,
    write_ratio: float,
    backend: Optional[str],
) -> PhaseStats:
    """The mixed phase: every ``stride``-th request is a synchronous
    ``POST /jobs`` submission, the rest are warm GETs.

    Submissions use ``"wait": true`` so one bench request measures a whole
    write round-trip; against the warmed cache that round-trip is the
    write-path overhead itself (job bookkeeping plus the single-flight
    lookup), not a recomputation.
    """
    stats = PhaseStats()
    stride = max(1, round(1 / write_ratio))
    suffix = f"?backend={backend}" if backend else ""
    counter = iter(range(requests))

    async def worker() -> List[ClientResponse]:
        responses: List[ClientResponse] = []
        async with BenchClient(host, port) as client:
            for sequence in counter:
                experiment_id = experiment_ids[sequence % len(experiment_ids)]
                if sequence % stride == 0:
                    document: Dict[str, object] = {
                        "experiment": experiment_id,
                        "wait": True,
                    }
                    if backend:
                        document["backend"] = backend
                    responses.append(await client.post("/jobs", document))
                else:
                    responses.append(
                        await client.get(f"/experiments/{experiment_id}{suffix}")
                    )
        return responses

    start = time.perf_counter()
    all_responses = await asyncio.gather(
        *(worker() for _ in range(max(1, min(concurrency, requests))))
    )
    stats.seconds = time.perf_counter() - start
    for responses in all_responses:
        for response in responses:
            stats.record(response)
    return stats


async def run_serve_bench(
    host: str,
    port: int,
    experiment_ids: Sequence[str],
    *,
    requests: int = 200,
    concurrency: int = 8,
    backend: Optional[str] = None,
    write_ratio: float = 0.0,
) -> ServeBenchReport:
    """Drive a running server through the bench phases and report."""
    if not experiment_ids:
        raise ServeError(400, "bench-serve needs at least one experiment")
    if requests < 1 or concurrency < 1:
        raise ServeError(400, "requests and concurrency must be >= 1")
    if not 0.0 <= write_ratio <= 1.0:
        raise ServeError(400, f"write ratio must be in [0, 1], got {write_ratio}")
    suffix = f"?backend={backend}" if backend else ""
    paths = [f"/experiments/{experiment_id}{suffix}" for experiment_id in experiment_ids]

    cold = PhaseStats()
    etags: Dict[str, str] = {}
    async with BenchClient(host, port) as client:
        start = time.perf_counter()
        for path in paths:
            response = await client.get(path)
            cold.record(response)
            etag = response.header("etag")
            if etag:
                etags[path] = etag
        cold.seconds = time.perf_counter() - start

    warm = await _fan_out(
        host, port, paths, requests=requests, concurrency=concurrency
    )
    conditional = await _fan_out(
        host,
        port,
        paths,
        requests=requests,
        concurrency=concurrency,
        headers_for={path: {"If-None-Match": etag} for path, etag in etags.items()},
    )
    mixed: Optional[PhaseStats] = None
    if write_ratio > 0:
        mixed = await _mixed_fan_out(
            host,
            port,
            list(experiment_ids),
            requests=requests,
            concurrency=concurrency,
            write_ratio=write_ratio,
            backend=backend,
        )
    return ServeBenchReport(
        experiments=tuple(experiment_ids),
        requests=requests,
        concurrency=concurrency,
        backend=backend,
        cold=cold,
        warm=warm,
        conditional=conditional,
        write_ratio=write_ratio,
        mixed=mixed,
    )


def write_serve_snapshot(report: ServeBenchReport, path: str) -> None:
    """Write the serve-bench throughput snapshot (``BENCH_*.json``)."""
    try:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(report.as_dict(), handle, indent=2, sort_keys=False)
            handle.write("\n")
    except OSError as error:
        raise ServeError(500, f"cannot write bench snapshot to {path!r}: {error}") from error
