"""Async HTTP result service over the content-addressed experiment cache.

A dependency-free asyncio server (stdlib streams, no framework) that serves
:class:`~repro.experiments.orchestrator.ExperimentResult` JSON:

- ``GET /experiments`` — registry listing with tags and params schema;
- ``GET /experiments/{id}?param=...&backend=...`` — canonical result JSON,
  computed on miss via the orchestrator seam on a bounded process pool,
  single-flighted across concurrent identical requests, with the cache key
  as a strong ``ETag`` (``If-None-Match`` answers ``304`` without disk I/O);
- ``GET /healthz`` / ``GET /metrics`` — liveness and counters.

Builds degrade gracefully: misses run on a
:class:`~repro.experiments.orchestrator.ResilientExecutor` (deadlines,
bounded retries, pool recycling), a per-request build deadline answers
``504``, and a :class:`~repro.serve.breaker.CircuitBreaker` answers ``503``
with ``Retry-After`` after repeated build failures — cache hits keep being
served, and one successful probe closes the breaker without a restart.

``repro.cli serve`` runs it; ``repro.cli bench-serve`` measures it (the
``BENCH_4.json`` artifact).
"""

from repro.serve.app import ResultApp, error_response, json_body
from repro.serve.breaker import (
    DEFAULT_FAILURE_THRESHOLD,
    DEFAULT_RESET_TIMEOUT,
    CircuitBreaker,
)
from repro.serve.http import (
    HttpRequest,
    HttpResponse,
    etag_for,
    if_none_match_matches,
    read_request,
)
from repro.serve.loadgen import (
    BenchClient,
    ServeBenchReport,
    run_serve_bench,
    write_serve_snapshot,
)
from repro.serve.metrics import ServiceMetrics
from repro.serve.server import ResultServer, default_jobs, start_server
from repro.serve.service import PreparedRequest, ResultService

__all__ = [
    "BenchClient",
    "CircuitBreaker",
    "DEFAULT_FAILURE_THRESHOLD",
    "DEFAULT_RESET_TIMEOUT",
    "HttpRequest",
    "HttpResponse",
    "PreparedRequest",
    "ResultApp",
    "ResultServer",
    "ResultService",
    "ServeBenchReport",
    "ServiceMetrics",
    "default_jobs",
    "error_response",
    "etag_for",
    "if_none_match_matches",
    "json_body",
    "read_request",
    "run_serve_bench",
    "start_server",
    "write_serve_snapshot",
]
