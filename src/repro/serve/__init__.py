"""Async HTTP result service over the content-addressed experiment cache.

A dependency-free asyncio server (stdlib streams, no framework) that serves
:class:`~repro.experiments.orchestrator.ExperimentResult` JSON.

The **read plane**:

- ``GET /experiments`` — registry listing with tags and params schema;
- ``GET /experiments/{id}?param=...&backend=...`` — canonical result JSON,
  computed on miss via the orchestrator seam on a bounded process pool,
  single-flighted across concurrent identical requests, with the cache key
  as a strong ``ETag`` (``If-None-Match`` answers ``304`` without disk I/O);
- ``GET /healthz`` / ``GET /metrics`` — liveness and counters.

The **write plane** (job submission, bulk results, cache administration):

- ``POST /jobs`` — submit an experiment or a parameter grid; jobs run
  through the same single-flight gate and resilient executor as reads, and
  live in a bounded-history :class:`~repro.serve.jobs.JobStore`;
- ``GET /jobs`` / ``GET /jobs/{id}`` / ``GET /jobs/{id}/result`` — polling
  and result retrieval (single-task results are byte-identical to the
  corresponding ``GET /experiments/{id}`` body);
- ``GET|POST /results`` — a bulk results document, or an NDJSON stream
  (``format=ndjson``, chunked ``Transfer-Encoding``) for large sweeps;
- ``GET /cache/stats``, ``POST /cache/prune|invalidate|warm`` — the admin
  plane over the :class:`~repro.experiments.orchestrator.ResultCache`.

Builds degrade gracefully: misses run on a
:class:`~repro.experiments.orchestrator.ResilientExecutor` (deadlines,
bounded retries, pool recycling), a per-request build deadline answers
``504``, and a :class:`~repro.serve.breaker.CircuitBreaker` answers ``503``
with ``Retry-After`` after repeated build failures — cache hits keep being
served, job submissions are refused at the door while the breaker is open,
and one successful probe closes the breaker without a restart.

``repro.cli serve`` runs it; ``repro.cli bench-serve`` measures it (the
``BENCH_4.json``/``BENCH_7.json`` artifacts).
"""

from repro.serve.app import (
    DEFAULT_BODY_CACHE_BYTES,
    MAX_JOB_TASKS,
    ResultApp,
    error_response,
    json_body,
    ndjson_line,
)
from repro.serve.breaker import (
    DEFAULT_FAILURE_THRESHOLD,
    DEFAULT_RESET_TIMEOUT,
    CircuitBreaker,
)
from repro.serve.http import (
    HttpRequest,
    HttpResponse,
    StreamingHttpResponse,
    etag_for,
    if_none_match_matches,
    read_request,
)
from repro.serve.jobs import DEFAULT_JOB_HISTORY, JOB_STATES, Job, JobStore, JobTask
from repro.serve.loadgen import (
    BenchClient,
    ServeBenchReport,
    run_serve_bench,
    write_serve_snapshot,
)
from repro.serve.metrics import ServiceMetrics
from repro.serve.server import ResultServer, default_jobs, start_server
from repro.serve.service import PreparedRequest, ResultService

__all__ = [
    "BenchClient",
    "CircuitBreaker",
    "DEFAULT_BODY_CACHE_BYTES",
    "DEFAULT_FAILURE_THRESHOLD",
    "DEFAULT_JOB_HISTORY",
    "DEFAULT_RESET_TIMEOUT",
    "HttpRequest",
    "HttpResponse",
    "JOB_STATES",
    "Job",
    "JobStore",
    "JobTask",
    "MAX_JOB_TASKS",
    "PreparedRequest",
    "ResultApp",
    "ResultServer",
    "ResultService",
    "ServeBenchReport",
    "ServiceMetrics",
    "StreamingHttpResponse",
    "default_jobs",
    "error_response",
    "etag_for",
    "if_none_match_matches",
    "json_body",
    "ndjson_line",
    "read_request",
    "run_serve_bench",
    "start_server",
    "write_serve_snapshot",
]
