"""Minimal HTTP/1.1 request parsing and response encoding over asyncio streams.

The result service deliberately depends on nothing beyond the standard
library, so this module implements the narrow slice of HTTP it needs:
GET/POST request lines, a bounded header block, ``Content-Length`` request
bodies (bounded, for the write-path endpoints), percent-decoded paths,
query strings, keep-alive, ``If-None-Match``/``ETag`` handling, and
chunked ``Transfer-Encoding`` responses for NDJSON result streams.
Anything outside that slice (chunked *request* bodies, upgrades) is
rejected up front with a 400/413/431 rather than half-parsed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import AsyncIterator, Dict, List, Mapping, Optional, Sequence, Tuple
from urllib.parse import parse_qs, unquote, urlsplit

import asyncio

from repro.core.exceptions import ServeError

#: Upper bound on one request line or header line, in bytes.
MAX_LINE_BYTES = 8192

#: Upper bound on the number of header lines in one request.
MAX_HEADER_COUNT = 100

#: Upper bound on a request body (job submissions and bulk-result
#: selections are small JSON documents; anything bigger is a client bug).
MAX_BODY_BYTES = 1 << 20

#: Reason phrases for every status the service emits.
REASON_PHRASES = {
    200: "OK",
    202: "Accepted",
    304: "Not Modified",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Content Too Large",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


@dataclass(frozen=True)
class HttpRequest:
    """One parsed request: method, decoded path, query multi-dict, headers,
    and (for the write-path endpoints) the raw request body."""

    method: str
    target: str
    path: str
    query: Mapping[str, List[str]]
    version: str
    headers: Mapping[str, str]
    body: bytes = b""

    def header(self, name: str, default: Optional[str] = None) -> Optional[str]:
        """A header value by case-insensitive name."""
        return self.headers.get(name.lower(), default)

    @property
    def keep_alive(self) -> bool:
        """Whether the connection should stay open after the response."""
        connection = (self.header("connection") or "").lower()
        if self.version == "HTTP/1.0":
            return connection == "keep-alive"
        return connection != "close"


@dataclass(frozen=True)
class HttpResponse:
    """One response ready to encode: status, JSON body, extra headers."""

    status: int
    body: bytes = b""
    content_type: str = "application/json"
    headers: Tuple[Tuple[str, str], ...] = field(default_factory=tuple)

    def encode(self, *, keep_alive: bool = True, head_only: bool = False) -> bytes:
        """Serialize to wire bytes (status line, headers, blank line, body)."""
        reason = REASON_PHRASES.get(self.status, "Unknown")
        lines = [f"HTTP/1.1 {self.status} {reason}"]
        if self.status != 304:
            # A 304 must not carry Content-Type/Content-Length describing its
            # (empty) body — RFC 9110 reserves those slots for the selected
            # representation's metadata, which we don't re-derive.
            lines.append(f"Content-Type: {self.content_type}")
            lines.append(f"Content-Length: {len(self.body)}")
        for name, value in self.headers:
            lines.append(f"{name}: {value}")
        lines.append("Connection: " + ("keep-alive" if keep_alive else "close"))
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        if head_only or self.status == 304:
            return head
        return head + self.body


@dataclass
class StreamingHttpResponse:
    """A response whose body arrives incrementally (NDJSON result streams).

    The body is an async iterator of byte chunks; the connection handler
    frames each chunk with HTTP/1.1 chunked ``Transfer-Encoding`` so the
    client can consume results as they are computed, without the server ever
    holding a whole sweep in memory.  Content-Length is unknowable up front,
    which is exactly what chunked framing exists for.
    """

    status: int
    chunks: AsyncIterator[bytes]
    content_type: str = "application/x-ndjson"
    headers: Tuple[Tuple[str, str], ...] = field(default_factory=tuple)

    def encode_head(self, *, keep_alive: bool = True) -> bytes:
        """The status line and headers announcing a chunked body."""
        reason = REASON_PHRASES.get(self.status, "Unknown")
        lines = [
            f"HTTP/1.1 {self.status} {reason}",
            f"Content-Type: {self.content_type}",
            "Transfer-Encoding: chunked",
        ]
        for name, value in self.headers:
            lines.append(f"{name}: {value}")
        lines.append("Connection: " + ("keep-alive" if keep_alive else "close"))
        return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


def encode_chunk(data: bytes) -> bytes:
    """One chunked-transfer frame (empty input encodes to nothing)."""
    if not data:
        return b""
    return f"{len(data):x}\r\n".encode("latin-1") + data + b"\r\n"


#: The terminating frame of a chunked response body.
LAST_CHUNK = b"0\r\n\r\n"


async def read_request(reader: asyncio.StreamReader) -> Optional[HttpRequest]:
    """Parse one request from the stream.

    Returns ``None`` on a clean end-of-stream before any byte of a request
    (the client closed a keep-alive connection), raises :class:`ServeError`
    on anything malformed.
    """
    try:
        raw_line = await reader.readuntil(b"\n")
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None
        raise ServeError(400, "truncated request line") from error
    except asyncio.LimitOverrunError as error:
        raise ServeError(431, "request line too long") from error
    if len(raw_line) > MAX_LINE_BYTES:
        raise ServeError(431, "request line too long")
    request_line = raw_line.decode("latin-1").strip()
    if not request_line:
        raise ServeError(400, "empty request line")
    parts = request_line.split()
    if len(parts) != 3:
        raise ServeError(400, f"malformed request line: {request_line!r}")
    method, target, version = parts
    if version not in ("HTTP/1.0", "HTTP/1.1"):
        raise ServeError(400, f"unsupported protocol version {version!r}")

    headers: Dict[str, str] = {}
    for _ in range(MAX_HEADER_COUNT + 1):
        try:
            raw_header = await reader.readuntil(b"\n")
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError) as error:
            raise ServeError(400, "truncated header block") from error
        if len(raw_header) > MAX_LINE_BYTES:
            raise ServeError(431, "header line too long")
        line = raw_header.decode("latin-1").strip()
        if not line:
            break
        name, separator, value = line.partition(":")
        if not separator or not name.strip():
            raise ServeError(400, f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()
    else:
        raise ServeError(431, "too many header lines")

    if "transfer-encoding" in headers:
        # Chunked request bodies are outside this server's HTTP slice; a
        # half-parsed one would desynchronize the keep-alive stream.
        raise ServeError(400, "chunked request bodies are not supported")
    body = b""
    raw_length = headers.get("content-length")
    if raw_length is not None:
        try:
            length = int(raw_length)
        except ValueError:
            raise ServeError(400, f"malformed Content-Length: {raw_length!r}") from None
        if length < 0:
            raise ServeError(400, f"malformed Content-Length: {raw_length!r}")
        if length > MAX_BODY_BYTES:
            raise ServeError(
                413, f"request body of {length} bytes exceeds the {MAX_BODY_BYTES} limit"
            )
        if length:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError as error:
                raise ServeError(400, "truncated request body") from error

    split = urlsplit(target)
    return HttpRequest(
        method=method,
        target=target,
        path=unquote(split.path),
        query=parse_qs(split.query, keep_blank_values=True),
        version=version,
        headers=headers,
        body=body,
    )


def etag_for(key: str) -> str:
    """The strong entity tag for a cache key (the quoted key itself)."""
    return f'"{key}"'


def if_none_match_matches(header_value: Optional[str], etag: str) -> bool:
    """Whether an ``If-None-Match`` header matches ``etag``.

    Implements the subset a cache-key ETag needs: ``*`` matches anything,
    otherwise the comma-separated candidates are compared after stripping
    any weak ``W/`` prefix (weak comparison is fine for 304 purposes).
    """
    if not header_value:
        return False
    if header_value.strip() == "*":
        return True
    bare = etag.strip('"')
    for candidate in header_value.split(","):
        candidate = candidate.strip()
        if candidate.startswith("W/"):
            candidate = candidate[2:].strip()
        if candidate.strip('"') == bare:
            return True
    return False
