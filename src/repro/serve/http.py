"""Minimal HTTP/1.1 request parsing and response encoding over asyncio streams.

The result service deliberately depends on nothing beyond the standard
library, so this module implements the narrow slice of HTTP it needs:
GET request lines, a bounded header block, percent-decoded paths, query
strings, keep-alive and ``If-None-Match``/``ETag`` handling.  Anything
outside that slice (bodies, chunked encoding, upgrades) is rejected up
front with a 400/405/431 rather than half-parsed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple
from urllib.parse import parse_qs, unquote, urlsplit

import asyncio

from repro.core.exceptions import ServeError

#: Upper bound on one request line or header line, in bytes.
MAX_LINE_BYTES = 8192

#: Upper bound on the number of header lines in one request.
MAX_HEADER_COUNT = 100

#: Reason phrases for every status the service emits.
REASON_PHRASES = {
    200: "OK",
    304: "Not Modified",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


@dataclass(frozen=True)
class HttpRequest:
    """One parsed request: method, decoded path, query multi-dict, headers."""

    method: str
    target: str
    path: str
    query: Mapping[str, List[str]]
    version: str
    headers: Mapping[str, str]

    def header(self, name: str, default: Optional[str] = None) -> Optional[str]:
        """A header value by case-insensitive name."""
        return self.headers.get(name.lower(), default)

    @property
    def keep_alive(self) -> bool:
        """Whether the connection should stay open after the response."""
        connection = (self.header("connection") or "").lower()
        if self.version == "HTTP/1.0":
            return connection == "keep-alive"
        return connection != "close"


@dataclass(frozen=True)
class HttpResponse:
    """One response ready to encode: status, JSON body, extra headers."""

    status: int
    body: bytes = b""
    content_type: str = "application/json"
    headers: Tuple[Tuple[str, str], ...] = field(default_factory=tuple)

    def encode(self, *, keep_alive: bool = True, head_only: bool = False) -> bytes:
        """Serialize to wire bytes (status line, headers, blank line, body)."""
        reason = REASON_PHRASES.get(self.status, "Unknown")
        lines = [f"HTTP/1.1 {self.status} {reason}"]
        if self.status != 304:
            # A 304 must not carry Content-Type/Content-Length describing its
            # (empty) body — RFC 9110 reserves those slots for the selected
            # representation's metadata, which we don't re-derive.
            lines.append(f"Content-Type: {self.content_type}")
            lines.append(f"Content-Length: {len(self.body)}")
        for name, value in self.headers:
            lines.append(f"{name}: {value}")
        lines.append("Connection: " + ("keep-alive" if keep_alive else "close"))
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        if head_only or self.status == 304:
            return head
        return head + self.body


async def read_request(reader: asyncio.StreamReader) -> Optional[HttpRequest]:
    """Parse one request from the stream.

    Returns ``None`` on a clean end-of-stream before any byte of a request
    (the client closed a keep-alive connection), raises :class:`ServeError`
    on anything malformed.
    """
    try:
        raw_line = await reader.readuntil(b"\n")
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None
        raise ServeError(400, "truncated request line") from error
    except asyncio.LimitOverrunError as error:
        raise ServeError(431, "request line too long") from error
    if len(raw_line) > MAX_LINE_BYTES:
        raise ServeError(431, "request line too long")
    request_line = raw_line.decode("latin-1").strip()
    if not request_line:
        raise ServeError(400, "empty request line")
    parts = request_line.split()
    if len(parts) != 3:
        raise ServeError(400, f"malformed request line: {request_line!r}")
    method, target, version = parts
    if version not in ("HTTP/1.0", "HTTP/1.1"):
        raise ServeError(400, f"unsupported protocol version {version!r}")

    headers: Dict[str, str] = {}
    for _ in range(MAX_HEADER_COUNT + 1):
        try:
            raw_header = await reader.readuntil(b"\n")
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError) as error:
            raise ServeError(400, "truncated header block") from error
        if len(raw_header) > MAX_LINE_BYTES:
            raise ServeError(431, "header line too long")
        line = raw_header.decode("latin-1").strip()
        if not line:
            break
        name, separator, value = line.partition(":")
        if not separator or not name.strip():
            raise ServeError(400, f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()
    else:
        raise ServeError(431, "too many header lines")

    split = urlsplit(target)
    return HttpRequest(
        method=method,
        target=target,
        path=unquote(split.path),
        query=parse_qs(split.query, keep_blank_values=True),
        version=version,
        headers=headers,
    )


def etag_for(key: str) -> str:
    """The strong entity tag for a cache key (the quoted key itself)."""
    return f'"{key}"'


def if_none_match_matches(header_value: Optional[str], etag: str) -> bool:
    """Whether an ``If-None-Match`` header matches ``etag``.

    Implements the subset a cache-key ETag needs: ``*`` matches anything,
    otherwise the comma-separated candidates are compared after stripping
    any weak ``W/`` prefix (weak comparison is fine for 304 purposes).
    """
    if not header_value:
        return False
    if header_value.strip() == "*":
        return True
    bare = etag.strip('"')
    for candidate in header_value.split(","):
        candidate = candidate.strip()
        if candidate.startswith("W/"):
            candidate = candidate[2:].strip()
        if candidate.strip('"') == bare:
            return True
    return False
