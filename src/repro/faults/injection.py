"""Fault schedules for protocol simulations.

An exploit campaign (or a hand-written scenario) is turned into a
:class:`FaultSchedule`: a list of :class:`FaultSpec` entries saying *which*
replica misbehaves, *how* (Byzantine or crash) and *from when*.  The BFT and
Nakamoto simulators consume the schedule to decide each node's behaviour, so
the same fault description drives both the analytical safety condition and
the end-to-end protocol runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, unique
from typing import Dict, Iterable, Iterator, Optional, Tuple

from repro.core.exceptions import FaultModelError
from repro.core.population import ReplicaPopulation
from repro.faults.campaign import CampaignOutcome


@unique
class FaultKind(str, Enum):
    """How a faulty replica misbehaves."""

    BYZANTINE = "byzantine"  # arbitrary behaviour, attacker-controlled
    CRASH = "crash"  # stops participating
    EQUIVOCATE = "equivocate"  # sends conflicting messages (a Byzantine specialization)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class FaultSpec:
    """One replica's fault: kind and activation time.

    Attributes:
        replica_id: the faulty replica.
        kind: how it misbehaves once the fault activates.
        start_time: simulation time from which the fault is active.
        end_time: optional recovery time (proactive recovery / patching);
            ``None`` means the fault persists for the whole run.
        cause: free-text provenance (vulnerability id, "rational", ...).
    """

    replica_id: str
    kind: FaultKind = FaultKind.BYZANTINE
    start_time: float = 0.0
    end_time: Optional[float] = None
    cause: str = ""

    def __post_init__(self) -> None:
        if not self.replica_id:
            raise FaultModelError("fault spec needs a replica id")
        if self.start_time < 0:
            raise FaultModelError(f"start time must be non-negative, got {self.start_time}")
        if self.end_time is not None and self.end_time < self.start_time:
            raise FaultModelError("fault end time cannot precede its start time")

    def is_active_at(self, time: float) -> bool:
        """True when the fault is in effect at ``time``."""
        if time < self.start_time:
            return False
        return self.end_time is None or time < self.end_time


class FaultSchedule:
    """The set of faults injected into one simulation run."""

    def __init__(self, specs: Iterable[FaultSpec] = ()) -> None:
        self._specs: Dict[str, FaultSpec] = {}
        for spec in specs:
            self.add(spec)

    def add(self, spec: FaultSpec) -> None:
        """Add a fault; at most one fault spec per replica."""
        if spec.replica_id in self._specs:
            raise FaultModelError(
                f"replica {spec.replica_id!r} already has a fault scheduled"
            )
        self._specs[spec.replica_id] = spec

    def spec_for(self, replica_id: str) -> Optional[FaultSpec]:
        """The fault spec of ``replica_id`` (``None`` when the replica is honest)."""
        return self._specs.get(replica_id)

    def is_faulty_at(self, replica_id: str, time: float) -> bool:
        """True when ``replica_id`` is faulty at ``time``."""
        spec = self._specs.get(replica_id)
        return spec is not None and spec.is_active_at(time)

    def kind_at(self, replica_id: str, time: float) -> Optional[FaultKind]:
        """The active fault kind of ``replica_id`` at ``time`` (``None`` if honest)."""
        spec = self._specs.get(replica_id)
        if spec is None or not spec.is_active_at(time):
            return None
        return spec.kind

    def faulty_ids_at(self, time: float) -> Tuple[str, ...]:
        """Ids of all replicas faulty at ``time``."""
        return tuple(
            replica_id
            for replica_id, spec in self._specs.items()
            if spec.is_active_at(time)
        )

    def faulty_power_at(self, population: ReplicaPopulation, time: float) -> float:
        """Total voting power of replicas faulty at ``time``."""
        return sum(
            population.power_of(replica_id)
            for replica_id in self.faulty_ids_at(time)
            if replica_id in population
        )

    # -- constructors -----------------------------------------------------------

    @classmethod
    def from_campaign(
        cls,
        outcome: CampaignOutcome,
        *,
        kind: FaultKind = FaultKind.BYZANTINE,
        start_time: float = 0.0,
        end_time: Optional[float] = None,
    ) -> "FaultSchedule":
        """Every replica the campaign compromised becomes faulty at ``start_time``."""
        cause = ",".join(outcome.exploited)
        return cls(
            FaultSpec(
                replica_id=replica_id,
                kind=kind,
                start_time=start_time,
                end_time=end_time,
                cause=cause,
            )
            for replica_id in sorted(outcome.compromised_replicas)
        )

    @classmethod
    def byzantine(cls, replica_ids: Iterable[str], *, start_time: float = 0.0) -> "FaultSchedule":
        """A schedule marking the given replicas Byzantine from ``start_time``."""
        return cls(
            FaultSpec(replica_id=replica_id, kind=FaultKind.BYZANTINE, start_time=start_time)
            for replica_id in replica_ids
        )

    @classmethod
    def crashed(cls, replica_ids: Iterable[str], *, start_time: float = 0.0) -> "FaultSchedule":
        """A schedule crashing the given replicas at ``start_time``."""
        return cls(
            FaultSpec(replica_id=replica_id, kind=FaultKind.CRASH, start_time=start_time)
            for replica_id in replica_ids
        )

    @classmethod
    def none(cls) -> "FaultSchedule":
        """The empty schedule (fully honest run)."""
        return cls()

    # -- dunder -------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._specs)

    def __iter__(self) -> Iterator[FaultSpec]:
        return iter(self._specs.values())

    def __contains__(self, replica_id: str) -> bool:
        return replica_id in self._specs

    def __repr__(self) -> str:
        kinds = {}
        for spec in self._specs.values():
            kinds[spec.kind.value] = kinds.get(spec.kind.value, 0) + 1
        return f"FaultSchedule(faults={len(self)}, kinds={kinds})"
