"""Array-backed view of a population's fault domains.

A :class:`PopulationMatrix` freezes one ``ReplicaPopulation`` +
``VulnerabilityCatalog`` pair into the structures the campaign kernels
consume: a replicas × vulnerabilities exposure matrix (rows in join order,
columns in catalog insertion order), the per-replica power vector, and the
per-vulnerability exploit-success probabilities and disclosure times.  It is
built once per (population, catalog) pair and handed to every campaign — the
scalar per-replica scans of the original fault model become masked
matrix–vector reductions on the compute backend
(:meth:`~repro.backend.base.ComputeBackend.masked_power_sums`,
:meth:`~repro.backend.base.ComputeBackend.campaign_trials`).

The exposure can be held **dense** (nested 0/1 tuples, the historical
layout) or **sparse** (a CSR :class:`~repro.backend.base.SparseExposure`).
``build(..., layout=...)`` picks automatically: real ecosystems expose each
replica to a handful of components out of many, so beyond a few million
dense cells — or past ~64k cells at ≤ 12.5% density — the matrix keeps only
the exposed cells and campaigns route through the sparse kernels.  Both
layouts produce bit-identical campaign results; everything the dense layout
additionally materializes (row tuples, per-replica ids) is either available
on demand or explicitly reported as not materialized.

The matrix is a *snapshot*: later mutations of the population (join/leave,
power updates) or catalog (``add``) are not reflected.  Rebuild after
mutating, exactly as you would re-take a census.
"""

from __future__ import annotations

import array as _stdlib_array
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.backend import get_backend
from repro.backend.base import SparseExposure
from repro.backend.selection import BackendLike
from repro.core.exceptions import FaultModelError
from repro.core.population import Replica, ReplicaPopulation
from repro.faults.catalog import VulnerabilityCatalog

#: Accepted values of ``build(..., layout=...)``.
MATRIX_LAYOUTS = ("auto", "dense", "sparse")

#: ``layout="auto"`` goes sparse above this many dense cells outright …
AUTO_SPARSE_CELLS = 1 << 22
#: … or above this many cells when the exposed-cell density is at most
#: :data:`AUTO_SPARSE_DENSITY`.
AUTO_SPARSE_MIN_CELLS = 1 << 16
AUTO_SPARSE_DENSITY = 0.125


def _auto_layout(replica_count: int, column_count: int, nnz: int) -> str:
    """The ``layout="auto"`` density heuristic, shared by every build path."""
    cells = replica_count * column_count
    if cells > AUTO_SPARSE_CELLS:
        return "sparse"
    if cells > AUTO_SPARSE_MIN_CELLS and cells and nnz / cells <= AUTO_SPARSE_DENSITY:
        return "sparse"
    return "dense"


class PopulationMatrix:
    """Exposure matrix plus power/probability vectors for campaigns."""

    def __init__(
        self,
        replica_ids: Sequence[str],
        powers: Sequence[float],
        vulnerability_ids: Sequence[str],
        success_probabilities: Sequence[float],
        disclosed_at: Sequence[float],
        exposure: Sequence[Sequence[float]],
    ) -> None:
        self._replica_ids: Optional[Tuple[str, ...]] = tuple(replica_ids)
        self._powers: Sequence[float] = tuple(float(p) for p in powers)
        self._exposure: Optional[Tuple[Tuple[float, ...], ...]] = tuple(
            tuple(1.0 if cell else 0.0 for cell in row) for row in exposure
        )
        self._sparse: Optional[SparseExposure] = None
        self._replica_count = len(self._replica_ids)
        self._init_vulnerabilities(
            vulnerability_ids, success_probabilities, disclosed_at
        )
        self._validate()
        self._replica_index: Optional[Dict[str, int]] = {
            replica_id: index for index, replica_id in enumerate(self._replica_ids)
        }
        self._finish_init()
        self._exposed_rows: Optional[Tuple[Tuple[int, ...], ...]] = tuple(
            tuple(
                row
                for row in range(self._replica_count)
                if self._exposure[row][column]
            )
            for column in range(len(self._vulnerability_ids))
        )

    # -- construction -------------------------------------------------------------

    def _init_vulnerabilities(
        self,
        vulnerability_ids: Sequence[str],
        success_probabilities: Sequence[float],
        disclosed_at: Sequence[float],
    ) -> None:
        self._vulnerability_ids: Tuple[str, ...] = tuple(vulnerability_ids)
        self._success_probabilities: Tuple[float, ...] = tuple(
            float(p) for p in success_probabilities
        )
        self._disclosed_at: Tuple[float, ...] = tuple(
            float(t) for t in disclosed_at
        )
        self._vulnerability_index: Dict[str, int] = {
            vuln_id: index for index, vuln_id in enumerate(self._vulnerability_ids)
        }

    def _finish_init(self) -> None:
        # Total power summed sequentially in join order, matching
        # ReplicaPopulation.total_power so outcomes are byte-compatible.
        total = 0.0
        for power in self._powers:
            total += power
        self._total_power = total
        # Per-backend caches of the kernel-ready arrays and of the full
        # exposed-power reduction (keyed by backend name; backends are
        # process-wide singletons so the name identifies the instance).
        self._array_cache: Dict[Tuple[str, str], object] = {}
        self._exposed_power_cache: Dict[str, Tuple[float, ...]] = {}

    @classmethod
    def _from_sparse(
        cls,
        sparse: SparseExposure,
        vulnerability_ids: Sequence[str],
        replica_ids: Optional[Sequence[str]],
    ) -> "PopulationMatrix":
        self = cls.__new__(cls)
        self._replica_ids = tuple(replica_ids) if replica_ids is not None else None
        self._powers = sparse.powers
        self._exposure = None
        self._exposed_rows = None
        self._sparse = sparse.validate()
        self._replica_count = sparse.replica_count
        self._init_vulnerabilities(
            vulnerability_ids,
            sparse.success_probabilities,
            sparse.disclosed_at,
        )
        self._validate()
        self._replica_index = (
            {
                replica_id: index
                for index, replica_id in enumerate(self._replica_ids)
            }
            if self._replica_ids is not None
            else None
        )
        self._finish_init()
        return self

    @classmethod
    def build(
        cls,
        population: ReplicaPopulation,
        catalog: VulnerabilityCatalog,
        *,
        layout: str = "auto",
    ) -> "PopulationMatrix":
        """Snapshot ``population`` × ``catalog`` into a campaign matrix.

        Exposure cell ``(r, v)`` is 1 exactly when replica ``r``'s
        configuration contains vulnerability ``v``'s component — the same
        fault-domain query ``ReplicaPopulation.replicas_using_component``
        answers, resolved once for every pair.  ``layout`` selects the
        storage: ``"dense"`` and ``"sparse"`` force it, ``"auto"`` applies
        the density heuristic (every pre-sparse workload stays dense).
        """
        if layout not in MATRIX_LAYOUTS:
            raise FaultModelError(
                f"matrix layout must be one of {MATRIX_LAYOUTS}, got {layout!r}"
            )
        replicas = population.replicas()
        vulnerabilities = catalog.all()
        if not replicas:
            raise FaultModelError("cannot build a matrix for an empty population")
        # Resolve the exposed columns once; both layouts are derived from the
        # same per-row index tuples, so build(dense) stays byte-identical to
        # the historical construction.
        components = [v.component for v in vulnerabilities]
        row_columns = [
            tuple(
                column
                for column, component in enumerate(components)
                if replica.configuration.has_component(component)
            )
            for replica in replicas
        ]
        if layout == "auto":
            nnz = sum(len(columns) for columns in row_columns)
            layout = _auto_layout(len(replicas), len(vulnerabilities), nnz)
        vulnerability_ids = [v.vuln_id for v in vulnerabilities]
        if layout == "sparse":
            sparse = SparseExposure.from_rows(
                row_columns,
                (replica.power for replica in replicas),
                [v.exploit_probability for v in vulnerabilities],
                [v.disclosed_at for v in vulnerabilities],
            )
            return cls._from_sparse(
                sparse,
                vulnerability_ids,
                [replica.replica_id for replica in replicas],
            )
        column_count = len(vulnerabilities)
        exposure = []
        for columns in row_columns:
            row = [0.0] * column_count
            for column in columns:
                row[column] = 1.0
            exposure.append(row)
        return cls(
            replica_ids=[replica.replica_id for replica in replicas],
            powers=[replica.power for replica in replicas],
            vulnerability_ids=vulnerability_ids,
            success_probabilities=[v.exploit_probability for v in vulnerabilities],
            disclosed_at=[v.disclosed_at for v in vulnerabilities],
            exposure=exposure,
        )

    @classmethod
    def from_replica_chunks(
        cls,
        chunks: Iterable[Sequence[Replica]],
        catalog: VulnerabilityCatalog,
        *,
        keep_replica_ids: bool = False,
    ) -> "PopulationMatrix":
        """Stream replica chunks straight into a sparse matrix.

        The bounded-memory build path: chunks (e.g. from
        :func:`repro.datasets.generators.stream_replica_chunks`) are consumed
        one at a time and only the CSR structure accumulates — the population
        itself is never materialized.  Replica ids are dropped by default
        (10⁶ id strings dwarf the CSR arrays); pass ``keep_replica_ids=True``
        when per-replica attribution is worth the memory.
        """
        vulnerabilities = catalog.all()
        components = [v.component for v in vulnerabilities]
        indptr = _stdlib_array.array("q", [0])
        indices = _stdlib_array.array("q")
        powers = _stdlib_array.array("d")
        replica_ids: Optional[List[str]] = [] if keep_replica_ids else None
        # Distinct configurations are few (the product of market sizes), so
        # the exposed-column resolution caches per configuration value.
        columns_cache: Dict[object, Tuple[int, ...]] = {}
        for chunk in chunks:
            for replica in chunk:
                configuration = replica.configuration
                columns = columns_cache.get(configuration)
                if columns is None:
                    columns = tuple(
                        column
                        for column, component in enumerate(components)
                        if configuration.has_component(component)
                    )
                    columns_cache[configuration] = columns
                indices.extend(columns)
                indptr.append(len(indices))
                powers.append(float(replica.power))
                if replica_ids is not None:
                    replica_ids.append(replica.replica_id)
        if len(indptr) == 1:
            raise FaultModelError("cannot build a matrix for an empty population")
        sparse = SparseExposure(
            indptr=indptr,
            indices=indices,
            powers=powers,
            success_probabilities=tuple(
                v.exploit_probability for v in vulnerabilities
            ),
            disclosed_at=tuple(v.disclosed_at for v in vulnerabilities),
        )
        sparse.validate()
        return cls._from_sparse(
            sparse, [v.vuln_id for v in vulnerabilities], replica_ids
        )

    def _validate(self) -> None:
        if len(self._powers) != self._replica_count:
            raise FaultModelError(
                f"{len(self._powers)} powers for {self._replica_count} replicas"
            )
        if len(self._success_probabilities) != len(self._vulnerability_ids) or len(
            self._disclosed_at
        ) != len(self._vulnerability_ids):
            raise FaultModelError(
                "per-vulnerability vectors must match the vulnerability ids"
            )
        if self._exposure is not None:
            if len(self._exposure) != self._replica_count:
                raise FaultModelError(
                    f"exposure has {len(self._exposure)} rows for "
                    f"{self._replica_count} replicas"
                )
            for row in self._exposure:
                if len(row) != len(self._vulnerability_ids):
                    raise FaultModelError(
                        f"exposure row has {len(row)} columns for "
                        f"{len(self._vulnerability_ids)} vulnerabilities"
                    )
        elif self._sparse is not None and self._sparse.column_count != len(
            self._vulnerability_ids
        ):
            raise FaultModelError(
                f"sparse exposure has {self._sparse.column_count} columns for "
                f"{len(self._vulnerability_ids)} vulnerabilities"
            )
        # Population and catalog already reject duplicate ids at join/add
        # time; re-checking here keeps hand-built matrices honest too.
        if self._replica_ids is not None and len(set(self._replica_ids)) != len(
            self._replica_ids
        ):
            raise FaultModelError("duplicate replica ids in population matrix")
        if len(set(self._vulnerability_ids)) != len(self._vulnerability_ids):
            raise FaultModelError("duplicate vulnerability ids in population matrix")
        if any(power < 0 for power in self._powers):
            raise FaultModelError("replica powers must be non-negative")

    # -- shape and lookups ---------------------------------------------------------

    @property
    def is_sparse(self) -> bool:
        """Whether the exposure is stored CSR (no dense rows materialized)."""
        return self._sparse is not None

    @property
    def replica_ids(self) -> Tuple[str, ...]:
        if self._replica_ids is None:
            raise FaultModelError(
                "replica ids were not materialized for this sparse matrix; "
                "build with keep_replica_ids=True if attribution is needed"
            )
        return self._replica_ids

    @property
    def vulnerability_ids(self) -> Tuple[str, ...]:
        return self._vulnerability_ids

    @property
    def replica_count(self) -> int:
        return self._replica_count

    @property
    def vulnerability_count(self) -> int:
        return len(self._vulnerability_ids)

    @property
    def powers(self) -> Sequence[float]:
        """Per-replica powers (a tuple when dense, an ``array('d')`` when sparse)."""
        return self._powers

    @property
    def success_probabilities(self) -> Tuple[float, ...]:
        return self._success_probabilities

    @property
    def total_power(self) -> float:
        """``n_t`` — total voting power of the snapshot."""
        return self._total_power

    @property
    def nnz(self) -> int:
        """Number of exposed (replica, vulnerability) cells."""
        if self._sparse is not None:
            return self._sparse.nnz
        return sum(
            1 for row in self._exposure for cell in row if cell
        )

    @property
    def density(self) -> float:
        """Exposed-cell fraction of the dense grid."""
        cells = self.replica_count * self.vulnerability_count
        return self.nnz / cells if cells else 0.0

    def replica_index(self, replica_id: str) -> int:
        if self._replica_index is None:
            raise FaultModelError(
                "replica ids were not materialized for this sparse matrix; "
                "build with keep_replica_ids=True if attribution is needed"
            )
        try:
            return self._replica_index[replica_id]
        except KeyError:
            raise FaultModelError(f"unknown replica {replica_id!r}") from None

    def vulnerability_index(self, vuln_id: str) -> int:
        try:
            return self._vulnerability_index[vuln_id]
        except KeyError:
            raise FaultModelError(f"unknown vulnerability {vuln_id!r}") from None

    def _require_dense(self, what: str) -> None:
        if self._exposure is None:
            raise FaultModelError(
                f"{what} needs the dense exposure, which a sparse-built "
                "matrix does not materialize; use sparse_exposure() / "
                "sparse_columns_for() instead"
            )

    def exposed_row_indices(self, vuln_id: str) -> Tuple[int, ...]:
        """Row indices (join order) of the replicas exposed to ``vuln_id``."""
        if self._exposed_rows is None:
            column = self.vulnerability_index(vuln_id)
            sparse = self._sparse
            return tuple(
                row
                for row in range(sparse.replica_count)
                for position in range(
                    sparse.indptr[row], sparse.indptr[row + 1]
                )
                if sparse.indices[position] == column
            )
        return self._exposed_rows[self.vulnerability_index(vuln_id)]

    def exposure_rows(self) -> Tuple[Tuple[float, ...], ...]:
        """The raw 0/1 exposure matrix as nested tuples (row-major)."""
        self._require_dense("exposure_rows()")
        return self._exposure

    def is_exploitable_at(self, vuln_id: str, time: Optional[float]) -> bool:
        """Disclosure gate: ``time is None`` means "already disclosed"."""
        if time is None:
            return True
        return time >= self._disclosed_at[self.vulnerability_index(vuln_id)]

    # -- backend arrays ------------------------------------------------------------

    def exposure_array(self, backend: BackendLike = None):
        """The exposure matrix in the backend's native representation (cached)."""
        self._require_dense("exposure_array()")
        resolved = get_backend(backend)
        key = ("exposure", resolved.name)
        cached = self._array_cache.get(key)
        if cached is None:
            cached = resolved.asarray_matrix(self._exposure)
            self._array_cache[key] = cached
        return cached

    def powers_array(self, backend: BackendLike = None):
        """The power vector in the backend's native representation (cached)."""
        resolved = get_backend(backend)
        key = ("powers", resolved.name)
        cached = self._array_cache.get(key)
        if cached is None:
            cached = resolved.asarray(self._powers)
            self._array_cache[key] = cached
        return cached

    # -- sparse views --------------------------------------------------------------

    def sparse_exposure(self) -> SparseExposure:
        """The exposure as a validated CSR structure.

        Free for sparse-built matrices; dense matrices compress on first use
        (cached) so any matrix can feed the sparse kernels and engines.
        """
        if self._sparse is None:
            cached = self._array_cache.get(("sparse", ""))
            if cached is None:
                cached = SparseExposure.from_dense(
                    self._exposure,
                    self._powers,
                    self._success_probabilities,
                    self._disclosed_at,
                )
                self._array_cache[("sparse", "")] = cached
            return cached
        return self._sparse

    def sparse_columns_for(
        self, vulnerability_ids: Sequence[str]
    ) -> SparseExposure:
        """Column-sliced CSR structure for a selection, in selection order.

        The sparse analogue of :meth:`columns_for`: the result's local
        column ``c`` is ``vulnerability_ids[c]``, with the matching
        probability and disclosure vectors, so kernels on it draw the exact
        stream of a dense call on the column-sliced matrix.
        """
        columns = [
            self.vulnerability_index(vuln_id) for vuln_id in vulnerability_ids
        ]
        return self.sparse_exposure().select_columns(columns)

    # -- reductions ---------------------------------------------------------------

    def exposed_power(
        self,
        *,
        backend: BackendLike = None,
        time: Optional[float] = None,
    ) -> Dict[str, float]:
        """Voting power exposed to each vulnerability (``f_t^i`` upper bounds).

        One masked matrix–vector reduction on the compute backend replaces
        the per-vulnerability population scans of
        ``VulnerabilityCatalog.exposure``; when ``time`` is given,
        vulnerabilities not yet disclosed report 0 (they cannot be
        exploited), matching the catalog semantics.  Sparse matrices reduce
        over the CSR cells only.
        """
        resolved = get_backend(backend)
        sums = self._exposed_power_cache.get(resolved.name)
        if sums is None:
            if self._sparse is not None:
                sums = tuple(
                    resolved.sparse_masked_power_sums(self._sparse)
                )
            else:
                sums = tuple(
                    resolved.masked_power_sums(
                        self.exposure_array(resolved), self.powers_array(resolved)
                    )
                )
            self._exposed_power_cache[resolved.name] = sums
        return {
            vuln_id: (
                0.0
                if time is not None and time < self._disclosed_at[index]
                else sums[index]
            )
            for index, vuln_id in enumerate(self._vulnerability_ids)
        }

    def most_damaging(
        self,
        count: int,
        *,
        backend: BackendLike = None,
        time: Optional[float] = None,
    ) -> Tuple[Tuple[str, float], ...]:
        """The ``count`` vulnerabilities exposing the most voting power.

        Ranking (descending exposure, id as tie-break) matches
        ``VulnerabilityCatalog.most_damaging`` so the refactored worst-case
        campaign picks the same targets as the scalar implementation.
        """
        if count < 0:
            raise FaultModelError(f"count must be non-negative, got {count}")
        exposure = self.exposed_power(backend=backend, time=time)
        ranked = sorted(exposure.items(), key=lambda item: (-item[1], item[0]))
        return tuple(ranked[:count])

    def columns_for(
        self, vulnerability_ids: Sequence[str]
    ) -> Tuple[Tuple[Tuple[float, ...], ...], Tuple[float, ...]]:
        """Column-sliced ``(exposure rows, success probabilities)`` for a selection.

        Used by the campaign engine to hand the kernels exactly the exploited
        columns, in selection order.
        """
        self._require_dense("columns_for()")
        columns = [self.vulnerability_index(vuln_id) for vuln_id in vulnerability_ids]
        rows = tuple(
            tuple(row[column] for column in columns) for row in self._exposure
        )
        probabilities = tuple(self._success_probabilities[column] for column in columns)
        return rows, probabilities

    # -- dunder -------------------------------------------------------------------

    def __repr__(self) -> str:
        layout = "sparse" if self.is_sparse else "dense"
        return (
            f"PopulationMatrix(replicas={self.replica_count}, "
            f"vulnerabilities={self.vulnerability_count}, "
            f"layout={layout}, "
            f"total_power={self._total_power:.6g})"
        )
