"""Array-backed view of a population's fault domains.

A :class:`PopulationMatrix` freezes one ``ReplicaPopulation`` +
``VulnerabilityCatalog`` pair into the dense structures the campaign kernels
consume: a replicas × vulnerabilities exposure matrix (rows in join order,
columns in catalog insertion order), the per-replica power vector, and the
per-vulnerability exploit-success probabilities and disclosure times.  It is
built once per (population, catalog) pair and handed to every campaign — the
scalar per-replica scans of the original fault model become masked
matrix–vector reductions on the compute backend
(:meth:`~repro.backend.base.ComputeBackend.masked_power_sums`,
:meth:`~repro.backend.base.ComputeBackend.campaign_trials`).

The matrix is a *snapshot*: later mutations of the population (join/leave,
power updates) or catalog (``add``) are not reflected.  Rebuild after
mutating, exactly as you would re-take a census.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.backend import get_backend
from repro.backend.selection import BackendLike
from repro.core.exceptions import FaultModelError
from repro.core.population import ReplicaPopulation
from repro.faults.catalog import VulnerabilityCatalog


class PopulationMatrix:
    """Dense exposure matrix plus power/probability vectors for campaigns."""

    def __init__(
        self,
        replica_ids: Sequence[str],
        powers: Sequence[float],
        vulnerability_ids: Sequence[str],
        success_probabilities: Sequence[float],
        disclosed_at: Sequence[float],
        exposure: Sequence[Sequence[float]],
    ) -> None:
        self._replica_ids: Tuple[str, ...] = tuple(replica_ids)
        self._powers: Tuple[float, ...] = tuple(float(p) for p in powers)
        self._vulnerability_ids: Tuple[str, ...] = tuple(vulnerability_ids)
        self._success_probabilities: Tuple[float, ...] = tuple(
            float(p) for p in success_probabilities
        )
        self._disclosed_at: Tuple[float, ...] = tuple(float(t) for t in disclosed_at)
        self._exposure: Tuple[Tuple[float, ...], ...] = tuple(
            tuple(1.0 if cell else 0.0 for cell in row) for row in exposure
        )
        self._validate()
        self._replica_index: Dict[str, int] = {
            replica_id: index for index, replica_id in enumerate(self._replica_ids)
        }
        self._vulnerability_index: Dict[str, int] = {
            vuln_id: index for index, vuln_id in enumerate(self._vulnerability_ids)
        }
        # Total power summed sequentially in join order, matching
        # ReplicaPopulation.total_power so outcomes are byte-compatible.
        total = 0.0
        for power in self._powers:
            total += power
        self._total_power = total
        self._exposed_rows: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(
                row
                for row in range(len(self._replica_ids))
                if self._exposure[row][column]
            )
            for column in range(len(self._vulnerability_ids))
        )
        # Per-backend caches of the kernel-ready arrays and of the full
        # exposed-power reduction (keyed by backend name; backends are
        # process-wide singletons so the name identifies the instance).
        self._array_cache: Dict[Tuple[str, str], object] = {}
        self._exposed_power_cache: Dict[str, Tuple[float, ...]] = {}

    # -- construction -------------------------------------------------------------

    @classmethod
    def build(
        cls,
        population: ReplicaPopulation,
        catalog: VulnerabilityCatalog,
    ) -> "PopulationMatrix":
        """Snapshot ``population`` × ``catalog`` into a dense matrix.

        Exposure cell ``(r, v)`` is 1 exactly when replica ``r``'s
        configuration contains vulnerability ``v``'s component — the same
        fault-domain query ``ReplicaPopulation.replicas_using_component``
        answers, resolved once for every pair.
        """
        replicas = population.replicas()
        vulnerabilities = catalog.all()
        if not replicas:
            raise FaultModelError("cannot build a matrix for an empty population")
        return cls(
            replica_ids=[replica.replica_id for replica in replicas],
            powers=[replica.power for replica in replicas],
            vulnerability_ids=[v.vuln_id for v in vulnerabilities],
            success_probabilities=[v.exploit_probability for v in vulnerabilities],
            disclosed_at=[v.disclosed_at for v in vulnerabilities],
            exposure=[
                [
                    1.0 if replica.configuration.has_component(v.component) else 0.0
                    for v in vulnerabilities
                ]
                for replica in replicas
            ],
        )

    def _validate(self) -> None:
        if len(self._powers) != len(self._replica_ids):
            raise FaultModelError(
                f"{len(self._powers)} powers for {len(self._replica_ids)} replicas"
            )
        if len(self._success_probabilities) != len(self._vulnerability_ids) or len(
            self._disclosed_at
        ) != len(self._vulnerability_ids):
            raise FaultModelError(
                "per-vulnerability vectors must match the vulnerability ids"
            )
        if len(self._exposure) != len(self._replica_ids):
            raise FaultModelError(
                f"exposure has {len(self._exposure)} rows for "
                f"{len(self._replica_ids)} replicas"
            )
        for row in self._exposure:
            if len(row) != len(self._vulnerability_ids):
                raise FaultModelError(
                    f"exposure row has {len(row)} columns for "
                    f"{len(self._vulnerability_ids)} vulnerabilities"
                )
        # Population and catalog already reject duplicate ids at join/add
        # time; re-checking here keeps hand-built matrices honest too.
        if len(set(self._replica_ids)) != len(self._replica_ids):
            raise FaultModelError("duplicate replica ids in population matrix")
        if len(set(self._vulnerability_ids)) != len(self._vulnerability_ids):
            raise FaultModelError("duplicate vulnerability ids in population matrix")
        if any(power < 0 for power in self._powers):
            raise FaultModelError("replica powers must be non-negative")

    # -- shape and lookups ---------------------------------------------------------

    @property
    def replica_ids(self) -> Tuple[str, ...]:
        return self._replica_ids

    @property
    def vulnerability_ids(self) -> Tuple[str, ...]:
        return self._vulnerability_ids

    @property
    def replica_count(self) -> int:
        return len(self._replica_ids)

    @property
    def vulnerability_count(self) -> int:
        return len(self._vulnerability_ids)

    @property
    def powers(self) -> Tuple[float, ...]:
        return self._powers

    @property
    def success_probabilities(self) -> Tuple[float, ...]:
        return self._success_probabilities

    @property
    def total_power(self) -> float:
        """``n_t`` — total voting power of the snapshot."""
        return self._total_power

    def replica_index(self, replica_id: str) -> int:
        try:
            return self._replica_index[replica_id]
        except KeyError:
            raise FaultModelError(f"unknown replica {replica_id!r}") from None

    def vulnerability_index(self, vuln_id: str) -> int:
        try:
            return self._vulnerability_index[vuln_id]
        except KeyError:
            raise FaultModelError(f"unknown vulnerability {vuln_id!r}") from None

    def exposed_row_indices(self, vuln_id: str) -> Tuple[int, ...]:
        """Row indices (join order) of the replicas exposed to ``vuln_id``."""
        return self._exposed_rows[self.vulnerability_index(vuln_id)]

    def exposure_rows(self) -> Tuple[Tuple[float, ...], ...]:
        """The raw 0/1 exposure matrix as nested tuples (row-major)."""
        return self._exposure

    def is_exploitable_at(self, vuln_id: str, time: Optional[float]) -> bool:
        """Disclosure gate: ``time is None`` means "already disclosed"."""
        if time is None:
            return True
        return time >= self._disclosed_at[self.vulnerability_index(vuln_id)]

    # -- backend arrays ------------------------------------------------------------

    def exposure_array(self, backend: BackendLike = None):
        """The exposure matrix in the backend's native representation (cached)."""
        resolved = get_backend(backend)
        key = ("exposure", resolved.name)
        cached = self._array_cache.get(key)
        if cached is None:
            cached = resolved.asarray_matrix(self._exposure)
            self._array_cache[key] = cached
        return cached

    def powers_array(self, backend: BackendLike = None):
        """The power vector in the backend's native representation (cached)."""
        resolved = get_backend(backend)
        key = ("powers", resolved.name)
        cached = self._array_cache.get(key)
        if cached is None:
            cached = resolved.asarray(self._powers)
            self._array_cache[key] = cached
        return cached

    # -- reductions ---------------------------------------------------------------

    def exposed_power(
        self,
        *,
        backend: BackendLike = None,
        time: Optional[float] = None,
    ) -> Dict[str, float]:
        """Voting power exposed to each vulnerability (``f_t^i`` upper bounds).

        One masked matrix–vector reduction on the compute backend replaces
        the per-vulnerability population scans of
        ``VulnerabilityCatalog.exposure``; when ``time`` is given,
        vulnerabilities not yet disclosed report 0 (they cannot be
        exploited), matching the catalog semantics.
        """
        resolved = get_backend(backend)
        sums = self._exposed_power_cache.get(resolved.name)
        if sums is None:
            sums = tuple(
                resolved.masked_power_sums(
                    self.exposure_array(resolved), self.powers_array(resolved)
                )
            )
            self._exposed_power_cache[resolved.name] = sums
        return {
            vuln_id: (
                0.0
                if time is not None and time < self._disclosed_at[index]
                else sums[index]
            )
            for index, vuln_id in enumerate(self._vulnerability_ids)
        }

    def most_damaging(
        self,
        count: int,
        *,
        backend: BackendLike = None,
        time: Optional[float] = None,
    ) -> Tuple[Tuple[str, float], ...]:
        """The ``count`` vulnerabilities exposing the most voting power.

        Ranking (descending exposure, id as tie-break) matches
        ``VulnerabilityCatalog.most_damaging`` so the refactored worst-case
        campaign picks the same targets as the scalar implementation.
        """
        if count < 0:
            raise FaultModelError(f"count must be non-negative, got {count}")
        exposure = self.exposed_power(backend=backend, time=time)
        ranked = sorted(exposure.items(), key=lambda item: (-item[1], item[0]))
        return tuple(ranked[:count])

    def columns_for(
        self, vulnerability_ids: Sequence[str]
    ) -> Tuple[Tuple[Tuple[float, ...], ...], Tuple[float, ...]]:
        """Column-sliced ``(exposure rows, success probabilities)`` for a selection.

        Used by the campaign engine to hand the kernels exactly the exploited
        columns, in selection order.
        """
        columns = [self.vulnerability_index(vuln_id) for vuln_id in vulnerability_ids]
        rows = tuple(
            tuple(row[column] for column in columns) for row in self._exposure
        )
        probabilities = tuple(self._success_probabilities[column] for column in columns)
        return rows, probabilities

    # -- dunder -------------------------------------------------------------------

    def __repr__(self) -> str:
        return (
            f"PopulationMatrix(replicas={self.replica_count}, "
            f"vulnerabilities={self.vulnerability_count}, "
            f"total_power={self._total_power:.6g})"
        )
