"""Exploit campaigns: resolving vulnerabilities against a replica population.

A campaign turns "the attacker exploits vulnerabilities V1..Vm" into the
quantities the Section II-C safety condition needs: the set of compromised
replicas, the power compromised through each vulnerability (``f_t^i``) and
the total compromised power.  Replicas exposed to several exploited
vulnerabilities are counted once in the total (a replica cannot be "more than
Byzantine") but appear in every relevant ``f_t^i`` for reporting, mirroring
the paper's per-vulnerability accounting.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Optional, Sequence, Tuple

from repro.core.exceptions import FaultModelError
from repro.core.population import Replica, ReplicaPopulation
from repro.core.resilience import ProtocolFamily, ResilienceReport, analyze_resilience
from repro.faults.catalog import VulnerabilityCatalog
from repro.faults.vulnerability import Vulnerability


@dataclass(frozen=True)
class CampaignOutcome:
    """Result of running an exploit campaign against a population.

    Attributes:
        exploited: ids of the vulnerabilities the attacker exploited.
        compromised_replicas: ids of replicas that became Byzantine.
        compromised_power: total voting power of the compromised replicas
            (each replica counted once even when multiply exposed).
        total_power: the population's total voting power ``n_t``.
        power_per_vulnerability: the per-vulnerability compromised power
            ``f_t^i`` (a replica exposed to several exploited vulnerabilities
            contributes to each).
    """

    exploited: Tuple[str, ...]
    compromised_replicas: FrozenSet[str]
    compromised_power: float
    total_power: float
    power_per_vulnerability: Tuple[Tuple[str, float], ...]

    @property
    def compromised_fraction(self) -> float:
        """Compromised power as a fraction of total power."""
        if self.total_power <= 0:
            return 0.0
        return self.compromised_power / self.total_power

    def violates(self, tolerated_fraction: float) -> bool:
        """True when the campaign compromises at least ``tolerated_fraction`` of power."""
        if not 0 < tolerated_fraction <= 1:
            raise FaultModelError(
                f"tolerated fraction must be in (0, 1], got {tolerated_fraction}"
            )
        return self.compromised_fraction >= tolerated_fraction - 1e-12


class ExploitCampaign:
    """Executes exploit campaigns against a replica population.

    The campaign model follows Section II-B: exploiting vulnerability ``i``
    makes every exposed replica Byzantine with the vulnerability's
    ``exploit_probability`` (independently per replica).  With the default
    probability of 1.0 the campaign is deterministic.
    """

    def __init__(
        self,
        population: ReplicaPopulation,
        catalog: VulnerabilityCatalog,
        *,
        seed: int = 0,
    ) -> None:
        self._population = population
        self._catalog = catalog
        self._rng = random.Random(seed)

    @property
    def population(self) -> ReplicaPopulation:
        return self._population

    @property
    def catalog(self) -> VulnerabilityCatalog:
        return self._catalog

    # -- core -------------------------------------------------------------------

    def run(
        self,
        vulnerability_ids: Sequence[str],
        *,
        time: Optional[float] = None,
    ) -> CampaignOutcome:
        """Exploit the given vulnerabilities and report the outcome.

        Args:
            vulnerability_ids: ids of catalog vulnerabilities to exploit.
            time: optional simulation time; vulnerabilities not yet disclosed
                at ``time`` are skipped (they cannot be exploited).
        """
        if not vulnerability_ids:
            raise FaultModelError("a campaign needs at least one vulnerability")
        exploited: list[str] = []
        compromised: set[str] = set()
        per_vulnerability: Dict[str, float] = {}
        for vuln_id in vulnerability_ids:
            vulnerability = self._catalog.get(vuln_id)
            if time is not None and not vulnerability.is_exploitable_at(time):
                per_vulnerability[vuln_id] = 0.0
                continue
            exploited.append(vuln_id)
            power = 0.0
            for replica in self._exposed_replicas(vulnerability):
                if self._exploit_succeeds(vulnerability):
                    compromised.add(replica.replica_id)
                    power += replica.power
            per_vulnerability[vuln_id] = power
        total_compromised = sum(
            self._population.power_of(replica_id) for replica_id in compromised
        )
        return CampaignOutcome(
            exploited=tuple(exploited),
            compromised_replicas=frozenset(compromised),
            compromised_power=total_compromised,
            total_power=self._population.total_power(),
            power_per_vulnerability=tuple(sorted(per_vulnerability.items())),
        )

    def run_worst_case(
        self,
        *,
        max_vulnerabilities: int = 1,
        time: Optional[float] = None,
    ) -> CampaignOutcome:
        """Exploit the ``max_vulnerabilities`` most damaging vulnerabilities.

        The attacker greedily picks vulnerabilities by exposed power, which is
        optimal when fault domains are disjoint and a good (and conventional)
        heuristic otherwise.
        """
        if max_vulnerabilities <= 0:
            raise FaultModelError(
                f"max vulnerabilities must be positive, got {max_vulnerabilities}"
            )
        ranked = self._catalog.most_damaging(
            self._population, count=max_vulnerabilities, time=time
        )
        ids = [vulnerability.vuln_id for vulnerability, _ in ranked]
        if not ids:
            raise FaultModelError("the catalog is empty; nothing to exploit")
        return self.run(ids, time=time)

    def resilience_report(
        self,
        outcome: CampaignOutcome,
        *,
        family: ProtocolFamily = ProtocolFamily.BFT,
    ) -> ResilienceReport:
        """Evaluate the Section II-C safety condition for a campaign outcome."""
        return analyze_resilience(
            self._population,
            dict(outcome.power_per_vulnerability),
            family=family,
        )

    def compromised_population(self, outcome: CampaignOutcome) -> ReplicaPopulation:
        """The sub-population of replicas the campaign compromised."""
        return self._population.filter(
            lambda replica: replica.replica_id in outcome.compromised_replicas
        )

    # -- internals -----------------------------------------------------------------

    def _exposed_replicas(self, vulnerability: Vulnerability) -> Iterable[Replica]:
        return self._population.replicas_using_component(vulnerability.component)

    def _exploit_succeeds(self, vulnerability: Vulnerability) -> bool:
        if vulnerability.exploit_probability >= 1.0:
            return True
        return self._rng.random() < vulnerability.exploit_probability


def single_vulnerability_breakdown(
    population: ReplicaPopulation,
    catalog: VulnerabilityCatalog,
    *,
    family: ProtocolFamily = ProtocolFamily.BFT,
) -> Dict[str, bool]:
    """For every vulnerability, does exploiting it alone violate safety?

    Returns a mapping vulnerability id -> "safety violated".  This is the
    clearest expression of the paper's core warning: a *single* shared fault
    can exceed ``f`` when diversity is low.
    """
    results: Dict[str, bool] = {}
    for vulnerability in catalog:
        campaign = ExploitCampaign(population, catalog)
        outcome = campaign.run([vulnerability.vuln_id])
        report = campaign.resilience_report(outcome, family=family)
        results[vulnerability.vuln_id] = not report.safe
    return results
