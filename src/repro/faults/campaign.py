"""Exploit campaigns: resolving vulnerabilities against a replica population.

A campaign turns "the attacker exploits vulnerabilities V1..Vm" into the
quantities the Section II-C safety condition needs: the set of compromised
replicas, the power compromised through each vulnerability (``f_t^i``) and
the total compromised power.  Replicas exposed to several exploited
vulnerabilities are counted once in the total (a replica cannot be "more than
Byzantine") but appear in every relevant ``f_t^i`` for reporting, mirroring
the paper's per-vulnerability accounting.

Fault domains and exposed-power reductions are resolved through an
array-backed :class:`~repro.faults.matrix.PopulationMatrix` on the compute
backend; only the per-replica Bernoulli draws of *unreliable* exploits
(``exploit_probability < 1``) remain scalar, preserving the original
``random.Random(seed)`` stream byte for byte.  For batches of thousands of
randomized campaigns use :class:`~repro.faults.engine.BatchCampaignEngine`,
which vectorizes the draws too.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional, Sequence, Tuple

from repro.backend import get_backend
from repro.backend.selection import BackendLike
from repro.core.exceptions import FaultModelError
from repro.core.population import ReplicaPopulation
from repro.core.resilience import ProtocolFamily, ResilienceReport, analyze_resilience
from repro.faults.catalog import VulnerabilityCatalog
from repro.faults.matrix import PopulationMatrix


@dataclass(frozen=True)
class CampaignOutcome:
    """Result of running an exploit campaign against a population.

    Attributes:
        exploited: ids of the vulnerabilities the attacker exploited.
        compromised_replicas: ids of replicas that became Byzantine.
        compromised_power: total voting power of the compromised replicas
            (each replica counted once even when multiply exposed).
        total_power: the population's total voting power ``n_t``.
        power_per_vulnerability: the per-vulnerability compromised power
            ``f_t^i`` (a replica exposed to several exploited vulnerabilities
            contributes to each).
    """

    exploited: Tuple[str, ...]
    compromised_replicas: FrozenSet[str]
    compromised_power: float
    total_power: float
    power_per_vulnerability: Tuple[Tuple[str, float], ...]

    @property
    def compromised_fraction(self) -> float:
        """Compromised power as a fraction of total power."""
        if self.total_power <= 0:
            return 0.0
        return self.compromised_power / self.total_power

    def violates(self, tolerated_fraction: float) -> bool:
        """True when the campaign compromises at least ``tolerated_fraction`` of power."""
        if not 0 < tolerated_fraction <= 1:
            raise FaultModelError(
                f"tolerated fraction must be in (0, 1], got {tolerated_fraction}"
            )
        return self.compromised_fraction >= tolerated_fraction - 1e-12


def reject_duplicate_vulnerability_ids(ids: Sequence[str]) -> None:
    """Usage-error guard shared by the scalar campaign and the batch engine.

    Exploiting the same vulnerability twice in one campaign would
    double-count exploit attempts against its replicas — with real
    vulnerability data that is always a typo, never an intent.
    """
    seen: set = set()
    duplicates: set = set()
    for vuln_id in ids:
        if vuln_id in seen:
            duplicates.add(vuln_id)
        seen.add(vuln_id)
    if duplicates:
        raise FaultModelError(
            f"duplicate vulnerability ids in campaign: {', '.join(sorted(duplicates))}"
        )


class ExploitCampaign:
    """Executes exploit campaigns against a replica population.

    The campaign model follows Section II-B: exploiting vulnerability ``i``
    makes every exposed replica Byzantine with the vulnerability's
    ``exploit_probability`` (independently per replica).  With the default
    probability of 1.0 the campaign is deterministic.

    The population × catalog pair is snapshotted into a
    :class:`~repro.faults.matrix.PopulationMatrix` the first time a campaign
    runs; later mutations of the population (join/leave, power updates) or
    catalog are not reflected.  Build a fresh campaign (or pass a fresh
    ``matrix``) after mutating, exactly as you would re-take a census.
    """

    def __init__(
        self,
        population: ReplicaPopulation,
        catalog: VulnerabilityCatalog,
        *,
        seed: int = 0,
        backend: BackendLike = None,
        matrix: Optional[PopulationMatrix] = None,
    ) -> None:
        self._population = population
        self._catalog = catalog
        self._rng = random.Random(seed)
        self._backend = backend
        # The matrix is built lazily (campaigns constructed for their
        # resilience_report helper never pay for it) and may be shared
        # across campaigns over the same population × catalog pair.
        self._matrix = matrix

    @property
    def population(self) -> ReplicaPopulation:
        return self._population

    @property
    def catalog(self) -> VulnerabilityCatalog:
        return self._catalog

    @property
    def matrix(self) -> PopulationMatrix:
        """The array-backed snapshot campaigns resolve against (lazy)."""
        if self._matrix is None:
            self._matrix = PopulationMatrix.build(self._population, self._catalog)
        return self._matrix

    # -- core -------------------------------------------------------------------

    def run(
        self,
        vulnerability_ids: Sequence[str],
        *,
        time: Optional[float] = None,
    ) -> CampaignOutcome:
        """Exploit the given vulnerabilities and report the outcome.

        Args:
            vulnerability_ids: ids of catalog vulnerabilities to exploit.
                Listing the same vulnerability twice is a usage error — it
                would double-count exploit attempts against its replicas.
            time: optional simulation time; vulnerabilities not yet disclosed
                at ``time`` are skipped (they cannot be exploited).
        """
        if not vulnerability_ids:
            raise FaultModelError("a campaign needs at least one vulnerability")
        ids = list(vulnerability_ids)
        reject_duplicate_vulnerability_ids(ids)
        matrix = self.matrix
        backend = get_backend(self._backend)
        exposed_power = matrix.exposed_power(backend=backend)
        powers = matrix.powers
        exploited: list[str] = []
        compromised_rows: set[int] = set()
        per_vulnerability: Dict[str, float] = {}
        for vuln_id in ids:
            vulnerability = self._catalog.get(vuln_id)
            if time is not None and not vulnerability.is_exploitable_at(time):
                per_vulnerability[vuln_id] = 0.0
                continue
            exploited.append(vuln_id)
            rows = matrix.exposed_row_indices(vuln_id)
            if vulnerability.exploit_probability >= 1.0:
                # Reliable exploit: the whole fault domain turns Byzantine
                # and f_t^i is the precomputed masked reduction.
                compromised_rows.update(rows)
                per_vulnerability[vuln_id] = exposed_power[vuln_id]
            else:
                # Flaky exploit: one Bernoulli draw per exposed replica, in
                # join order — the exact RNG stream of the scalar model.
                probability = vulnerability.exploit_probability
                power = 0.0
                for row in rows:
                    if self._rng.random() < probability:
                        compromised_rows.add(row)
                        power += powers[row]
                per_vulnerability[vuln_id] = power
        total_compromised = 0.0
        for row in sorted(compromised_rows):
            total_compromised += powers[row]
        return CampaignOutcome(
            exploited=tuple(exploited),
            compromised_replicas=frozenset(
                matrix.replica_ids[row] for row in compromised_rows
            ),
            compromised_power=total_compromised,
            total_power=matrix.total_power,
            power_per_vulnerability=tuple(sorted(per_vulnerability.items())),
        )

    def run_worst_case(
        self,
        *,
        max_vulnerabilities: int = 1,
        time: Optional[float] = None,
    ) -> CampaignOutcome:
        """Exploit the ``max_vulnerabilities`` most damaging vulnerabilities.

        The attacker greedily picks vulnerabilities by exposed power (one
        masked matrix–vector reduction), which is optimal when fault domains
        are disjoint and a good (and conventional) heuristic otherwise.
        """
        if max_vulnerabilities <= 0:
            raise FaultModelError(
                f"max vulnerabilities must be positive, got {max_vulnerabilities}"
            )
        if len(self._catalog) == 0:
            raise FaultModelError("the catalog is empty; nothing to exploit")
        ranked = self.matrix.most_damaging(
            max_vulnerabilities, backend=self._backend, time=time
        )
        return self.run([vuln_id for vuln_id, _ in ranked], time=time)

    def resilience_report(
        self,
        outcome: CampaignOutcome,
        *,
        family: ProtocolFamily = ProtocolFamily.BFT,
    ) -> ResilienceReport:
        """Evaluate the Section II-C safety condition for a campaign outcome."""
        return analyze_resilience(
            self._population,
            dict(outcome.power_per_vulnerability),
            family=family,
        )

    def compromised_population(self, outcome: CampaignOutcome) -> ReplicaPopulation:
        """The sub-population of replicas the campaign compromised."""
        return self._population.filter(
            lambda replica: replica.replica_id in outcome.compromised_replicas
        )

def single_vulnerability_breakdown(
    population: ReplicaPopulation,
    catalog: VulnerabilityCatalog,
    *,
    family: ProtocolFamily = ProtocolFamily.BFT,
) -> Dict[str, bool]:
    """For every vulnerability, does exploiting it alone violate safety?

    Returns a mapping vulnerability id -> "safety violated".  This is the
    clearest expression of the paper's core warning: a *single* shared fault
    can exceed ``f`` when diversity is low.

    The population × catalog matrix is built once and shared by every
    single-vulnerability campaign (each still gets its own fresh RNG, as the
    scalar implementation did).
    """
    matrix = PopulationMatrix.build(population, catalog)
    results: Dict[str, bool] = {}
    for vulnerability in catalog:
        campaign = ExploitCampaign(population, catalog, matrix=matrix)
        outcome = campaign.run([vulnerability.vuln_id])
        report = campaign.resilience_report(outcome, family=family)
        results[vulnerability.vuln_id] = not report.safe
    return results
