"""Fault and adversary models (Section II-B).

- :mod:`repro.faults.vulnerability` -- vulnerabilities tied to concrete
  components, with severity and exploitability.
- :mod:`repro.faults.catalog` -- a catalog of known vulnerabilities with
  queries by component / kind.
- :mod:`repro.faults.window` -- vulnerability windows: disclosure, patch
  availability and patch-adoption latency.
- :mod:`repro.faults.adversary` -- adversary strategies: exploit-based
  (shared-vulnerability) attackers, power-renting / bribery attackers and
  rational operators.
- :mod:`repro.faults.campaign` -- exploit campaigns resolving a vulnerability
  set against a replica population into compromised replicas and power
  (the ``f_t^i`` of Section II-C).
- :mod:`repro.faults.matrix` -- the array-backed replicas × vulnerabilities
  exposure matrix campaigns resolve against.
- :mod:`repro.faults.engine` -- batched randomized campaign trials on the
  compute-backend seam.
- :mod:`repro.faults.scenarios` -- parameterized campaign scenario
  generators (adversary budgets, exploit reliability, churned populations).
- :mod:`repro.faults.injection` -- fault schedules for the protocol
  simulations (which replica becomes Byzantine/crashed and when).
"""

from repro.faults.adversary import (
    AdversaryBudget,
    BriberyAdversary,
    ExploitAdversary,
    RationalOperatorAdversary,
)
from repro.faults.campaign import CampaignOutcome, ExploitCampaign
from repro.faults.catalog import VulnerabilityCatalog
from repro.faults.engine import (
    BatchCampaignEngine,
    CampaignEstimate,
    CampaignPlan,
    ShardedCampaignRun,
    merge_campaign_batches,
    run_census_trials,
    split_trial_ranges,
)
from repro.faults.injection import FaultKind, FaultSchedule, FaultSpec
from repro.faults.matrix import PopulationMatrix
from repro.faults.recovery import (
    ExposureTimeline,
    PatchRollout,
    ProactiveRecoveryPolicy,
)
from repro.faults.vulnerability import Severity, Vulnerability
from repro.faults.window import PatchState, VulnerabilityWindow

__all__ = [
    "AdversaryBudget",
    "BatchCampaignEngine",
    "BriberyAdversary",
    "CampaignEstimate",
    "CampaignOutcome",
    "CampaignPlan",
    "ExploitAdversary",
    "ExploitCampaign",
    "ExposureTimeline",
    "FaultKind",
    "FaultSchedule",
    "FaultSpec",
    "PatchRollout",
    "PatchState",
    "PopulationMatrix",
    "ProactiveRecoveryPolicy",
    "RationalOperatorAdversary",
    "Severity",
    "ShardedCampaignRun",
    "Vulnerability",
    "VulnerabilityCatalog",
    "VulnerabilityWindow",
    "merge_campaign_batches",
    "run_census_trials",
    "split_trial_ranges",
]
