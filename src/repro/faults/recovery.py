"""Proactive recovery and patch roll-out over vulnerability windows.

The paper's Remark 1 notes that faults can be detected and patched but that
attacks happen *during the vulnerability window*, and Section III-A points to
proactive-recovery protocols (PBFT-PR, SPARE, COBRA) and self-stabilization as
ways to shrink the attacker's usable window.  This module models both levers:

- :class:`PatchRollout` — after a patch is released, replicas adopt it over
  time (exponentially-staggered adoption with a configurable mean latency),
  which gradually shrinks the exposed voting power;
- :class:`ProactiveRecoveryPolicy` — replicas are rejuvenated (reimaged onto a
  clean configuration) on a rotating schedule regardless of whether a
  compromise is known, which bounds how long any exploited replica stays under
  attacker control.

Both produce *exposure timelines*: voting power exposed / compromised as a
function of time, which the vulnerability-window experiment integrates into a
"power-time" area the same way availability analyses integrate downtime.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.exceptions import FaultModelError
from repro.core.population import ReplicaPopulation
from repro.faults.vulnerability import Vulnerability


@dataclass(frozen=True)
class ExposureTimeline:
    """Exposed voting power sampled over time.

    Attributes:
        times: sample instants, ascending.
        exposed_power: voting power exposed (or compromised) at each instant.
        total_power: the population's total power, for normalization.
    """

    times: Tuple[float, ...]
    exposed_power: Tuple[float, ...]
    total_power: float

    def peak_fraction(self) -> float:
        """Largest exposed fraction over the timeline."""
        if not self.exposed_power:
            return 0.0
        return max(self.exposed_power) / self.total_power

    def exposure_area(self) -> float:
        """Integral of the exposed *fraction* over time (trapezoidal rule).

        This "fraction x time" area is the quantity both patching speed and
        proactive recovery try to minimize: how much attacker-usable
        power-time the window leaves on the table.
        """
        if len(self.times) < 2:
            return 0.0
        area = 0.0
        for (t0, p0), (t1, p1) in zip(
            zip(self.times, self.exposed_power), zip(self.times[1:], self.exposed_power[1:])
        ):
            area += (t1 - t0) * (p0 + p1) / 2.0
        return area / self.total_power

    def time_above_fraction(self, fraction: float) -> float:
        """Total time during which the exposed fraction is at least ``fraction``.

        Uses the sample grid (no interpolation), so the resolution is the
        sampling step of the timeline.
        """
        if not 0.0 <= fraction <= 1.0:
            raise FaultModelError(f"fraction must be in [0, 1], got {fraction}")
        if len(self.times) < 2:
            return 0.0
        total = 0.0
        threshold = fraction * self.total_power
        for (t0, p0), (t1, _) in zip(
            zip(self.times, self.exposed_power), zip(self.times[1:], self.exposed_power[1:])
        ):
            if p0 >= threshold - 1e-12:
                total += t1 - t0
        return total


class PatchRollout:
    """Staggered patch adoption across the exposed replicas.

    Each exposed replica adopts the patch at
    ``patch_release_time + Exp(mean_adoption_latency)`` (deterministic given
    the seed).  Before its adoption time the replica counts as exposed; after,
    it does not.
    """

    def __init__(
        self,
        population: ReplicaPopulation,
        vulnerability: Vulnerability,
        *,
        disclosure_time: float = 0.0,
        patch_release_time: float = 0.0,
        mean_adoption_latency: float = 10.0,
        seed: int = 0,
    ) -> None:
        if patch_release_time < disclosure_time:
            raise FaultModelError("the patch cannot be released before disclosure")
        if mean_adoption_latency < 0:
            raise FaultModelError(
                f"mean adoption latency must be non-negative, got {mean_adoption_latency}"
            )
        self._population = population
        self._vulnerability = vulnerability
        self._disclosure_time = disclosure_time
        self._patch_release_time = patch_release_time
        rng = random.Random(seed)
        self._adoption_time: Dict[str, float] = {}
        for replica in population.replicas_using_component(vulnerability.component):
            if mean_adoption_latency == 0:
                delay = 0.0
            else:
                delay = rng.expovariate(1.0 / mean_adoption_latency)
            self._adoption_time[replica.replica_id] = patch_release_time + delay

    @property
    def exposed_replica_ids(self) -> Tuple[str, ...]:
        """Replicas that were exposed when the vulnerability was disclosed."""
        return tuple(self._adoption_time.keys())

    def adoption_time_of(self, replica_id: str) -> Optional[float]:
        """When ``replica_id`` adopts the patch (``None`` if never exposed)."""
        return self._adoption_time.get(replica_id)

    def exposed_power_at(self, time: float) -> float:
        """Voting power still exposed at ``time``."""
        if time < self._disclosure_time:
            return 0.0
        return sum(
            self._population.power_of(replica_id)
            for replica_id, adopted_at in self._adoption_time.items()
            if time < adopted_at
        )

    def all_patched_time(self) -> float:
        """The instant at which the last exposed replica is patched."""
        if not self._adoption_time:
            return self._patch_release_time
        return max(self._adoption_time.values())

    def timeline(self, *, horizon: Optional[float] = None, samples: int = 200) -> ExposureTimeline:
        """Sample the exposed power from disclosure until ``horizon``."""
        if samples < 2:
            raise FaultModelError(f"at least 2 samples are required, got {samples}")
        end = horizon if horizon is not None else self.all_patched_time() * 1.05 + 1e-9
        if end <= self._disclosure_time:
            end = self._disclosure_time + 1.0
        step = (end - self._disclosure_time) / (samples - 1)
        times = [self._disclosure_time + index * step for index in range(samples)]
        return ExposureTimeline(
            times=tuple(times),
            exposed_power=tuple(self.exposed_power_at(t) for t in times),
            total_power=self._population.total_power(),
        )


class ProactiveRecoveryPolicy:
    """Rotating rejuvenation of replicas (PBFT-PR / SPARE-style).

    Replicas are recovered one at a time, ``recovery_period`` apart, in a
    fixed round-robin order.  A compromised replica stays compromised from the
    attack time until its next scheduled recovery, so the maximum time any
    single replica spends under attacker control is bounded by
    ``recovery_period * len(population)`` regardless of patching.
    """

    def __init__(
        self,
        population: ReplicaPopulation,
        *,
        recovery_period: float = 10.0,
        start_time: float = 0.0,
    ) -> None:
        if recovery_period <= 0:
            raise FaultModelError(
                f"recovery period must be positive, got {recovery_period}"
            )
        self._population = population
        self._period = recovery_period
        self._start = start_time
        self._order: Tuple[str, ...] = population.replica_ids()

    @property
    def rotation_length(self) -> float:
        """Time to cycle through every replica once."""
        return self._period * len(self._order)

    def next_recovery_after(self, replica_id: str, time: float) -> float:
        """The first scheduled recovery of ``replica_id`` strictly after ``time``.

        A recovery coinciding exactly with the attack instant does not count
        as cleaning that attack, so the bound is strict.
        """
        if replica_id not in self._order:
            raise FaultModelError(f"unknown replica {replica_id!r}")
        index = self._order.index(replica_id)
        first = self._start + index * self._period
        if time < first:
            return first
        cycles = int((time - first) // self.rotation_length) + 1
        return first + cycles * self.rotation_length

    def compromised_power_at(
        self, compromised_ids: Sequence[str], attack_time: float, time: float
    ) -> float:
        """Power still attacker-controlled at ``time`` given recovery rotation.

        Each compromised replica is cleaned at its first scheduled recovery
        after ``attack_time``; re-compromise after recovery is not modeled
        here (the exploit campaign can be re-run for that).
        """
        if time < attack_time:
            return 0.0
        total = 0.0
        for replica_id in compromised_ids:
            recovered_at = self.next_recovery_after(replica_id, attack_time)
            if time < recovered_at:
                total += self._population.power_of(replica_id)
        return total

    def timeline(
        self,
        compromised_ids: Sequence[str],
        *,
        attack_time: float = 0.0,
        horizon: Optional[float] = None,
        samples: int = 200,
    ) -> ExposureTimeline:
        """Sample the attacker-controlled power from the attack until ``horizon``."""
        if samples < 2:
            raise FaultModelError(f"at least 2 samples are required, got {samples}")
        end = horizon if horizon is not None else attack_time + self.rotation_length * 1.05
        step = (end - attack_time) / (samples - 1)
        times = [attack_time + index * step for index in range(samples)]
        return ExposureTimeline(
            times=tuple(times),
            exposed_power=tuple(
                self.compromised_power_at(compromised_ids, attack_time, t) for t in times
            ),
            total_power=self._population.total_power(),
        )
