"""A queryable catalog of vulnerabilities.

The catalog is the interface between the ecosystem model ("which components
exist and how popular are they") and the adversary model ("which shared flaws
can be exploited").  It supports the queries the analysis needs: all
vulnerabilities affecting a component, the most severe vulnerability per
component kind, and the exposure (voting power at risk) of each vulnerability
against a given population.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.core.configuration import ComponentKind, SoftwareComponent
from repro.core.exceptions import FaultModelError
from repro.core.population import ReplicaPopulation
from repro.faults.vulnerability import Severity, Vulnerability


class VulnerabilityCatalog:
    """An append-only collection of :class:`Vulnerability` records."""

    def __init__(self, vulnerabilities: Iterable[Vulnerability] = ()) -> None:
        self._by_id: Dict[str, Vulnerability] = {}
        for vulnerability in vulnerabilities:
            self.add(vulnerability)

    # -- mutation ---------------------------------------------------------------

    def add(self, vulnerability: Vulnerability) -> None:
        """Register a vulnerability; ids must be unique."""
        if vulnerability.vuln_id in self._by_id:
            raise FaultModelError(
                f"vulnerability {vulnerability.vuln_id!r} already in catalog"
            )
        self._by_id[vulnerability.vuln_id] = vulnerability

    def extend(self, vulnerabilities: Iterable[Vulnerability]) -> None:
        """Register several vulnerabilities."""
        for vulnerability in vulnerabilities:
            self.add(vulnerability)

    # -- queries ----------------------------------------------------------------

    def get(self, vuln_id: str) -> Vulnerability:
        """The vulnerability with ``vuln_id`` (raises when unknown)."""
        try:
            return self._by_id[vuln_id]
        except KeyError:
            raise FaultModelError(f"unknown vulnerability {vuln_id!r}") from None

    def all(self) -> Tuple[Vulnerability, ...]:
        """Every vulnerability, in insertion order."""
        return tuple(self._by_id.values())

    def ids(self) -> Tuple[str, ...]:
        return tuple(self._by_id.keys())

    def affecting_component(self, component: SoftwareComponent) -> Tuple[Vulnerability, ...]:
        """Vulnerabilities whose fault domain contains ``component``."""
        return tuple(
            vulnerability
            for vulnerability in self._by_id.values()
            if vulnerability.affects_component(component)
        )

    def for_kind(self, kind: ComponentKind) -> Tuple[Vulnerability, ...]:
        """Vulnerabilities in components of the given kind."""
        return tuple(
            vulnerability
            for vulnerability in self._by_id.values()
            if vulnerability.component_kind is kind
        )

    def exploitable_at(self, time: float) -> Tuple[Vulnerability, ...]:
        """Vulnerabilities already disclosed at simulation time ``time``."""
        return tuple(
            vulnerability
            for vulnerability in self._by_id.values()
            if vulnerability.is_exploitable_at(time)
        )

    def at_least(self, severity: Severity) -> Tuple[Vulnerability, ...]:
        """Vulnerabilities with severity greater than or equal to ``severity``."""
        return tuple(
            vulnerability
            for vulnerability in self._by_id.values()
            if vulnerability.severity.rank >= severity.rank
        )

    # -- exposure analysis --------------------------------------------------------

    def exposure(
        self,
        population: ReplicaPopulation,
        *,
        time: Optional[float] = None,
    ) -> Dict[str, float]:
        """Voting power exposed to each vulnerability against ``population``.

        The exposure of a vulnerability is the total power of replicas whose
        configuration contains the vulnerable component — the upper bound on
        ``f_t^i`` before considering exploit reliability.  When ``time`` is
        given, undisclosed vulnerabilities have exposure 0.
        """
        result: Dict[str, float] = {}
        for vulnerability in self._by_id.values():
            if time is not None and not vulnerability.is_exploitable_at(time):
                result[vulnerability.vuln_id] = 0.0
                continue
            result[vulnerability.vuln_id] = population.power_using_component(
                vulnerability.component
            )
        return result

    def most_damaging(
        self,
        population: ReplicaPopulation,
        *,
        count: int = 1,
        time: Optional[float] = None,
    ) -> List[Tuple[Vulnerability, float]]:
        """The ``count`` vulnerabilities exposing the most voting power."""
        if count < 0:
            raise FaultModelError(f"count must be non-negative, got {count}")
        exposure = self.exposure(population, time=time)
        ranked = sorted(
            self._by_id.values(),
            key=lambda vulnerability: (-exposure[vulnerability.vuln_id], vulnerability.vuln_id),
        )
        return [(vulnerability, exposure[vulnerability.vuln_id]) for vulnerability in ranked[:count]]

    # -- construction helpers ------------------------------------------------------

    @classmethod
    def one_per_component(
        cls,
        components: Iterable[SoftwareComponent],
        *,
        severity: Severity = Severity.HIGH,
        exploit_probability: float = 1.0,
    ) -> "VulnerabilityCatalog":
        """A catalog with exactly one vulnerability per given component.

        This is the worst-case assumption used by several experiments: every
        component *could* harbor an exploitable flaw, so the question becomes
        purely how much power each shared component concentrates.
        """
        catalog = cls()
        for index, component in enumerate(components):
            catalog.add(
                Vulnerability(
                    vuln_id=f"CVE-SYN-{index:04d}-{component.kind.value}-{component.name}",
                    component=component,
                    severity=severity,
                    exploit_probability=exploit_probability,
                )
            )
        return catalog

    @classmethod
    def for_population(
        cls,
        population: ReplicaPopulation,
        *,
        severity: Severity = Severity.HIGH,
        exploit_probability: float = 1.0,
    ) -> "VulnerabilityCatalog":
        """One vulnerability per distinct component appearing in ``population``."""
        seen: List[SoftwareComponent] = []
        for replica in population:
            for component in replica.configuration:
                if component not in seen:
                    seen.append(component)
        return cls.one_per_component(
            seen, severity=severity, exploit_probability=exploit_probability
        )

    # -- dunder --------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._by_id)

    def __iter__(self) -> Iterator[Vulnerability]:
        return iter(self._by_id.values())

    def __contains__(self, vuln_id: str) -> bool:
        return vuln_id in self._by_id

    def __repr__(self) -> str:
        return f"VulnerabilityCatalog(vulnerabilities={len(self)})"
