"""Batched exploit-campaign trials on the compute-backend seam.

The scalar :class:`~repro.faults.campaign.ExploitCampaign` resolves *one*
campaign at a time with per-replica Python loops.  The
:class:`BatchCampaignEngine` runs **thousands** of randomized campaigns as a
single backend kernel call (:meth:`ComputeBackend.campaign_trials`): every
trial independently re-samples which exploit attempts succeed, and the kernel
reduces the whole batch to violation counts, mean compromised fractions and
mean per-vulnerability compromised power (``f_t^i``) with masked
matrix–vector arithmetic.

Because the kernels draw from a counter-based RNG stream
(:func:`repro.backend.base.campaign_uniform`), the NumPy and pure-Python
backends produce **identical** estimates for the same seed — campaign
experiments are therefore not backend-sensitive, unlike the census-mode
Monte-Carlo estimator whose per-backend RNG streams predate this engine.

The engine also hosts the census-mode seam (:func:`run_census_trials`) the
violation-probability estimator of :mod:`repro.analysis.monte_carlo` now
routes through, so every batched trial workload in the repository enters the
backends from one module.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.backend import get_backend
from repro.backend.base import TrialBatchResult
from repro.backend.selection import BackendLike
from repro.core.distribution import ConfigurationDistribution
from repro.core.exceptions import FaultModelError
from repro.core.population import ReplicaPopulation
from repro.core.resilience import ProtocolFamily, tolerated_fault_fraction
from repro.faults.campaign import reject_duplicate_vulnerability_ids
from repro.faults.catalog import VulnerabilityCatalog
from repro.faults.matrix import PopulationMatrix


@dataclass(frozen=True)
class CampaignEstimate:
    """Aggregate result of a batch of randomized exploit campaigns.

    Attributes:
        exploited: vulnerability ids actually exploited (disclosure-gated).
        trials: number of campaign trials sampled.
        violations: trials whose compromised fraction reached the tolerance.
        violation_probability: ``violations / trials``.
        mean_compromised_fraction: mean compromised power fraction per trial.
        tolerated_fraction: the tolerance the verdicts used.
        total_power: the population's total voting power ``n_t``.
        mean_power_per_vulnerability: mean ``f_t^i`` per exploited
            vulnerability (id, power) in id order; disclosure-gated
            vulnerabilities appear with 0.0, mirroring
            ``CampaignOutcome.power_per_vulnerability``.
    """

    exploited: Tuple[str, ...]
    trials: int
    violations: int
    violation_probability: float
    mean_compromised_fraction: float
    tolerated_fraction: float
    total_power: float
    mean_power_per_vulnerability: Tuple[Tuple[str, float], ...]


class BatchCampaignEngine:
    """Runs batches of randomized exploit campaigns over a population matrix."""

    def __init__(
        self,
        population: ReplicaPopulation,
        catalog: VulnerabilityCatalog,
        *,
        backend: BackendLike = None,
        matrix: Optional[PopulationMatrix] = None,
    ) -> None:
        self._population = population
        self._catalog = catalog
        self._backend = backend
        self._matrix = matrix if matrix is not None else PopulationMatrix.build(
            population, catalog
        )

    @property
    def matrix(self) -> PopulationMatrix:
        return self._matrix

    @property
    def population(self) -> ReplicaPopulation:
        return self._population

    @property
    def catalog(self) -> VulnerabilityCatalog:
        return self._catalog

    # -- batched estimation --------------------------------------------------------

    def estimate(
        self,
        vulnerability_ids: Optional[Sequence[str]] = None,
        *,
        trials: int,
        seed: int = 0,
        family: ProtocolFamily = ProtocolFamily.BFT,
        tolerated_fraction: Optional[float] = None,
        time: Optional[float] = None,
    ) -> CampaignEstimate:
        """Sample ``trials`` randomized campaigns over the given vulnerabilities.

        Args:
            vulnerability_ids: catalog ids to exploit in every trial
                (defaults to the whole catalog).  Duplicates are a usage
                error — they would double-count exploit attempts.
            trials: number of campaigns to sample (positive).
            seed: counter-based RNG seed; identical across backends.
            family: protocol family providing the tolerance.
            tolerated_fraction: explicit tolerance override.
            time: optional simulation time; vulnerabilities not yet disclosed
                at ``time`` are skipped (reported with mean ``f_t^i`` 0.0).
        """
        if trials <= 0:
            raise FaultModelError(f"trial count must be positive, got {trials}")
        if vulnerability_ids is None:
            vulnerability_ids = self._matrix.vulnerability_ids
        ids = list(vulnerability_ids)
        if not ids:
            raise FaultModelError(
                "a campaign needs at least one vulnerability"
                if len(self._catalog)
                else "the catalog is empty; nothing to exploit"
            )
        reject_duplicate_vulnerability_ids(ids)
        tolerance = (
            tolerated_fraction
            if tolerated_fraction is not None
            else tolerated_fault_fraction(family)
        )
        if not 0.0 < tolerance <= 1.0:
            raise FaultModelError(
                f"tolerated fraction must be in (0, 1], got {tolerance}"
            )
        exploited = [
            vuln_id
            for vuln_id in ids
            if self._matrix.is_exploitable_at(vuln_id, time)
        ]
        per_vulnerability: Dict[str, float] = {vuln_id: 0.0 for vuln_id in ids}
        violations = 0
        compromised_total = 0.0
        if exploited:
            resolved = get_backend(self._backend)
            if tuple(exploited) == self._matrix.vulnerability_ids:
                # Full-catalog campaigns reuse the matrix's per-backend cache.
                exposure_array = self._matrix.exposure_array(resolved)
                probabilities = self._matrix.success_probabilities
            else:
                exposure_rows, probabilities = self._matrix.columns_for(exploited)
                exposure_array = resolved.asarray_matrix(exposure_rows)
            batch = resolved.campaign_trials(
                exposure_array,
                self._matrix.powers_array(resolved),
                probabilities,
                trials=trials,
                seed=seed,
                tolerance=tolerance,
                total_power=self._matrix.total_power,
            )
            violations = batch.violations
            compromised_total = batch.compromised_total
            for vuln_id, total in zip(exploited, batch.per_vulnerability_totals):
                per_vulnerability[vuln_id] = total / trials
        return CampaignEstimate(
            exploited=tuple(exploited),
            trials=trials,
            violations=violations,
            violation_probability=violations / trials,
            mean_compromised_fraction=compromised_total
            / (trials * self._matrix.total_power),
            tolerated_fraction=tolerance,
            total_power=self._matrix.total_power,
            mean_power_per_vulnerability=tuple(sorted(per_vulnerability.items())),
        )

    def estimate_worst_case(
        self,
        *,
        max_vulnerabilities: int = 1,
        trials: int,
        seed: int = 0,
        family: ProtocolFamily = ProtocolFamily.BFT,
        tolerated_fraction: Optional[float] = None,
        time: Optional[float] = None,
    ) -> CampaignEstimate:
        """Batched trials against the ``max_vulnerabilities`` biggest exposures.

        Target selection matches ``ExploitCampaign.run_worst_case`` (greedy
        by exposed power, id tie-break); only the per-trial exploit outcomes
        are randomized.
        """
        if max_vulnerabilities <= 0:
            raise FaultModelError(
                f"max vulnerabilities must be positive, got {max_vulnerabilities}"
            )
        if len(self._catalog) == 0:
            raise FaultModelError("the catalog is empty; nothing to exploit")
        ranked = self._matrix.most_damaging(
            max_vulnerabilities, backend=self._backend, time=time
        )
        return self.estimate(
            [vuln_id for vuln_id, _ in ranked],
            trials=trials,
            seed=seed,
            family=family,
            tolerated_fraction=tolerated_fraction,
            time=time,
        )


def run_census_trials(
    census: ConfigurationDistribution,
    *,
    vulnerability_probability: float,
    exploit_budget: int,
    trials: int,
    seed: int,
    tolerance: float,
    backend: BackendLike = None,
) -> TrialBatchResult:
    """Census-mode batched trials (the PR-1 Monte-Carlo kernel).

    Treats every configuration as one independent fault domain and exploits
    the ``exploit_budget`` largest vulnerable shares per trial — the
    estimator :mod:`repro.analysis.monte_carlo` wraps.  Kept here so all
    batched trial workloads enter the backends through the campaign engine;
    the per-backend RNG streams (and therefore every golden snapshot) are
    unchanged.
    """
    resolved = get_backend(backend)
    return resolved.violation_trials(
        census.sorted_probabilities_array(resolved),
        vulnerability_probability=vulnerability_probability,
        exploit_budget=exploit_budget,
        trials=trials,
        seed=seed,
        tolerance=tolerance,
    )
