"""Batched exploit-campaign trials on the compute-backend seam.

The scalar :class:`~repro.faults.campaign.ExploitCampaign` resolves *one*
campaign at a time with per-replica Python loops.  The
:class:`BatchCampaignEngine` runs **thousands** of randomized campaigns as a
single backend kernel call (:meth:`ComputeBackend.campaign_trials`): every
trial independently re-samples which exploit attempts succeed, and the kernel
reduces the whole batch to violation counts, mean compromised fractions and
mean per-vulnerability compromised power (``f_t^i``) with masked
matrix–vector arithmetic.

Because the kernels draw from a counter-based RNG stream
(:func:`repro.backend.base.campaign_uniform`), the NumPy and pure-Python
backends produce **identical** estimates for the same seed — campaign
experiments are therefore not backend-sensitive, unlike the census-mode
Monte-Carlo estimator whose per-backend RNG streams predate this engine.

The engine also hosts the census-mode seam (:func:`run_census_trials`) the
violation-probability estimator of :mod:`repro.analysis.monte_carlo` now
routes through, so every batched trial workload in the repository enters the
backends from one module.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.backend import get_backend
from repro.backend.base import (
    CampaignBatchResult,
    CampaignGridPoint,
    CampaignGridPointResult,
    ResolvedGridPoint,
    SparseExposure,
    TrialBatchResult,
    finalize_sparse_point,
    merge_sparse_partials,
)
from repro.backend.selection import BackendLike
from repro.backend.timing import timed_kernel
from repro.core.distribution import ConfigurationDistribution
from repro.core.exceptions import FaultModelError
from repro.core.population import ReplicaPopulation
from repro.core.resilience import ProtocolFamily, tolerated_fault_fraction
from repro.faults.campaign import reject_duplicate_vulnerability_ids
from repro.faults.catalog import VulnerabilityCatalog
from repro.faults.matrix import PopulationMatrix
from repro.testing.chaos import chaos_checkpoint


#: Default replica-range chunk for sparse campaigns: the engines never hand a
#: backend more than this many CSR rows per kernel call, so peak working
#: memory is bounded by the chunk, not the population.  The sparse stream
#: contract's global row counter makes chunk boundaries invisible — chunked
#: results equal unchunked results bit for bit (dyadic-power caveat on the
#: float totals, exact for every shipped scenario).
DEFAULT_CAMPAIGN_CHUNK_ROWS = 1 << 18


def _run_sparse_grid(
    backend,
    sparse: SparseExposure,
    points: Sequence[ResolvedGridPoint],
    *,
    trials: int,
    trial_offset: int,
    chunk_rows: int,
    total_power: float,
) -> Tuple[CampaignGridPointResult, ...]:
    """Row-chunked sparse evaluation of already-resolved grid points.

    Splits the CSR rows into ``chunk_rows`` ranges, collects each range's
    partial sums per point (every chunk draws exactly its slice of the full
    counter stream via ``row_offset``/``total_rows``), merges the partials in
    ascending row order, and only then applies the per-trial verdicts — a
    trial's compromised fraction couples all rows, so verdicts cannot be
    taken per chunk.
    """
    if total_power <= 0:
        from repro.core.exceptions import BackendError

        raise BackendError(f"total power must be positive, got {total_power}")
    total_rows = sparse.replica_count
    step = max(1, chunk_rows)
    chunks = []
    for start in range(0, total_rows, step):
        stop = min(start + step, total_rows)
        piece = (
            sparse if stop - start == total_rows else sparse.row_slice(start, stop)
        )
        with timed_kernel(
            "sparse_campaign_partials", trials=trials * len(points)
        ):
            chunks.append(
                backend.sparse_grid_partials(
                    piece,
                    points,
                    trials=trials,
                    trial_offset=trial_offset,
                    row_offset=start,
                    total_rows=total_rows,
                )
            )
    merged = merge_sparse_partials(chunks)
    return tuple(
        finalize_sparse_point(
            partial,
            trials=trials,
            columns=point.columns,
            tolerances=point.tolerances,
            total_power=total_power,
        )
        for point, partial in zip(points, merged)
    )


def _run_sparse_campaign(
    backend,
    sparse: SparseExposure,
    *,
    trials: int,
    seed: int,
    tolerance: float,
    total_power: float,
    trial_offset: int,
    chunk_rows: int,
) -> CampaignBatchResult:
    """Row-chunked sparse equivalent of one ``campaign_trials`` kernel call."""
    point = ResolvedGridPoint(
        columns=tuple(range(sparse.column_count)),
        probabilities=tuple(float(p) for p in sparse.success_probabilities),
        tolerances=(tolerance,),
        seed=seed,
    )
    result = _run_sparse_grid(
        backend,
        sparse,
        (point,),
        trials=trials,
        trial_offset=trial_offset,
        chunk_rows=chunk_rows,
        total_power=total_power,
    )[0]
    return CampaignBatchResult(
        trials=trials,
        violations=result.violations[0],
        compromised_total=result.compromised_total,
        per_vulnerability_totals=result.per_vulnerability_totals,
    )


@dataclass(frozen=True)
class CampaignEstimate:
    """Aggregate result of a batch of randomized exploit campaigns.

    Attributes:
        exploited: vulnerability ids actually exploited (disclosure-gated).
        trials: number of campaign trials sampled.
        violations: trials whose compromised fraction reached the tolerance.
        violation_probability: ``violations / trials``.
        mean_compromised_fraction: mean compromised power fraction per trial.
        tolerated_fraction: the tolerance the verdicts used.
        total_power: the population's total voting power ``n_t``.
        mean_power_per_vulnerability: mean ``f_t^i`` per exploited
            vulnerability (id, power) in id order; disclosure-gated
            vulnerabilities appear with 0.0, mirroring
            ``CampaignOutcome.power_per_vulnerability``.
    """

    exploited: Tuple[str, ...]
    trials: int
    violations: int
    violation_probability: float
    mean_compromised_fraction: float
    tolerated_fraction: float
    total_power: float
    mean_power_per_vulnerability: Tuple[Tuple[str, float], ...]


@dataclass(frozen=True)
class CampaignPlan:
    """Validated campaign targets: requested ids, exploitable subset, tolerance."""

    ids: Tuple[str, ...]
    exploited: Tuple[str, ...]
    tolerance: float


class BatchCampaignEngine:
    """Runs batches of randomized exploit campaigns over a population matrix."""

    def __init__(
        self,
        population: Optional[ReplicaPopulation],
        catalog: Optional[VulnerabilityCatalog],
        *,
        backend: BackendLike = None,
        matrix: Optional[PopulationMatrix] = None,
        chunk_rows: int = DEFAULT_CAMPAIGN_CHUNK_ROWS,
    ) -> None:
        if chunk_rows <= 0:
            raise FaultModelError(
                f"chunk row count must be positive, got {chunk_rows}"
            )
        if matrix is None:
            if population is None or catalog is None:
                raise FaultModelError(
                    "an engine without a population and catalog needs an "
                    "explicit matrix; use from_matrix()"
                )
            matrix = PopulationMatrix.build(population, catalog)
        self._population = population
        self._catalog = catalog
        self._backend = backend
        self._matrix = matrix
        self._chunk_rows = chunk_rows

    @classmethod
    def from_matrix(
        cls,
        matrix: PopulationMatrix,
        *,
        backend: BackendLike = None,
        chunk_rows: int = DEFAULT_CAMPAIGN_CHUNK_ROWS,
    ) -> "BatchCampaignEngine":
        """Engine over a pre-built matrix (e.g. a streamed sparse build).

        Matrices built from replica chunks have no live population or
        catalog object; planning falls back to the matrix's own
        vulnerability vectors, and results are identical to an engine built
        from the originating population/catalog pair.
        """
        return cls(
            None, None, backend=backend, matrix=matrix, chunk_rows=chunk_rows
        )

    def _catalog_size(self) -> int:
        """Vulnerability count for validation messages (catalog may be absent)."""
        if self._catalog is not None:
            return len(self._catalog)
        return self._matrix.vulnerability_count

    @property
    def matrix(self) -> PopulationMatrix:
        return self._matrix

    @property
    def population(self) -> Optional[ReplicaPopulation]:
        return self._population

    @property
    def catalog(self) -> Optional[VulnerabilityCatalog]:
        return self._catalog

    # -- batched estimation --------------------------------------------------------

    def estimate(
        self,
        vulnerability_ids: Optional[Sequence[str]] = None,
        *,
        trials: int,
        seed: int = 0,
        family: ProtocolFamily = ProtocolFamily.BFT,
        tolerated_fraction: Optional[float] = None,
        time: Optional[float] = None,
    ) -> CampaignEstimate:
        """Sample ``trials`` randomized campaigns over the given vulnerabilities.

        Args:
            vulnerability_ids: catalog ids to exploit in every trial
                (defaults to the whole catalog).  Duplicates are a usage
                error — they would double-count exploit attempts.
            trials: number of campaigns to sample (positive).
            seed: counter-based RNG seed; identical across backends.
            family: protocol family providing the tolerance.
            tolerated_fraction: explicit tolerance override.
            time: optional simulation time; vulnerabilities not yet disclosed
                at ``time`` are skipped (reported with mean ``f_t^i`` 0.0).
        """
        plan = self._plan(
            vulnerability_ids,
            trials=trials,
            family=family,
            tolerated_fraction=tolerated_fraction,
            time=time,
        )
        batch: Optional[CampaignBatchResult] = None
        if plan.exploited:
            resolved = get_backend(self._backend)
            if self._matrix.is_sparse:
                sparse = (
                    self._matrix.sparse_exposure()
                    if plan.exploited == self._matrix.vulnerability_ids
                    else self._matrix.sparse_columns_for(plan.exploited)
                )
                batch = _run_sparse_campaign(
                    resolved,
                    sparse,
                    trials=trials,
                    seed=seed,
                    tolerance=plan.tolerance,
                    total_power=self._matrix.total_power,
                    trial_offset=0,
                    chunk_rows=self._chunk_rows,
                )
                return self._finalize(plan, trials, batch)
            if plan.exploited == self._matrix.vulnerability_ids:
                # Full-catalog campaigns reuse the matrix's per-backend cache.
                exposure_array = self._matrix.exposure_array(resolved)
                probabilities = self._matrix.success_probabilities
            else:
                exposure_rows, probabilities = self._matrix.columns_for(plan.exploited)
                exposure_array = resolved.asarray_matrix(exposure_rows)
            with timed_kernel("campaign_trials", trials=trials):
                batch = resolved.campaign_trials(
                    exposure_array,
                    self._matrix.powers_array(resolved),
                    probabilities,
                    trials=trials,
                    seed=seed,
                    tolerance=plan.tolerance,
                    total_power=self._matrix.total_power,
                )
        return self._finalize(plan, trials, batch)

    def _plan(
        self,
        vulnerability_ids: Optional[Sequence[str]],
        *,
        trials: int,
        family: ProtocolFamily,
        tolerated_fraction: Optional[float],
        time: Optional[float],
    ) -> "CampaignPlan":
        """Validate arguments and resolve targets; shared by serial & sharded runs."""
        if trials <= 0:
            raise FaultModelError(f"trial count must be positive, got {trials}")
        if vulnerability_ids is None:
            vulnerability_ids = self._matrix.vulnerability_ids
        ids = list(vulnerability_ids)
        if not ids:
            raise FaultModelError(
                "a campaign needs at least one vulnerability"
                if self._catalog_size()
                else "the catalog is empty; nothing to exploit"
            )
        reject_duplicate_vulnerability_ids(ids)
        tolerance = (
            tolerated_fraction
            if tolerated_fraction is not None
            else tolerated_fault_fraction(family)
        )
        if not 0.0 < tolerance <= 1.0:
            raise FaultModelError(
                f"tolerated fraction must be in (0, 1], got {tolerance}"
            )
        exploited = tuple(
            vuln_id
            for vuln_id in ids
            if self._matrix.is_exploitable_at(vuln_id, time)
        )
        return CampaignPlan(ids=tuple(ids), exploited=exploited, tolerance=tolerance)

    def _finalize(
        self,
        plan: "CampaignPlan",
        trials: int,
        batch: Optional[CampaignBatchResult],
    ) -> CampaignEstimate:
        """Reduce a (possibly merged) kernel batch to a :class:`CampaignEstimate`."""
        per_vulnerability: Dict[str, float] = {vuln_id: 0.0 for vuln_id in plan.ids}
        violations = 0
        compromised_total = 0.0
        if batch is not None:
            violations = batch.violations
            compromised_total = batch.compromised_total
            for vuln_id, total in zip(plan.exploited, batch.per_vulnerability_totals):
                per_vulnerability[vuln_id] = total / trials
        return CampaignEstimate(
            exploited=plan.exploited,
            trials=trials,
            violations=violations,
            violation_probability=violations / trials,
            mean_compromised_fraction=compromised_total
            / (trials * self._matrix.total_power),
            tolerated_fraction=plan.tolerance,
            total_power=self._matrix.total_power,
            mean_power_per_vulnerability=tuple(sorted(per_vulnerability.items())),
        )

    def estimate_worst_case(
        self,
        *,
        max_vulnerabilities: int = 1,
        trials: int,
        seed: int = 0,
        family: ProtocolFamily = ProtocolFamily.BFT,
        tolerated_fraction: Optional[float] = None,
        time: Optional[float] = None,
    ) -> CampaignEstimate:
        """Batched trials against the ``max_vulnerabilities`` biggest exposures.

        Target selection matches ``ExploitCampaign.run_worst_case`` (greedy
        by exposed power, id tie-break); only the per-trial exploit outcomes
        are randomized.
        """
        if max_vulnerabilities <= 0:
            raise FaultModelError(
                f"max vulnerabilities must be positive, got {max_vulnerabilities}"
            )
        if self._catalog_size() == 0:
            raise FaultModelError("the catalog is empty; nothing to exploit")
        ranked = self._matrix.most_damaging(
            max_vulnerabilities, backend=self._backend, time=time
        )
        return self.estimate(
            [vuln_id for vuln_id, _ in ranked],
            trials=trials,
            seed=seed,
            family=family,
            tolerated_fraction=tolerated_fraction,
            time=time,
        )


# -- sharded campaign runs ----------------------------------------------------


def split_trial_ranges(trials: int, shards: int) -> Tuple[Tuple[int, int], ...]:
    """Split ``trials`` into ``shards`` contiguous ``(offset, count)`` ranges.

    The first ``trials % shards`` ranges are one trial longer; empty ranges
    are dropped (sharding 5 trials 8 ways yields 5 ranges).  Because the
    campaign kernels are counter-based, a shard computing its range with
    ``trial_offset=offset`` draws exactly the uniforms the serial run draws
    for those trials — the ranges partition the serial trial sequence.
    """
    if trials <= 0:
        raise FaultModelError(f"trial count must be positive, got {trials}")
    if shards <= 0:
        raise FaultModelError(f"shard count must be positive, got {shards}")
    base, remainder = divmod(trials, shards)
    ranges: List[Tuple[int, int]] = []
    offset = 0
    for shard in range(shards):
        count = base + (1 if shard < remainder else 0)
        if count == 0:
            continue
        ranges.append((offset, count))
        offset += count
    return tuple(ranges)


def merge_campaign_batches(
    batches: Sequence[CampaignBatchResult],
) -> CampaignBatchResult:
    """Sum shard results back into the serial run's :class:`CampaignBatchResult`.

    Violation and trial counts are integers, so their sums are always exact.
    The power totals are float sums; summing shards in offset order matches
    the serial accumulation bit-for-bit whenever the per-trial contributions
    are dyadic rationals (every shipped scenario uses power 1.0 per replica),
    and to float tolerance otherwise.
    """
    if not batches:
        raise FaultModelError("cannot merge zero campaign batches")
    widths = {len(batch.per_vulnerability_totals) for batch in batches}
    if len(widths) != 1:
        raise FaultModelError(
            f"campaign batches disagree on vulnerability count: {sorted(widths)}"
        )
    per_vulnerability = [0.0] * widths.pop()
    trials = 0
    violations = 0
    compromised_total = 0.0
    for batch in batches:
        trials += batch.trials
        violations += batch.violations
        compromised_total += batch.compromised_total
        for column, total in enumerate(batch.per_vulnerability_totals):
            per_vulnerability[column] += total
    return CampaignBatchResult(
        trials=trials,
        violations=violations,
        compromised_total=compromised_total,
        per_vulnerability_totals=tuple(per_vulnerability),
    )


def _campaign_shard_worker(
    backend_name: str,
    exposure_rows: Tuple[Tuple[float, ...], ...],
    powers: Tuple[float, ...],
    success_probabilities: Tuple[float, ...],
    trials: int,
    seed: int,
    tolerance: float,
    total_power: float,
    trial_offset: int,
) -> Dict[str, Any]:
    """Pool-worker entry: one shard's trials as plain JSON-safe data.

    Arguments are primitives (no engine, no matrix) so any executor can
    carry them across a process boundary, and the return value is a plain
    dict for the same reason.
    """
    chaos_checkpoint("task", key=f"campaign-shard:{trial_offset}+{trials}")
    resolved = get_backend(backend_name)
    with timed_kernel("campaign_trials", trials=trials):
        batch = resolved.campaign_trials(
            resolved.asarray_matrix(exposure_rows),
            resolved.asarray(powers),
            success_probabilities,
            trials=trials,
            seed=seed,
            tolerance=tolerance,
            total_power=total_power,
            trial_offset=trial_offset,
        )
    return {
        "trials": batch.trials,
        "violations": batch.violations,
        "compromised_total": batch.compromised_total,
        "per_vulnerability_totals": list(batch.per_vulnerability_totals),
    }


def _sparse_campaign_shard_worker(
    backend_name: str,
    sparse: SparseExposure,
    trials: int,
    seed: int,
    tolerance: float,
    total_power: float,
    trial_offset: int,
    chunk_rows: int,
) -> Dict[str, Any]:
    """Pool-worker entry: one sparse shard's trials from a CSR exposure.

    The :class:`SparseExposure` pickles compactly (stdlib ``array`` buffers)
    across a process boundary, carrying its cached validation with it; the
    return value mirrors :func:`_campaign_shard_worker`'s plain dict.
    """
    chaos_checkpoint("task", key=f"campaign-shard:{trial_offset}+{trials}")
    resolved = get_backend(backend_name)
    batch = _run_sparse_campaign(
        resolved,
        sparse.validate(),
        trials=trials,
        seed=seed,
        tolerance=tolerance,
        total_power=total_power,
        trial_offset=trial_offset,
        chunk_rows=chunk_rows,
    )
    return {
        "trials": batch.trials,
        "violations": batch.violations,
        "compromised_total": batch.compromised_total,
        "per_vulnerability_totals": list(batch.per_vulnerability_totals),
    }


class ShardedCampaignRun:
    """Fan a campaign's trial range out over resilient pool workers.

    Wraps a :class:`BatchCampaignEngine` and produces the **same**
    :class:`CampaignEstimate` as ``engine.estimate(...)`` — bit-identical
    under the dyadic-power caveat of :func:`merge_campaign_batches` — by
    splitting the trial range into contiguous shards, running each shard as
    an independent pool task with ``trial_offset`` pinning its slice of the
    counter-based RNG stream, and summing the shard batches in offset order.

    Shards run on a :class:`ResilientExecutor`, so a worker crash, hang or
    injected fault re-dispatches only the lost shard; because a shard's
    result depends only on ``(seed, offset, count)``, the retried shard is
    bit-identical to what the lost attempt would have produced and worker
    loss cannot change a single number.

    Args:
        engine: the campaign engine whose population/catalog to sample.
        max_workers: shard count **and** pool width (default 2).
        task_timeout: per-shard deadline (seconds); hung workers are
            terminated and the shard retried.
        retries: re-dispatches allowed per shard.
        executor: override the executor (tests inject thread-backed pools);
            when given the run does not shut it down.
    """

    def __init__(
        self,
        engine: BatchCampaignEngine,
        *,
        max_workers: int = 2,
        task_timeout: Optional[float] = None,
        retries: int = 2,
        executor: Optional[Any] = None,
    ) -> None:
        if max_workers <= 0:
            raise FaultModelError(
                f"worker count must be positive, got {max_workers}"
            )
        self._engine = engine
        self._max_workers = max_workers
        self._task_timeout = task_timeout
        self._retries = retries
        self._executor = executor

    def estimate(
        self,
        vulnerability_ids: Optional[Sequence[str]] = None,
        *,
        trials: int,
        seed: int = 0,
        family: ProtocolFamily = ProtocolFamily.BFT,
        tolerated_fraction: Optional[float] = None,
        time: Optional[float] = None,
    ) -> CampaignEstimate:
        """Sharded equivalent of :meth:`BatchCampaignEngine.estimate`."""
        from repro.experiments.orchestrator.resilient import ResilientExecutor

        engine = self._engine
        plan = engine._plan(
            vulnerability_ids,
            trials=trials,
            family=family,
            tolerated_fraction=tolerated_fraction,
            time=time,
        )
        if not plan.exploited:
            return engine._finalize(plan, trials, None)
        matrix = engine.matrix
        sparse: Optional[SparseExposure] = None
        if matrix.is_sparse:
            sparse = (
                matrix.sparse_exposure()
                if plan.exploited == matrix.vulnerability_ids
                else matrix.sparse_columns_for(plan.exploited)
            )
        else:
            exposure_rows, probabilities = matrix.columns_for(plan.exploited)
        backend_name = get_backend(engine._backend).name
        ranges = split_trial_ranges(trials, self._max_workers)
        owned = self._executor is None
        pool = (
            ResilientExecutor(
                max_workers=self._max_workers,
                deadline=self._task_timeout,
                retries=self._retries,
            )
            if owned
            else self._executor
        )
        try:
            if sparse is not None:
                futures = [
                    pool.submit(
                        _sparse_campaign_shard_worker,
                        backend_name,
                        sparse,
                        count,
                        seed,
                        plan.tolerance,
                        matrix.total_power,
                        offset,
                        engine._chunk_rows,
                    )
                    for offset, count in ranges
                ]
            else:
                futures = [
                    pool.submit(
                        _campaign_shard_worker,
                        backend_name,
                        exposure_rows,
                        matrix.powers,
                        probabilities,
                        count,
                        seed,
                        plan.tolerance,
                        matrix.total_power,
                        offset,
                    )
                    for offset, count in ranges
                ]
            batches = [
                CampaignBatchResult(
                    trials=payload["trials"],
                    violations=payload["violations"],
                    compromised_total=payload["compromised_total"],
                    per_vulnerability_totals=tuple(
                        payload["per_vulnerability_totals"]
                    ),
                )
                for payload in (future.result() for future in futures)
            ]
        finally:
            if owned:
                pool.shutdown(wait=True, cancel_futures=True)
        return engine._finalize(plan, trials, merge_campaign_batches(batches))


# -- fused grid campaigns ------------------------------------------------------


#: Default bound on (grid points × replicas × columns × chunk trials) cells a
#: single fused kernel call may cover; larger grids split the trial range into
#: chunks under this cap, invisibly to results (``trial_offset`` pins every
#: chunk's slice of the counter-based stream).  Peak *memory* is bounded by
#: the kernels themselves (they stream trials through fixed-size internal
#: buffers), so the default is generous — the cap mainly keeps a pathological
#: grid from monopolizing one kernel call, and tests/shards lower it to
#: exercise the chunk seam.
DEFAULT_GRID_CHUNK_CELLS = 400_000_000


@dataclass(frozen=True)
class GridPointRequest:
    """One engine-level grid point: targets, verdicts and per-point knobs.

    Attributes:
        tolerances: compromised-power fractions evaluated as verdicts on the
            same sampled trials (a BFT/majority pair costs one exploit draw).
        vulnerability_ids: explicit catalog ids to exploit, in selection
            order (mutually exclusive with ``worst_case``).
        worst_case: exploit the ``worst_case`` most damaging vulnerabilities
            (greedy by exposed power, id tie-break — the same selection as
            :meth:`BatchCampaignEngine.estimate_worst_case`).
        success_probability: override every exploited vulnerability's
            success probability at this point (how a reliability sweep
            varies one knob without re-cataloging).
        seed_offset: the point's RNG seed is ``grid seed + seed_offset``;
            matching the per-point ``seed + index`` convention of the looped
            sweeps keeps fused results bit-identical to them.
    """

    tolerances: Tuple[float, ...]
    vulnerability_ids: Optional[Tuple[str, ...]] = None
    worst_case: Optional[int] = None
    success_probability: Optional[float] = None
    seed_offset: int = 0


@dataclass(frozen=True)
class _GridPlan:
    """A validated grid point: requested ids, gated targets, matrix columns."""

    ids: Tuple[str, ...]
    exploited: Tuple[str, ...]
    columns: Tuple[int, ...]
    tolerances: Tuple[float, ...]
    success_probability: Optional[float]
    seed_offset: int


@dataclass(frozen=True)
class GridPointEstimate:
    """One grid point's estimates at every requested tolerance.

    The per-draw quantities (``mean_compromised_fraction``,
    ``mean_power_per_vulnerability``) are tolerance-independent — all
    tolerances judge the same sampled campaigns.
    """

    ids: Tuple[str, ...]
    exploited: Tuple[str, ...]
    trials: int
    tolerances: Tuple[float, ...]
    violations: Tuple[int, ...]
    violation_probabilities: Tuple[float, ...]
    mean_compromised_fraction: float
    total_power: float
    mean_power_per_vulnerability: Tuple[Tuple[str, float], ...]

    def estimate_at(self, index: int) -> CampaignEstimate:
        """This point's verdict at ``tolerances[index]`` as a :class:`CampaignEstimate`.

        Field-for-field what :meth:`BatchCampaignEngine.estimate` returns for
        the same targets, seed and tolerance — the adapter the re-plumbed
        sweep experiments build their rows from.
        """
        return CampaignEstimate(
            exploited=self.exploited,
            trials=self.trials,
            violations=self.violations[index],
            violation_probability=self.violation_probabilities[index],
            mean_compromised_fraction=self.mean_compromised_fraction,
            tolerated_fraction=self.tolerances[index],
            total_power=self.total_power,
            mean_power_per_vulnerability=self.mean_power_per_vulnerability,
        )


def merge_campaign_grid_batches(
    batches: Sequence[Sequence[CampaignGridPointResult]],
) -> Tuple[CampaignGridPointResult, ...]:
    """Sum per-chunk (or per-shard) grid results point by point.

    Counts are exact; float totals merge under the same dyadic-power caveat
    as :func:`merge_campaign_batches`.  All batches must describe the same
    grid (same point count, columns and tolerance widths).
    """
    if not batches:
        raise FaultModelError("cannot merge zero grid batches")
    first = batches[0]
    for other in batches[1:]:
        if len(other) != len(first):
            raise FaultModelError(
                f"grid batches disagree on point count: {len(first)} != {len(other)}"
            )
        for left, right in zip(first, other):
            if left.columns != right.columns or len(left.violations) != len(
                right.violations
            ):
                raise FaultModelError(
                    "grid batches disagree on a point's columns or tolerances"
                )
    merged = []
    for index, point in enumerate(first):
        trials = sum(batch[index].trials for batch in batches)
        violations = tuple(
            sum(batch[index].violations[k] for batch in batches)
            for k in range(len(point.violations))
        )
        compromised_total = 0.0
        per_vulnerability = [0.0] * len(point.per_vulnerability_totals)
        for batch in batches:
            compromised_total += batch[index].compromised_total
            for column, total in enumerate(batch[index].per_vulnerability_totals):
                per_vulnerability[column] += total
        merged.append(
            CampaignGridPointResult(
                trials=trials,
                columns=point.columns,
                violations=violations,
                compromised_total=compromised_total,
                per_vulnerability_totals=tuple(per_vulnerability),
            )
        )
    return tuple(merged)


def _resolve_sparse_plan_points(
    matrix: PopulationMatrix,
    plans: Sequence["_GridPlan"],
    seed: int,
) -> Tuple[ResolvedGridPoint, ...]:
    """Turn validated grid plans into explicit sparse kernel points.

    Mirrors :func:`repro.backend.base.resolve_grid_points` for plans the
    engine already gated and column-resolved: matrix-wide probabilities
    unless the plan overrides them, per-point seed ``seed + seed_offset``.
    """
    probabilities = matrix.success_probabilities
    return tuple(
        ResolvedGridPoint(
            columns=plan.columns,
            probabilities=(
                (float(plan.success_probability),) * len(plan.columns)
                if plan.success_probability is not None
                else tuple(probabilities[column] for column in plan.columns)
            ),
            tolerances=plan.tolerances,
            seed=seed + plan.seed_offset,
        )
        for plan in plans
    )


class GridCampaignEngine:
    """Runs whole scenario grids as fused backend kernel calls.

    Where :class:`BatchCampaignEngine` issues one ``campaign_trials`` call
    per (scenario point, tolerance), this engine stages the shared exposure
    matrix once and hands the backend the entire grid
    (:meth:`ComputeBackend.campaign_grid`): trials × points in one call,
    multi-tolerance verdicts on shared draws, and per-point sub-streams
    bit-identical to the looped path for the same seeds.

    Large grids run row-chunked: the trial range is split so
    ``points × replicas × columns × chunk_trials`` stays under
    ``max_chunk_cells``, and ``trial_offset`` makes chunk boundaries
    invisible to every number.  ``dtype``/``topk`` select the opt-in fast
    paths (tolerance-pinned, not byte-pinned — leave at defaults whenever
    results feed golden-pinned experiments).
    """

    def __init__(
        self,
        population: Optional[ReplicaPopulation],
        catalog: Optional[VulnerabilityCatalog],
        *,
        backend: BackendLike = None,
        matrix: Optional[PopulationMatrix] = None,
        dtype: str = "float64",
        topk: str = "sort",
        max_chunk_cells: int = DEFAULT_GRID_CHUNK_CELLS,
        chunk_rows: int = DEFAULT_CAMPAIGN_CHUNK_ROWS,
    ) -> None:
        if max_chunk_cells <= 0:
            raise FaultModelError(
                f"chunk cell budget must be positive, got {max_chunk_cells}"
            )
        if chunk_rows <= 0:
            raise FaultModelError(
                f"chunk row count must be positive, got {chunk_rows}"
            )
        if matrix is None:
            if population is None or catalog is None:
                raise FaultModelError(
                    "an engine without a population and catalog needs an "
                    "explicit matrix; use from_matrix()"
                )
            matrix = PopulationMatrix.build(population, catalog)
        self._population = population
        self._catalog = catalog
        self._backend = backend
        self._matrix = matrix
        self._dtype = dtype
        self._topk = topk
        self._max_chunk_cells = max_chunk_cells
        self._chunk_rows = chunk_rows
        self._last_chunk_count = 0

    @classmethod
    def from_matrix(
        cls,
        matrix: PopulationMatrix,
        *,
        backend: BackendLike = None,
        dtype: str = "float64",
        topk: str = "sort",
        max_chunk_cells: int = DEFAULT_GRID_CHUNK_CELLS,
        chunk_rows: int = DEFAULT_CAMPAIGN_CHUNK_ROWS,
    ) -> "GridCampaignEngine":
        """Grid engine over a pre-built matrix (e.g. a streamed sparse build)."""
        return cls(
            None,
            None,
            backend=backend,
            matrix=matrix,
            dtype=dtype,
            topk=topk,
            max_chunk_cells=max_chunk_cells,
            chunk_rows=chunk_rows,
        )

    def _catalog_size(self) -> int:
        """Vulnerability count for validation messages (catalog may be absent)."""
        if self._catalog is not None:
            return len(self._catalog)
        return self._matrix.vulnerability_count

    @property
    def matrix(self) -> PopulationMatrix:
        return self._matrix

    @property
    def last_chunk_count(self) -> int:
        """How many chunks the most recent :meth:`estimate_grid` used.

        Trial-range chunks on the dense path, replica-range chunks on the
        sparse path — either way the count of kernel passes over the grid.
        """
        return self._last_chunk_count

    def chunk_trials_for(self, requests: Sequence["GridPointRequest"], *, trials: int) -> int:
        """The per-chunk trial count :meth:`estimate_grid` would use."""
        plans = self._plan_grid(requests, trials=trials, time=None)
        return self._chunk_trials(plans)

    def estimate_grid(
        self,
        requests: Sequence["GridPointRequest"],
        *,
        trials: int,
        seed: int = 0,
        time: Optional[float] = None,
    ) -> Tuple[GridPointEstimate, ...]:
        """Estimate every grid point's violation probabilities in one sweep.

        Args:
            requests: the grid points (validated; an empty grid, duplicate
                ids within a point, or out-of-range parameters raise
                :class:`FaultModelError`).
            trials: campaigns sampled per point (positive).
            seed: grid-level RNG seed; point ``i`` draws from
                ``seed + requests[i].seed_offset``.
            time: disclosure gate applied to target selection and
                exploitability, as in :meth:`BatchCampaignEngine.estimate`.
        """
        plans = self._plan_grid(requests, trials=trials, time=time)
        active = [plan for plan in plans if plan.exploited]
        merged: Optional[Tuple[CampaignGridPointResult, ...]] = None
        self._last_chunk_count = 0
        if active and self._matrix.is_sparse:
            merged = self._estimate_grid_sparse(active, trials=trials, seed=seed)
        elif active:
            points = tuple(
                CampaignGridPoint(
                    tolerances=plan.tolerances,
                    columns=plan.columns,
                    success_probability=plan.success_probability,
                    seed_offset=plan.seed_offset,
                )
                for plan in active
            )
            resolved = get_backend(self._backend)
            exposure = self._matrix.exposure_array(resolved)
            powers = self._matrix.powers_array(resolved)
            probabilities = self._matrix.success_probabilities
            chunk_trials = self._chunk_trials(plans)
            chunks = []
            offset = 0
            while offset < trials:
                count = min(chunk_trials, trials - offset)
                with timed_kernel("campaign_grid", trials=count * len(points)):
                    chunks.append(
                        resolved.campaign_grid(
                            exposure,
                            powers,
                            probabilities,
                            points,
                            trials=count,
                            seed=seed,
                            total_power=self._matrix.total_power,
                            trial_offset=offset,
                            dtype=self._dtype,
                            topk=self._topk,
                        )
                    )
                offset += count
            self._last_chunk_count = len(chunks)
            merged = merge_campaign_grid_batches(chunks)
        return self._finalize_grid(plans, trials, merged)

    # -- internals ---------------------------------------------------------------

    def _estimate_grid_sparse(
        self,
        active: Sequence["_GridPlan"],
        *,
        trials: int,
        seed: int,
    ) -> Tuple[CampaignGridPointResult, ...]:
        """Sparse grid path: resolve points once, row-chunk the CSR exposure.

        ``dtype``/``topk`` are dense fast-path knobs; the sparse path always
        runs the exact float64 route (the kernels' documented fall-back).
        """
        points = _resolve_sparse_plan_points(self._matrix, active, seed)
        resolved = get_backend(self._backend)
        merged = _run_sparse_grid(
            resolved,
            self._matrix.sparse_exposure(),
            points,
            trials=trials,
            trial_offset=0,
            chunk_rows=self._chunk_rows,
            total_power=self._matrix.total_power,
        )
        self._last_chunk_count = -(
            -self._matrix.replica_count // max(1, self._chunk_rows)
        )
        return merged

    def _plan_grid(
        self,
        requests: Sequence["GridPointRequest"],
        *,
        trials: int,
        time: Optional[float],
    ) -> Tuple[_GridPlan, ...]:
        if trials <= 0:
            raise FaultModelError(f"trial count must be positive, got {trials}")
        if not requests:
            raise FaultModelError(
                "a campaign grid needs at least one point — an empty grid is "
                "a usage error, not an empty result"
            )
        plans = []
        for position, request in enumerate(requests):
            where = f"grid point #{position}"
            if not request.tolerances:
                raise FaultModelError(f"{where} has no tolerances")
            for tolerance in request.tolerances:
                if not 0.0 < tolerance <= 1.0:  # also rejects NaN
                    raise FaultModelError(
                        f"{where}: tolerated fraction must be in (0, 1], "
                        f"got {tolerance}"
                    )
            if (request.vulnerability_ids is None) == (request.worst_case is None):
                raise FaultModelError(
                    f"{where} must set exactly one of vulnerability_ids= or "
                    "worst_case="
                )
            if request.success_probability is not None and not (
                0.0 <= request.success_probability <= 1.0
            ):
                raise FaultModelError(
                    f"{where}: success probability must be in [0, 1], got "
                    f"{request.success_probability}"
                )
            if request.seed_offset < 0:
                raise FaultModelError(
                    f"{where}: seed offset must be non-negative, got "
                    f"{request.seed_offset}"
                )
            if request.worst_case is not None:
                if request.worst_case <= 0:
                    raise FaultModelError(
                        f"{where}: worst_case must be positive, got "
                        f"{request.worst_case}"
                    )
                if self._catalog_size() == 0:
                    raise FaultModelError(
                        "the catalog is empty; nothing to exploit"
                    )
                ids = tuple(
                    vuln_id
                    for vuln_id, _ in self._matrix.most_damaging(
                        request.worst_case, backend=self._backend, time=time
                    )
                )
            else:
                ids = tuple(request.vulnerability_ids)
                if not ids:
                    raise FaultModelError(f"{where} selects no vulnerabilities")
                reject_duplicate_vulnerability_ids(ids)
            exploited = tuple(
                vuln_id
                for vuln_id in ids
                if self._matrix.is_exploitable_at(vuln_id, time)
            )
            plans.append(
                _GridPlan(
                    ids=ids,
                    exploited=exploited,
                    columns=tuple(
                        self._matrix.vulnerability_index(vuln_id)
                        for vuln_id in exploited
                    ),
                    tolerances=tuple(request.tolerances),
                    success_probability=request.success_probability,
                    seed_offset=request.seed_offset,
                )
            )
        return tuple(plans)

    def _chunk_trials(self, plans: Sequence[_GridPlan]) -> int:
        cells_per_trial = self._matrix.replica_count * sum(
            len(plan.columns) for plan in plans
        )
        return max(1, self._max_chunk_cells // max(1, cells_per_trial))

    def _finalize_grid(
        self,
        plans: Sequence[_GridPlan],
        trials: int,
        merged: Optional[Sequence[CampaignGridPointResult]],
    ) -> Tuple[GridPointEstimate, ...]:
        results = iter(merged) if merged is not None else iter(())
        estimates = []
        total_power = self._matrix.total_power
        for plan in plans:
            per_vulnerability: Dict[str, float] = {
                vuln_id: 0.0 for vuln_id in plan.ids
            }
            violations: Tuple[int, ...] = (0,) * len(plan.tolerances)
            compromised_total = 0.0
            if plan.exploited:
                point = next(results)
                violations = point.violations
                compromised_total = point.compromised_total
                for vuln_id, total in zip(
                    plan.exploited, point.per_vulnerability_totals
                ):
                    per_vulnerability[vuln_id] = total / trials
            estimates.append(
                GridPointEstimate(
                    ids=plan.ids,
                    exploited=plan.exploited,
                    trials=trials,
                    tolerances=plan.tolerances,
                    violations=violations,
                    violation_probabilities=tuple(
                        count / trials for count in violations
                    ),
                    mean_compromised_fraction=compromised_total
                    / (trials * total_power),
                    total_power=total_power,
                    mean_power_per_vulnerability=tuple(
                        sorted(per_vulnerability.items())
                    ),
                )
            )
        return tuple(estimates)


def _grid_shard_worker(
    backend_name: str,
    exposure_rows: Tuple[Tuple[float, ...], ...],
    powers: Tuple[float, ...],
    success_probabilities: Tuple[float, ...],
    point_payloads: Tuple[Tuple[Any, ...], ...],
    trials: int,
    seed: int,
    total_power: float,
    trial_offset: int,
    dtype: str,
    topk: str,
) -> List[Dict[str, Any]]:
    """Pool-worker entry: one trial-range shard of a fused grid.

    Arguments and results are primitives so any executor can carry them
    across a process boundary; each point payload is
    ``(columns, tolerances, success_probability, seed_offset)``.
    """
    chaos_checkpoint("task", key=f"grid-shard:{trial_offset}+{trials}")
    resolved = get_backend(backend_name)
    points = tuple(
        CampaignGridPoint(
            tolerances=tuple(tolerances),
            columns=tuple(columns),
            success_probability=probability,
            seed_offset=seed_offset,
        )
        for columns, tolerances, probability, seed_offset in point_payloads
    )
    with timed_kernel("campaign_grid", trials=trials * len(points)):
        batch = resolved.campaign_grid(
            resolved.asarray_matrix(exposure_rows),
            resolved.asarray(powers),
            success_probabilities,
            points,
            trials=trials,
            seed=seed,
            total_power=total_power,
            trial_offset=trial_offset,
            dtype=dtype,
            topk=topk,
        )
    return [
        {
            "trials": point.trials,
            "columns": list(point.columns),
            "violations": list(point.violations),
            "compromised_total": point.compromised_total,
            "per_vulnerability_totals": list(point.per_vulnerability_totals),
        }
        for point in batch
    ]


def _sparse_grid_shard_worker(
    backend_name: str,
    sparse: SparseExposure,
    point_payloads: Tuple[Tuple[Any, ...], ...],
    trials: int,
    total_power: float,
    trial_offset: int,
    chunk_rows: int,
) -> List[Dict[str, Any]]:
    """Pool-worker entry: one trial-range shard of a sparse fused grid.

    Each point payload is ``(columns, probabilities, tolerances, seed)`` —
    already resolved by the parent (seed offsets folded in), so the worker
    just rebuilds :class:`ResolvedGridPoint` structures and row-chunks its
    trial slice exactly like the serial engine.
    """
    chaos_checkpoint("task", key=f"grid-shard:{trial_offset}+{trials}")
    resolved = get_backend(backend_name)
    points = tuple(
        ResolvedGridPoint(
            columns=tuple(columns),
            probabilities=tuple(probabilities),
            tolerances=tuple(tolerances),
            seed=point_seed,
        )
        for columns, probabilities, tolerances, point_seed in point_payloads
    )
    batch = _run_sparse_grid(
        resolved,
        sparse.validate(),
        points,
        trials=trials,
        trial_offset=trial_offset,
        chunk_rows=chunk_rows,
        total_power=total_power,
    )
    return [
        {
            "trials": point.trials,
            "columns": list(point.columns),
            "violations": list(point.violations),
            "compromised_total": point.compromised_total,
            "per_vulnerability_totals": list(point.per_vulnerability_totals),
        }
        for point in batch
    ]


class ShardedGridRun:
    """Fan a fused grid's trial range out over resilient pool workers.

    The grid analogue of :class:`ShardedCampaignRun`: produces the same
    :class:`GridPointEstimate` tuple as ``engine.estimate_grid(...)`` —
    bit-identical under the dyadic-power caveat — by splitting the trial
    range into contiguous shards (every shard evaluates *all* grid points
    for its slice of trials) and summing shard batches in offset order.
    """

    def __init__(
        self,
        engine: GridCampaignEngine,
        *,
        max_workers: int = 2,
        task_timeout: Optional[float] = None,
        retries: int = 2,
        executor: Optional[Any] = None,
    ) -> None:
        if max_workers <= 0:
            raise FaultModelError(
                f"worker count must be positive, got {max_workers}"
            )
        self._engine = engine
        self._max_workers = max_workers
        self._task_timeout = task_timeout
        self._retries = retries
        self._executor = executor

    def estimate_grid(
        self,
        requests: Sequence[GridPointRequest],
        *,
        trials: int,
        seed: int = 0,
        time: Optional[float] = None,
    ) -> Tuple[GridPointEstimate, ...]:
        """Sharded equivalent of :meth:`GridCampaignEngine.estimate_grid`."""
        from repro.experiments.orchestrator.resilient import ResilientExecutor

        engine = self._engine
        plans = engine._plan_grid(requests, trials=trials, time=time)
        active = [plan for plan in plans if plan.exploited]
        if not active:
            return engine._finalize_grid(plans, trials, None)
        matrix = engine.matrix
        backend_name = get_backend(engine._backend).name
        ranges = split_trial_ranges(trials, self._max_workers)
        owned = self._executor is None
        pool = (
            ResilientExecutor(
                max_workers=self._max_workers,
                deadline=self._task_timeout,
                retries=self._retries,
            )
            if owned
            else self._executor
        )
        try:
            if matrix.is_sparse:
                sparse_payloads = tuple(
                    (point.columns, point.probabilities, point.tolerances, point.seed)
                    for point in _resolve_sparse_plan_points(matrix, active, seed)
                )
                futures = [
                    pool.submit(
                        _sparse_grid_shard_worker,
                        backend_name,
                        matrix.sparse_exposure(),
                        sparse_payloads,
                        count,
                        matrix.total_power,
                        offset,
                        engine._chunk_rows,
                    )
                    for offset, count in ranges
                ]
            else:
                point_payloads = tuple(
                    (
                        plan.columns,
                        plan.tolerances,
                        plan.success_probability,
                        plan.seed_offset,
                    )
                    for plan in active
                )
                futures = [
                    pool.submit(
                        _grid_shard_worker,
                        backend_name,
                        matrix.exposure_rows(),
                        matrix.powers,
                        matrix.success_probabilities,
                        point_payloads,
                        count,
                        seed,
                        matrix.total_power,
                        offset,
                        engine._dtype,
                        engine._topk,
                    )
                    for offset, count in ranges
                ]
            batches = [
                tuple(
                    CampaignGridPointResult(
                        trials=payload["trials"],
                        columns=tuple(payload["columns"]),
                        violations=tuple(payload["violations"]),
                        compromised_total=payload["compromised_total"],
                        per_vulnerability_totals=tuple(
                            payload["per_vulnerability_totals"]
                        ),
                    )
                    for payload in shard
                )
                for shard in (future.result() for future in futures)
            ]
        finally:
            if owned:
                pool.shutdown(wait=True, cancel_futures=True)
        return engine._finalize_grid(
            plans, trials, merge_campaign_grid_batches(batches)
        )


def run_census_trials(
    census: ConfigurationDistribution,
    *,
    vulnerability_probability: float,
    exploit_budget: int,
    trials: int,
    seed: int,
    tolerance: float,
    backend: BackendLike = None,
) -> TrialBatchResult:
    """Census-mode batched trials (the PR-1 Monte-Carlo kernel).

    Treats every configuration as one independent fault domain and exploits
    the ``exploit_budget`` largest vulnerable shares per trial — the
    estimator :mod:`repro.analysis.monte_carlo` wraps.  Kept here so all
    batched trial workloads enter the backends through the campaign engine;
    the per-backend RNG streams (and therefore every golden snapshot) are
    unchanged.
    """
    resolved = get_backend(backend)
    with timed_kernel("violation_trials", trials=trials):
        return resolved.violation_trials(
            census.sorted_probabilities_array(resolved),
            vulnerability_probability=vulnerability_probability,
            exploit_budget=exploit_budget,
            trials=trials,
            seed=seed,
            tolerance=tolerance,
        )
