"""Vulnerability windows: disclosure, patch availability and adoption latency.

Remark 1 of the paper notes that although faults can be detected and patched,
attacks happen *during the vulnerability window*; reference [14] (the Bitcoin
Core CVE-2017-18350 disclosure) is the motivating real-world case of a long
window between introduction, discovery and fleet-wide patching.  This module
models that window explicitly so experiments can ask "how much voting power is
exposed at time t" as patches roll out.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, unique
from typing import Dict, Iterable, Optional

from repro.core.exceptions import FaultModelError
from repro.core.population import ReplicaPopulation
from repro.faults.vulnerability import Vulnerability


@unique
class PatchState(str, Enum):
    """Lifecycle stages of a vulnerability with respect to one replica."""

    UNDISCLOSED = "undisclosed"  # not yet known to attackers or defenders
    EXPOSED = "exposed"  # disclosed, no patch applied on this replica
    PATCHED = "patched"  # the replica has applied the fix

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class VulnerabilityWindow:
    """The exploitable time window of one vulnerability.

    Attributes:
        vulnerability: the flaw in question.
        disclosure_time: when exploitation becomes possible (this mirrors, and
            must not precede, the vulnerability's own ``disclosed_at``).
        patch_release_time: when a fix becomes available (``None`` = never).
        adoption_latency: time a replica takes to apply an available patch
            (uniform across replicas in this simple model; per-replica jitter
            can be layered on top by the caller).
    """

    vulnerability: Vulnerability
    disclosure_time: float
    patch_release_time: Optional[float] = None
    adoption_latency: float = 0.0

    def __post_init__(self) -> None:
        if self.disclosure_time < 0:
            raise FaultModelError(
                f"disclosure time must be non-negative, got {self.disclosure_time}"
            )
        if self.patch_release_time is not None and self.patch_release_time < self.disclosure_time:
            raise FaultModelError("patch cannot be released before disclosure")
        if self.adoption_latency < 0:
            raise FaultModelError(
                f"adoption latency must be non-negative, got {self.adoption_latency}"
            )

    @property
    def close_time(self) -> Optional[float]:
        """When the window closes fleet-wide (``None`` when it never closes)."""
        if self.patch_release_time is None:
            return None
        return self.patch_release_time + self.adoption_latency

    def is_open_at(self, time: float) -> bool:
        """True when the vulnerability is exploitable at ``time``."""
        if time < self.disclosure_time:
            return False
        close = self.close_time
        return close is None or time < close

    def state_at(self, time: float) -> PatchState:
        """The fleet-wide patch state at ``time``."""
        if time < self.disclosure_time:
            return PatchState.UNDISCLOSED
        if self.is_open_at(time):
            return PatchState.EXPOSED
        return PatchState.PATCHED

    def duration(self) -> Optional[float]:
        """Length of the exploitable window (``None`` when unbounded)."""
        close = self.close_time
        if close is None:
            return None
        return max(0.0, close - self.disclosure_time)


class WindowSchedule:
    """A set of vulnerability windows evolving over simulated time."""

    def __init__(self, windows: Iterable[VulnerabilityWindow] = ()) -> None:
        self._windows: Dict[str, VulnerabilityWindow] = {}
        for window in windows:
            self.add(window)

    def add(self, window: VulnerabilityWindow) -> None:
        """Register a window; one window per vulnerability id."""
        vuln_id = window.vulnerability.vuln_id
        if vuln_id in self._windows:
            raise FaultModelError(f"window for {vuln_id!r} already registered")
        self._windows[vuln_id] = window

    def window_for(self, vuln_id: str) -> VulnerabilityWindow:
        try:
            return self._windows[vuln_id]
        except KeyError:
            raise FaultModelError(f"no window registered for {vuln_id!r}") from None

    def open_at(self, time: float) -> tuple:
        """All windows exploitable at ``time``."""
        return tuple(
            window for window in self._windows.values() if window.is_open_at(time)
        )

    def exposed_power_at(self, population: ReplicaPopulation, time: float) -> Dict[str, float]:
        """Voting power exposed per vulnerability at ``time``.

        Only windows open at ``time`` contribute; patched (closed) windows and
        undisclosed vulnerabilities expose no power.
        """
        result: Dict[str, float] = {}
        for vuln_id, window in self._windows.items():
            if window.is_open_at(time):
                result[vuln_id] = population.power_using_component(
                    window.vulnerability.component
                )
            else:
                result[vuln_id] = 0.0
        return result

    def peak_exposure(
        self, population: ReplicaPopulation, times: Iterable[float]
    ) -> float:
        """The maximum simultaneously-exposed power over the sampled ``times``."""
        peak = 0.0
        for time in times:
            exposed = sum(self.exposed_power_at(population, time).values())
            peak = max(peak, exposed)
        return peak

    def __len__(self) -> int:
        return len(self._windows)

    def __iter__(self):
        return iter(self._windows.values())
