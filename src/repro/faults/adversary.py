"""Adversary strategies.

The paper distinguishes (implicitly, across Sections I, II-B and IV-B) three
ways an attacker can obtain voting power:

1. **Exploit adversary** — exploits shared vulnerabilities; the power gained
   is the exposure of the chosen vulnerabilities.  Diversity (entropy) is the
   defence; configuration abundance does *not* help (Prop. 3's caveat).
2. **Bribery / rental adversary** — buys or rents power directly (Bonneau's
   "why buy when you can rent", mining-pool rental); only the economic budget
   matters, diversity is irrelevant.
3. **Rational operator adversary** — existing operators turn Byzantine for
   profit; higher configuration abundance ω helps because one operator only
   controls its own replicas, not the other replicas sharing its
   configuration (Prop. 3).

Each strategy exposes ``acquired_power(...)`` returning the voting power the
adversary ends up controlling, so experiments can compare them on the same
populations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.core.distribution import ConfigurationDistribution
from repro.core.exceptions import FaultModelError
from repro.core.population import ReplicaPopulation
from repro.faults.campaign import CampaignOutcome, ExploitCampaign
from repro.faults.catalog import VulnerabilityCatalog


@dataclass(frozen=True)
class AdversaryBudget:
    """Resource limits for an adversary.

    Attributes:
        max_vulnerabilities: how many distinct vulnerabilities the attacker
            can weaponize simultaneously (zero-days are expensive).
        bribery_power: voting power the attacker can buy or rent outright.
        colluding_operators: how many existing replica operators the attacker
            can corrupt or collude with.
    """

    max_vulnerabilities: int = 1
    bribery_power: float = 0.0
    colluding_operators: int = 0

    def __post_init__(self) -> None:
        if self.max_vulnerabilities < 0:
            raise FaultModelError(
                f"max vulnerabilities must be non-negative, got {self.max_vulnerabilities}"
            )
        if self.bribery_power < 0:
            raise FaultModelError(
                f"bribery power must be non-negative, got {self.bribery_power}"
            )
        if self.colluding_operators < 0:
            raise FaultModelError(
                f"colluding operators must be non-negative, got {self.colluding_operators}"
            )


class ExploitAdversary:
    """Gains power by exploiting shared vulnerabilities (Section II-B)."""

    def __init__(self, budget: AdversaryBudget, *, seed: int = 0) -> None:
        self._budget = budget
        self._seed = seed

    @property
    def budget(self) -> AdversaryBudget:
        return self._budget

    def attack(
        self,
        population: ReplicaPopulation,
        catalog: VulnerabilityCatalog,
        *,
        time: Optional[float] = None,
    ) -> CampaignOutcome:
        """Run the worst-case campaign allowed by the budget."""
        if self._budget.max_vulnerabilities == 0:
            raise FaultModelError("exploit adversary has a zero vulnerability budget")
        campaign = ExploitCampaign(population, catalog, seed=self._seed)
        return campaign.run_worst_case(
            max_vulnerabilities=self._budget.max_vulnerabilities, time=time
        )

    def acquired_power(
        self,
        population: ReplicaPopulation,
        catalog: VulnerabilityCatalog,
        *,
        time: Optional[float] = None,
    ) -> float:
        """Voting power compromised by the worst-case campaign."""
        return self.attack(population, catalog, time=time).compromised_power


class BriberyAdversary:
    """Gains power by renting or buying it outright.

    Diversity does not defend against this adversary — the acquired power is
    simply ``min(bribery_power, total_power)``.  Included so experiments can
    show which threats entropy does and does not address.
    """

    def __init__(self, budget: AdversaryBudget) -> None:
        self._budget = budget

    @property
    def budget(self) -> AdversaryBudget:
        return self._budget

    def acquired_power(self, population: ReplicaPopulation) -> float:
        """Power acquired: capped by what exists in the system."""
        return min(self._budget.bribery_power, population.total_power())


class RationalOperatorAdversary:
    """A coalition of existing operators turning Byzantine for profit.

    The operators control their own replicas only.  With configuration
    abundance ω the per-configuration power is split over ω independent
    operators, so the coalition's reach shrinks as ω grows — the mechanism
    behind Proposition 3.
    """

    def __init__(self, budget: AdversaryBudget) -> None:
        if budget.colluding_operators <= 0:
            raise FaultModelError(
                "rational-operator adversary needs at least one colluding operator"
            )
        self._budget = budget

    @property
    def budget(self) -> AdversaryBudget:
        return self._budget

    def acquired_power(self, population: ReplicaPopulation) -> float:
        """Power of the largest coalition of ``colluding_operators`` replicas.

        Each replica is assumed to be run by a distinct operator (the
        population construction controls abundance by how many replicas share
        each configuration), so the adversary simply takes the top replicas by
        power.
        """
        powers = sorted((replica.power for replica in population), reverse=True)
        return sum(powers[: self._budget.colluding_operators])

    def acquired_fraction_from_distribution(
        self,
        distribution: ConfigurationDistribution,
        abundance: int,
    ) -> float:
        """Coalition power fraction when each configuration is split ω ways.

        Convenience wrapper over the same computation used by
        :func:`repro.core.propositions.rational_takeover_fraction`.
        """
        from repro.core.propositions import rational_takeover_fraction

        return rational_takeover_fraction(
            distribution, abundance, self._budget.colluding_operators
        )


def compare_adversaries(
    population: ReplicaPopulation,
    catalog: VulnerabilityCatalog,
    budget: AdversaryBudget,
    *,
    seed: int = 0,
) -> Tuple[Tuple[str, float], ...]:
    """Acquired power of each adversary class against the same population.

    Returns ``(name, power)`` pairs for the exploit, bribery and rational
    adversaries (the latter two only when the budget enables them).
    """
    results = []
    if budget.max_vulnerabilities > 0 and len(catalog) > 0:
        exploit = ExploitAdversary(budget, seed=seed)
        results.append(("exploit", exploit.acquired_power(population, catalog)))
    if budget.bribery_power > 0:
        results.append(("bribery", BriberyAdversary(budget).acquired_power(population)))
    if budget.colluding_operators > 0:
        rational = RationalOperatorAdversary(budget)
        results.append(("rational", rational.acquired_power(population)))
    return tuple(results)
