"""Parameterized campaign scenario generators.

A *scenario* bundles the two inputs every exploit campaign needs — a replica
population and a vulnerability catalog — generated from a handful of
JSON-scalar knobs: which synthetic ecosystem the replicas sample their
configurations from, how many replicas there are, how reliable the
adversary's exploits are, and (for permissionless settings) how much
join/leave churn the population has absorbed.

Keeping the generators here, below the experiment layer, lets the campaign
experiments stay thin ``params -> tables`` adapters over
:class:`~repro.faults.engine.BatchCampaignEngine`: a new sweep is "pick a
generator, pick the knobs, register a spec", and the orchestrator provides
caching, sharding, golden pinning and HTTP serving for free.

All generated replicas carry power 1.0 (the replica-count regime), so every
power reduction is exact in float64 and the campaign kernels stay
bit-identical across compute backends.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.core.exceptions import FaultModelError
from repro.core.population import ReplicaPopulation
from repro.core.resilience import ProtocolFamily, tolerated_fault_fraction
from repro.faults.engine import GridPointRequest
from repro.datasets.generators import (
    DEFAULT_REPLICA_CHUNK_SIZE,
    stream_replica_chunks,
)
from repro.datasets.software_ecosystem import (
    SyntheticEcosystem,
    default_ecosystem,
    diverse_ecosystem,
    skewed_ecosystem,
)
from repro.faults.catalog import VulnerabilityCatalog
from repro.faults.matrix import PopulationMatrix
from repro.faults.vulnerability import Severity
from repro.permissionless.churn import ChurnModel

#: Named ecosystems a scenario can sample replica configurations from.
ECOSYSTEM_GENERATORS = {
    "default": default_ecosystem,
    "skewed": skewed_ecosystem,
    "diverse": diverse_ecosystem,
}


def resolve_ecosystem(name: str) -> SyntheticEcosystem:
    """Look an ecosystem generator up by name (usage error when unknown)."""
    try:
        generator = ECOSYSTEM_GENERATORS[name]
    except KeyError:
        known = ", ".join(sorted(ECOSYSTEM_GENERATORS))
        raise FaultModelError(
            f"unknown ecosystem {name!r} (known: {known})"
        ) from None
    return generator()


@dataclass(frozen=True)
class CampaignScenario:
    """One concrete population × catalog pair a campaign sweep runs against.

    Attributes:
        label: human-readable description for tables and reports.
        population: the replica population (power 1.0 per replica).
        catalog: one vulnerability per distinct component in the population,
            at the scenario's exploit-success probability.
    """

    label: str
    population: ReplicaPopulation
    catalog: VulnerabilityCatalog


def ecosystem_scenario(
    *,
    ecosystem: str = "skewed",
    population_size: int = 48,
    seed: int = 0,
    exploit_probability: float = 1.0,
    severity: Severity = Severity.HIGH,
    label: str = None,
) -> CampaignScenario:
    """Sample a population from a named ecosystem and catalog its components.

    The catalog takes the worst-case stance of the experiments: every
    distinct component in the sampled population could harbor one exploitable
    flaw, succeeding per exposed replica with ``exploit_probability``.
    """
    if population_size <= 0:
        raise FaultModelError(
            f"population size must be positive, got {population_size}"
        )
    if not 0.0 <= exploit_probability <= 1.0:
        raise FaultModelError(
            f"exploit probability must be in [0, 1], got {exploit_probability}"
        )
    population = resolve_ecosystem(ecosystem).sample_population(
        population_size, seed=seed
    )
    catalog = VulnerabilityCatalog.for_population(
        population, severity=severity, exploit_probability=exploit_probability
    )
    return CampaignScenario(
        label=label
        or f"{ecosystem} ecosystem, {population_size} replicas, "
        f"p_exploit={exploit_probability:g}",
        population=population,
        catalog=catalog,
    )


def churned_scenarios(
    *,
    ecosystem: str = "default",
    population_size: int = 40,
    steps: int = 120,
    checkpoints: int = 4,
    join_rate: float = 0.6,
    leave_rate: float = 0.35,
    churn_seed: int = 5,
    population_seed: int = 0,
    exploit_probability: float = 1.0,
    severity: Severity = Severity.HIGH,
) -> List[Tuple[int, CampaignScenario]]:
    """A churn trajectory: scenario snapshots at evenly spaced churn steps.

    Starting from an ecosystem-sampled population, one continuous
    :class:`~repro.permissionless.churn.ChurnModel` run is split into
    ``checkpoints`` equal segments; after each segment (and at step 0) the
    population is snapshotted and re-cataloged, so a campaign sweep can chart
    how the violation probability drifts as the census drifts (Challenge 1:
    diversity in a permissionless system is a moving target).

    Returns ``(step, scenario)`` pairs, step 0 first.
    """
    if steps <= 0:
        raise FaultModelError(f"churn steps must be positive, got {steps}")
    if checkpoints <= 0 or checkpoints > steps:
        raise FaultModelError(
            f"checkpoints must be in 1..steps, got {checkpoints} for {steps} steps"
        )
    ecosystem_instance = resolve_ecosystem(ecosystem)
    population = ecosystem_instance.sample_population(
        population_size, seed=population_seed
    )
    model = ChurnModel(
        ecosystem_instance,
        join_rate=join_rate,
        leave_rate=leave_rate,
        seed=churn_seed,
    )

    def snapshot(step: int) -> Tuple[int, CampaignScenario]:
        frozen = ReplicaPopulation(population.replicas(), regime=population.regime)
        catalog = VulnerabilityCatalog.for_population(
            frozen, severity=severity, exploit_probability=exploit_probability
        )
        return (
            step,
            CampaignScenario(
                label=f"{ecosystem} ecosystem after {step} churn steps "
                f"({len(frozen)} replicas)",
                population=frozen,
                catalog=catalog,
            ),
        )

    trajectory = [snapshot(0)]
    completed = 0
    for index in range(checkpoints):
        # Spread the steps evenly; the churn RNG stream is continuous across
        # segments, so the trajectory equals one uninterrupted run.
        target = round((index + 1) * steps / checkpoints)
        segment = target - completed
        if segment > 0:
            model.run(population, segment)
            completed = target
        trajectory.append(snapshot(completed))
    return trajectory


# -- streaming sparse scenarios ------------------------------------------------


def ecosystem_catalog(
    ecosystem_instance: SyntheticEcosystem,
    *,
    severity: Severity = Severity.HIGH,
    exploit_probability: float = 1.0,
) -> VulnerabilityCatalog:
    """One vulnerability per component the ecosystem offers, market-major.

    The streaming analogue of ``VulnerabilityCatalog.for_population``: the
    catalog is fixed by the ecosystem alone, so it exists before — or
    without — any materialized population, which is the precondition for
    streaming a million replicas straight into a sparse matrix.
    """
    return VulnerabilityCatalog.one_per_component(
        ecosystem_instance.components(),
        severity=severity,
        exploit_probability=exploit_probability,
    )


def sparse_ecosystem_matrix(
    *,
    ecosystem: str = "default",
    population_size: int,
    seed: int = 0,
    exploit_probability: float = 1.0,
    severity: Severity = Severity.HIGH,
    chunk_size: int = DEFAULT_REPLICA_CHUNK_SIZE,
) -> Tuple[PopulationMatrix, VulnerabilityCatalog]:
    """Stream an ecosystem population straight into a sparse campaign matrix.

    Replica chunks flow from
    :func:`repro.datasets.generators.stream_replica_chunks` into
    :meth:`~repro.faults.matrix.PopulationMatrix.from_replica_chunks`, so the
    population is never materialized and peak memory is bounded by one chunk
    plus the CSR arrays — the build path the ``ecosystem_scale`` experiment
    and ``bench-population`` use at 10⁶ replicas.  At overlapping scales the
    result is bit-identical to ``PopulationMatrix.build`` on the
    equivalently-sampled population with the same catalog.
    """
    if population_size <= 0:
        raise FaultModelError(
            f"population size must be positive, got {population_size}"
        )
    if not 0.0 <= exploit_probability <= 1.0:
        raise FaultModelError(
            f"exploit probability must be in [0, 1], got {exploit_probability}"
        )
    ecosystem_instance = resolve_ecosystem(ecosystem)
    catalog = ecosystem_catalog(
        ecosystem_instance,
        severity=severity,
        exploit_probability=exploit_probability,
    )
    matrix = PopulationMatrix.from_replica_chunks(
        stream_replica_chunks(
            ecosystem_instance,
            population_size,
            seed=seed,
            chunk_size=chunk_size,
        ),
        catalog,
    )
    return matrix, catalog


# -- fused grid construction ---------------------------------------------------
#
# The campaign sweeps used to loop one BatchCampaignEngine call per
# (scenario point, protocol family).  These helpers phrase each sweep as ONE
# grid of :class:`~repro.faults.engine.GridPointRequest` objects instead, so
# :meth:`~repro.faults.engine.GridCampaignEngine.estimate_grid` can run the
# whole sweep as a single fused kernel call — bit-identical to the loop
# because point ``i`` keeps the loop's ``seed + i`` sub-stream and every
# family judges the same shared draws.


def family_tolerances(families: Sequence[ProtocolFamily]) -> Tuple[float, ...]:
    """The tolerated fault fractions a grid point judges its trials at."""
    if not families:
        raise FaultModelError("at least one protocol family is required")
    return tuple(tolerated_fault_fraction(family) for family in families)


def budget_grid(
    budgets: Sequence[int],
    *,
    families: Sequence[ProtocolFamily],
) -> Tuple[GridPointRequest, ...]:
    """An adversary-budget sweep as one fused grid (one point per budget).

    Point ``i`` exploits the ``budgets[i]`` most damaging vulnerabilities at
    seed offset ``i``, judged at every family's tolerance on the same draws —
    a BFT/majority pair costs one exploit draw instead of two.
    """
    if not budgets:
        raise FaultModelError("at least one adversary budget is required")
    if any(budget <= 0 for budget in budgets):
        raise FaultModelError("adversary budgets must be positive")
    tolerances = family_tolerances(families)
    return tuple(
        GridPointRequest(
            tolerances=tolerances,
            worst_case=budget,
            seed_offset=index,
        )
        for index, budget in enumerate(budgets)
    )


def reliability_grid(
    probabilities: Sequence[float],
    *,
    budget: int,
    families: Sequence[ProtocolFamily],
) -> Tuple[GridPointRequest, ...]:
    """An exploit-reliability sweep as one fused grid over one population.

    Worst-case target selection depends only on exposure and power — never on
    success probabilities — so the whole sweep shares a single engine/catalog
    and each point simply overrides the per-replica success probability
    (matching the looped sweep's one-catalog-per-probability scenarios bit
    for bit, without rebuilding populations).
    """
    if not probabilities:
        raise FaultModelError("at least one exploit probability is required")
    if budget <= 0:
        raise FaultModelError(f"exploit budget must be positive, got {budget}")
    tolerances = family_tolerances(families)
    return tuple(
        GridPointRequest(
            tolerances=tolerances,
            worst_case=budget,
            success_probability=probability,
            seed_offset=index,
        )
        for index, probability in enumerate(probabilities)
    )


def churn_checkpoint_grid(
    checkpoint_index: int,
    *,
    budget: int,
    families: Sequence[ProtocolFamily],
) -> Tuple[GridPointRequest, ...]:
    """One churn checkpoint as a single-point grid.

    Churn snapshots have *different* populations, so each checkpoint runs its
    own engine; the grid seam still buys the multi-tolerance verdict and the
    fused kernel.  ``seed_offset=checkpoint_index`` keeps the checkpoint's
    ``seed + index`` sub-stream from the looped sweep.
    """
    if checkpoint_index < 0:
        raise FaultModelError(
            f"checkpoint index must be non-negative, got {checkpoint_index}"
        )
    if budget <= 0:
        raise FaultModelError(f"exploit budget must be positive, got {budget}")
    return (
        GridPointRequest(
            tolerances=family_tolerances(families),
            worst_case=budget,
            seed_offset=checkpoint_index,
        ),
    )


def reliability_scenarios(
    probabilities: Tuple[float, ...],
    *,
    ecosystem: str = "skewed",
    population_size: int = 48,
    seed: int = 0,
    severity: Severity = Severity.HIGH,
) -> Dict[float, CampaignScenario]:
    """One scenario per exploit-success probability, over a fixed population.

    The population is sampled once (same ecosystem, same seed) and only the
    catalog's exploit reliability varies, isolating the effect of flaky vs
    reliable zero-days on the violation probability.
    """
    if not probabilities:
        raise FaultModelError("at least one exploit probability is required")
    return {
        probability: ecosystem_scenario(
            ecosystem=ecosystem,
            population_size=population_size,
            seed=seed,
            exploit_probability=probability,
            severity=severity,
        )
        for probability in probabilities
    }
