"""Experiment orchestration: specs, structured results, caching, parallel runs.

The orchestrator turns the 13 print-only experiment drivers into a
machine-readable pipeline:

- every experiment registers an :class:`ExperimentSpec` (id, tags, seed,
  parameter dataclass) and produces an :class:`ExperimentResult` — tables,
  headline metrics and run metadata, serializable to JSON;
- the engine (:func:`run_experiments`) executes selections serially or over
  a process pool with deterministic per-experiment seeding, so parallel,
  sharded and serial runs emit byte-identical canonical JSON;
- a content-addressed :class:`ResultCache` (keyed on code + params + backend)
  makes repeat invocations free;
- ``repro.cli run`` exposes all of it (``--tag``, ``--shard i/n``,
  ``--parallel``, ``--no-cache``/``--force``, ``--results RESULTS.json``) and
  the golden-snapshot suite under ``tests/golden/`` locks the numbers down.

Import note: ``repro.experiments.orchestrator.registry`` imports every
experiment module and must therefore not be imported here (the experiment
modules import *this* package for their ``SPEC`` definitions); import the
registry directly where needed.
"""

from repro.experiments.orchestrator.cache import (
    CACHE_DIR_ENV_VAR,
    DEFAULT_CACHE_DIR,
    CacheStats,
    PruneReport,
    ResultCache,
    code_fingerprint,
    default_cache_dir,
    invalidate_code_fingerprint,
    refresh_code_fingerprint,
)
from repro.experiments.orchestrator.engine import execute_spec, run_experiments
from repro.experiments.orchestrator.resilient import (
    DEFAULT_RETRIES,
    ResilientExecutor,
    TaskAttempt,
    backoff_delay,
)
from repro.experiments.orchestrator.result import (
    RESULT_SCHEMA_VERSION,
    ExperimentResult,
    ResultPayload,
    jsonify,
    load_results_document,
    merge_results_documents,
    results_document,
    write_results_document,
)
from repro.experiments.orchestrator.spec import (
    ExperimentSpec,
    experiment_banner,
    filter_specs,
    parse_shard,
    select_shard,
)

__all__ = [
    "CACHE_DIR_ENV_VAR",
    "DEFAULT_CACHE_DIR",
    "DEFAULT_RETRIES",
    "CacheStats",
    "ExperimentResult",
    "ExperimentSpec",
    "PruneReport",
    "RESULT_SCHEMA_VERSION",
    "ResilientExecutor",
    "ResultCache",
    "ResultPayload",
    "TaskAttempt",
    "backoff_delay",
    "code_fingerprint",
    "default_cache_dir",
    "execute_spec",
    "invalidate_code_fingerprint",
    "refresh_code_fingerprint",
    "experiment_banner",
    "filter_specs",
    "jsonify",
    "load_results_document",
    "merge_results_documents",
    "parse_shard",
    "results_document",
    "run_experiments",
    "select_shard",
    "write_results_document",
]
