"""Experiment specifications: registration metadata, filtering and sharding.

Each experiment module exposes a module-level ``SPEC``
(:class:`ExperimentSpec`) binding its id, tags, default seed, parameter
dataclass, structured build function and text renderer.  The registry module
collects the specs in paper order; the engine executes them; this module also
hosts the pure selection logic (name/tag filtering, ``--shard i/n``
splitting) so it can be tested without running anything.
"""

from __future__ import annotations

import re
from dataclasses import asdict, dataclass, is_dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.exceptions import OrchestrationError
from repro.experiments.orchestrator.result import ExperimentResult, ResultPayload, jsonify

_SHARD_PATTERN = re.compile(r"^(\d+)/(\d+)$")


@dataclass(frozen=True)
class ExperimentSpec:
    """Registration record for one experiment.

    Attributes:
        experiment_id: stable name used by the CLI, cache keys and golden
            snapshots.
        title: one-line human description (``repro.cli list``).
        build: ``params -> ResultPayload`` — the structured experiment body.
        render: ``ExperimentResult -> str`` — reproduces the classic stdout
            report from the structured result (no trailing newline).
        params_type: frozen dataclass of JSON-scalar parameters; ``None``
            means the experiment takes no parameters.
        tags: free-form labels for ``--tag`` filtering.
        seed: the experiment's default base seed (``None`` when fully
            deterministic).
        backend_sensitive: whether the numbers depend on the compute backend
            (Monte-Carlo experiments); drives per-backend cache keys and
            golden snapshots.
    """

    experiment_id: str
    title: str
    build: Callable[[Any], ResultPayload]
    render: Callable[[ExperimentResult], str]
    params_type: Optional[type] = None
    tags: Tuple[str, ...] = ()
    seed: Optional[int] = None
    backend_sensitive: bool = False

    def default_params(self) -> Any:
        """A fresh instance of the parameter dataclass (or ``None``)."""
        return self.params_type() if self.params_type is not None else None

    def params_dict(self, params: Any = None) -> Dict[str, Any]:
        """``params`` (defaulting to :meth:`default_params`) as a JSON-safe dict."""
        if params is None:
            params = self.default_params()
        if params is None:
            return {}
        if not is_dataclass(params):
            raise OrchestrationError(
                f"{self.experiment_id} params must be a dataclass, got {type(params).__name__}"
            )
        return jsonify(asdict(params), where=f"{self.experiment_id} params")

    def params_from_dict(self, document: Dict[str, Any]) -> Any:
        """Rebuild a params instance from :meth:`params_dict` output."""
        if self.params_type is None:
            return None
        try:
            return self.params_type(**document)
        except TypeError as error:
            raise OrchestrationError(
                f"bad parameters for {self.experiment_id}: {error}"
            ) from error


def experiment_banner(experiment_id: str) -> str:
    """The ``== <id> ====...`` separator line printed above each report."""
    return f"== {experiment_id} " + "=" * max(0, 70 - len(experiment_id))


def filter_specs(
    specs: Sequence[ExperimentSpec],
    *,
    names: Sequence[str] = (),
    tags: Sequence[str] = (),
) -> List[ExperimentSpec]:
    """Select specs by name and/or tag, preserving the input order.

    Unknown names or tags raise :class:`OrchestrationError` — silently
    skipping a misspelled experiment is how regressions go unnoticed.
    With neither filter, every spec is selected.
    """
    known_names = {spec.experiment_id for spec in specs}
    unknown = [name for name in names if name not in known_names]
    if unknown:
        raise OrchestrationError(
            f"unknown experiments: {', '.join(unknown)} "
            f"(known: {', '.join(sorted(known_names))})"
        )
    known_tags = {tag for spec in specs for tag in spec.tags}
    unknown_tags = [tag for tag in tags if tag not in known_tags]
    if unknown_tags:
        raise OrchestrationError(
            f"unknown tags: {', '.join(unknown_tags)} "
            f"(known: {', '.join(sorted(known_tags))})"
        )
    selected = list(specs)
    if names:
        wanted = set(names)
        selected = [spec for spec in selected if spec.experiment_id in wanted]
    if tags:
        wanted_tags = set(tags)
        selected = [spec for spec in selected if wanted_tags.intersection(spec.tags)]
    if (names or tags) and not selected:
        # Individually-valid filters whose intersection is empty would make a
        # "successful" run that produced nothing — fail loudly instead.
        raise OrchestrationError(
            f"no experiment matches names={sorted(names)} AND tags={sorted(tags)}"
        )
    return selected


def parse_shard(text: str) -> Tuple[int, int]:
    """Parse ``"i/n"`` into a 1-based ``(index, count)`` pair."""
    match = _SHARD_PATTERN.match(text.strip())
    if not match:
        raise OrchestrationError(f"shard must look like '1/2', got {text!r}")
    index, count = int(match.group(1)), int(match.group(2))
    if count < 1 or not 1 <= index <= count:
        raise OrchestrationError(
            f"shard index must be in 1..count, got {index}/{count}"
        )
    return index, count


def select_shard(
    specs: Sequence[ExperimentSpec], index: int, count: int
) -> List[ExperimentSpec]:
    """Round-robin shard ``index`` (1-based) of ``count`` over ``specs``.

    Round-robin on the registry order balances the expensive Monte-Carlo
    experiments across shards better than contiguous slicing would, and the
    union over all shards is exactly the unsharded selection.
    """
    if count < 1 or not 1 <= index <= count:
        raise OrchestrationError(
            f"shard index must be in 1..count, got {index}/{count}"
        )
    return [spec for position, spec in enumerate(specs) if position % count == index - 1]
