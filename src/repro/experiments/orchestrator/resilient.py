"""Fault-tolerant executor: deadlines, retries, pool recycling, attempt log.

:class:`ResilientExecutor` wraps any :class:`concurrent.futures.Executor`
factory (a process pool by default) behind the standard ``submit()`` seam,
so it drops into every place the repository already parameterizes execution
— ``run_experiments``'s parallel fan-out, the HTTP result service's
``ResultService.executor``, and the sharded campaign engine — and adds the
failure handling none of the raw pools have:

- **per-task deadlines** — an attempt that has not produced a result within
  ``deadline`` seconds is abandoned, the pool is recycled (a hung worker
  permanently occupies a slot otherwise; recycling terminates it), and the
  task is retried on the fresh pool;
- **bounded retries with exponential backoff and deterministic jitter** —
  attempt ``k`` waits ``min(cap, base * 2^(k-1))`` scaled by a jitter factor
  drawn from the counter-based splitmix64 stream keyed on the task label,
  so two runs of the same task back off identically (reproducible tests)
  while distinct tasks desynchronize;
- **broken-pool detection and re-dispatch of only the lost tasks** — when a
  worker dies (``os._exit``, OOM-kill, segfault) every in-flight future on
  that pool fails with :class:`~concurrent.futures.BrokenExecutor`; each
  affected task independently swaps in the replacement pool and re-dispatches
  itself, while tasks that already completed keep their results.  Losses do
  **not** spend the task's retry budget — a queued task lost to someone
  else's crash never failed — and are bounded instead by the separate,
  much larger ``max_pool_losses`` budget per task, which is also what
  catches a task whose worker dies on every attempt;
- **a structured attempt log** — every attempt lands in a bounded
  :class:`TaskAttempt` ring buffer with counters, surfaced by the result
  service at ``GET /metrics`` under ``"resilience"``.

Retries are safe here by construction: every workload this repository
submits is a pure function of its arguments (experiments derive all
randomness from their params/seed; campaign shards draw from the
counter-based RNG stream), so a retried task returns **bit-identical**
results — the fault-free and the crash-riddled run produce the same bytes.
"""

from __future__ import annotations

import hashlib
import os
import threading
import time
from collections import deque
from concurrent.futures import (
    BrokenExecutor,
    CancelledError,
    Executor,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from repro.backend.base import campaign_uniform
from repro.core.exceptions import ChaosError, TaskTimeoutError

#: Default number of retries after the first attempt.
DEFAULT_RETRIES = 2

#: Default backoff base (seconds) and cap (seconds).
DEFAULT_BACKOFF_BASE = 0.05
DEFAULT_BACKOFF_CAP = 2.0

#: Default attempt-log ring size.
DEFAULT_LOG_SIZE = 256

#: Exception types retried without recycling the pool (the task failed, the
#: workers are fine).  Transport failures (BrokenExecutor) and deadline
#: overruns recycle and retry regardless of this set.
DEFAULT_RETRY_EXCEPTIONS: Tuple[type, ...] = (ChaosError,)

#: Broken-pool losses a single task may absorb before giving up.  Losses are
#: billed separately from ``retries``: when one worker dies, *every*
#: in-flight future on the pool fails at once, and a task that was merely
#: queued behind the crasher must not spend its failure budget on someone
#: else's fault.  (With N tasks fanned out up front, one crash each can cost
#: an innocent task up to N-1 collateral losses.)  The budget is also what
#: bounds a task that kills its worker on *every* attempt: it is
#: re-dispatched this many times, then fails with the transport error.
DEFAULT_MAX_POOL_LOSSES = 32


@dataclass(frozen=True)
class TaskAttempt:
    """One attempt of one task, as recorded in the executor's ring buffer.

    Attributes:
        task: the task label (function name plus first string argument).
        attempt: 1-based attempt number.
        outcome: ``"ok"`` / ``"timeout"`` / ``"broken-pool"`` / ``"error"``.
        elapsed_seconds: wall time the attempt took.
        retry_delay_seconds: backoff slept before the *next* attempt
            (0.0 when the attempt succeeded or exhausted the budget).
        error: ``repr`` of the failure (``None`` on success).
    """

    task: str
    attempt: int
    outcome: str
    elapsed_seconds: float
    retry_delay_seconds: float
    error: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "task": self.task,
            "attempt": self.attempt,
            "outcome": self.outcome,
            "elapsed_seconds": round(self.elapsed_seconds, 6),
            "retry_delay_seconds": round(self.retry_delay_seconds, 6),
            "error": self.error,
        }


def backoff_delay(
    label: str,
    attempt: int,
    *,
    base: float = DEFAULT_BACKOFF_BASE,
    cap: float = DEFAULT_BACKOFF_CAP,
) -> float:
    """Backoff before retrying ``label`` after failed attempt ``attempt``.

    Exponential in the attempt number, capped, scaled by a deterministic
    jitter factor in ``[0.5, 1.5)`` from the counter-based splitmix64
    stream keyed on the label — reproducible per task, decorrelated across
    tasks (no thundering-herd retry waves).
    """
    if base <= 0.0:
        return 0.0
    seed = int.from_bytes(
        hashlib.sha256(label.encode("utf-8")).digest()[:8], "big"
    )
    jitter = 0.5 + campaign_uniform(seed, attempt)
    return min(cap, base * (2.0 ** (attempt - 1))) * jitter


def _default_factory(max_workers: Optional[int]) -> Callable[[], Executor]:
    def make() -> Executor:
        return ProcessPoolExecutor(max_workers=max_workers)

    return make


class ResilientExecutor(Executor):
    """An :class:`~concurrent.futures.Executor` that survives its pool.

    Args:
        max_workers: pool width for the default process-pool factory (and
            the monitor-thread pool; ignored for pool sizing when
            ``factory`` is given).
        factory: zero-argument callable building a fresh inner executor;
            called once up front and again on every recycle.  Defaults to
            ``ProcessPoolExecutor(max_workers=...)``.
        deadline: per-attempt seconds before a task is declared hung and
            the pool recycled; ``None`` waits forever.  Hard enforcement
            (terminating the stuck worker) requires a process-pool factory;
            thread pools get the retry but the hung thread runs on.
        retries: attempts allowed *after* the first (0 = fail fast).
        backoff_base / backoff_cap: see :func:`backoff_delay`.
        retry_exceptions: task-raised exception types worth retrying
            (default: chaos corruption only — a deterministic application
            error would fail every attempt identically, so it fails fast).
        max_pool_losses: broken-pool losses one task may absorb before
            giving up.  Billed separately from ``retries`` — a lost task
            did not fail, its pool did (see module notes).
        log_size: attempt ring-buffer length.
    """

    def __init__(
        self,
        *,
        max_workers: Optional[int] = None,
        factory: Optional[Callable[[], Executor]] = None,
        deadline: Optional[float] = None,
        retries: int = DEFAULT_RETRIES,
        backoff_base: float = DEFAULT_BACKOFF_BASE,
        backoff_cap: float = DEFAULT_BACKOFF_CAP,
        retry_exceptions: Tuple[type, ...] = DEFAULT_RETRY_EXCEPTIONS,
        max_pool_losses: int = DEFAULT_MAX_POOL_LOSSES,
        log_size: int = DEFAULT_LOG_SIZE,
    ) -> None:
        if deadline is not None and deadline <= 0:
            raise ValueError(f"deadline must be positive, got {deadline}")
        if retries < 0:
            raise ValueError(f"retries must be non-negative, got {retries}")
        if max_pool_losses < 1:
            raise ValueError(
                f"max_pool_losses must be positive, got {max_pool_losses}"
            )
        self._width = max_workers if max_workers is not None else os.cpu_count() or 1
        self._factory = factory if factory is not None else _default_factory(max_workers)
        self.deadline = deadline
        self.retries = retries
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.retry_exceptions = tuple(retry_exceptions)
        self.max_pool_losses = max_pool_losses
        self._lock = threading.Lock()
        self._pool: Executor = self._factory()
        self._generation = 0
        self._stopped = False
        # Monitors block while their attempt runs, so the monitor pool is
        # sized to the worker pool (plus slack for tasks mid-backoff): the
        # inner pool's own queue never grows beyond what it can run.
        self._monitors = ThreadPoolExecutor(
            max_workers=self._width + 2, thread_name_prefix="resilient"
        )
        self.attempts: Deque[TaskAttempt] = deque(maxlen=log_size)
        self.tasks_submitted = 0
        self.tasks_succeeded = 0
        self.tasks_failed = 0
        self.retries_total = 0
        self.timeouts_total = 0
        self.pool_breaks = 0
        self.pool_recycles = 0
        self.losses_redispatched = 0

    # ---------------------------------------------------------------- pool

    @property
    def generation(self) -> int:
        """How many pools this executor has been through (0-based)."""
        with self._lock:
            return self._generation

    def _current_pool(self) -> Tuple[Executor, int]:
        with self._lock:
            if self._stopped:
                raise RuntimeError("cannot submit to a shut-down ResilientExecutor")
            return self._pool, self._generation

    def recycle(self) -> None:
        """Swap in a fresh pool unconditionally (e.g. after a source edit)."""
        self._recycle_from(self.generation, kill=False)

    def _recycle_from(self, generation: int, *, kill: bool) -> None:
        """Replace the pool *iff* it is still the one that failed.

        Concurrent failures on the same broken pool race here; the first
        caller swaps, the rest see the bumped generation and simply retry
        on the replacement — one recycle per breakage, not one per task.
        """
        with self._lock:
            if self._stopped or generation != self._generation:
                return
            old = self._pool
            self._pool = self._factory()
            self._generation += 1
            self.pool_recycles += 1
        self._dispose(old, kill=kill)

    @staticmethod
    def _dispose(pool: Executor, *, kill: bool) -> None:
        if not kill:
            # Graceful recycle (e.g. a source-edit refresh): let queued and
            # running tasks drain on the old pool; only *new* submissions go
            # to the replacement.
            pool.shutdown(wait=False)
            return
        # Snapshot the workers *before* shutdown(): ProcessPoolExecutor
        # drops its _processes reference as soon as shutdown() returns, and
        # a worker left untreated keeps running its hung task.
        processes = list((getattr(pool, "_processes", None) or {}).values())
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except TypeError:  # pragma: no cover - pre-3.9 executors
            pool.shutdown(wait=False)
        # A hung worker ignores shutdown(); terminate it so the dead pool
        # cannot pin a core (process pools only — threads cannot be killed,
        # which is why deadline tests use processes).
        for process in processes:
            try:
                process.terminate()
            except Exception:  # pragma: no cover - already-dead worker
                pass

    # -------------------------------------------------------------- submit

    def submit(self, fn: Callable[..., Any], /, *args: Any, **kwargs: Any) -> "Future[Any]":
        """Schedule ``fn(*args, **kwargs)`` with the resilience policy.

        Returns an outer future that resolves with the first successful
        attempt's result, or with the final attempt's failure once the
        retry budget is exhausted.
        """
        label = getattr(fn, "__name__", None) or repr(fn)
        if args and isinstance(args[0], str):
            label = f"{label}:{args[0]}"
        outer: "Future[Any]" = Future()
        with self._lock:
            if self._stopped:
                raise RuntimeError("cannot submit to a shut-down ResilientExecutor")
            self.tasks_submitted += 1
        self._monitors.submit(self._drive, outer, label, fn, args, kwargs)
        return outer

    def _drive(
        self,
        outer: "Future[Any]",
        label: str,
        fn: Callable[..., Any],
        args: Tuple[Any, ...],
        kwargs: Dict[str, Any],
    ) -> None:
        if not outer.set_running_or_notify_cancel():
            return
        try:
            self._drive_attempts(outer, label, fn, args, kwargs)
        except BaseException as driver_error:  # noqa: BLE001
            # A failure of the *driver* (not the task) must still resolve the
            # outer future — a stranded future hangs its caller forever.
            if not outer.done():
                outer.set_exception(driver_error)

    def _drive_attempts(
        self,
        outer: "Future[Any]",
        label: str,
        fn: Callable[..., Any],
        args: Tuple[Any, ...],
        kwargs: Dict[str, Any],
    ) -> None:
        attempt = 0
        failures = 0  # attempts the task itself burned (timeout / error)
        losses = 0  # attempts lost to pool breakage (billed separately)
        while True:
            attempt += 1
            started = time.monotonic()
            outcome = "ok"
            error: Optional[BaseException] = None
            recycle = False
            kill = False
            try:
                pool, generation = self._current_pool()
                inner = pool.submit(fn, *args, **kwargs)
            except (BrokenExecutor, RuntimeError) as submit_error:
                # The pool broke (or was recycled away) between lookup and
                # submit; treat exactly like an attempt lost to breakage.
                outcome, error, recycle = "broken-pool", submit_error, True
            else:
                try:
                    result = inner.result(timeout=self.deadline)
                except FutureTimeoutError:
                    inner.cancel()
                    outcome = "timeout"
                    error = TaskTimeoutError(
                        f"task {label!r} exceeded its {self.deadline}s deadline "
                        f"(attempt {attempt})"
                    )
                    recycle = kill = True
                except BrokenExecutor as broken:
                    outcome, error, recycle = "broken-pool", broken, True
                except CancelledError as cancelled:
                    # A concurrent kill-recycle (another task's timeout)
                    # cancelled this queued attempt; the replacement pool is
                    # already up — _recycle_from dedupes on generation — so
                    # simply retry there.
                    outcome, error, recycle = "broken-pool", cancelled, True
                except BaseException as task_error:  # noqa: BLE001 - reported via future
                    outcome, error = "error", task_error
                else:
                    self._record(label, attempt, "ok", time.monotonic() - started, 0.0)
                    with self._lock:
                        self.tasks_succeeded += 1
                    outer.set_result(result)
                    return
            elapsed = time.monotonic() - started
            with self._lock:
                if outcome == "timeout":
                    self.timeouts_total += 1
                elif outcome == "broken-pool":
                    self.pool_breaks += 1
            if recycle:
                self._recycle_from(generation, kill=kill)
            if outcome == "broken-pool":
                # A lost task did not fail — its pool did.  Re-dispatch on
                # the replacement without billing the retry budget, unless
                # this task keeps landing on dying pools (losses budget).
                losses += 1
                if losses <= self.max_pool_losses:
                    self._record(label, attempt, outcome, elapsed, 0.0, error)
                    with self._lock:
                        self.losses_redispatched += 1
                    continue
                self._record(label, attempt, outcome, elapsed, 0.0, error)
                with self._lock:
                    self.tasks_failed += 1
                outer.set_exception(error)
                return
            failures += 1
            retryable = outcome == "timeout" or isinstance(
                error, self.retry_exceptions
            )
            if not retryable or failures > self.retries:
                self._record(label, attempt, outcome, elapsed, 0.0, error)
                with self._lock:
                    self.tasks_failed += 1
                outer.set_exception(error)
                return
            delay = backoff_delay(
                label, failures, base=self.backoff_base, cap=self.backoff_cap
            )
            self._record(label, attempt, outcome, elapsed, delay, error)
            with self._lock:
                self.retries_total += 1
            if delay > 0.0:
                time.sleep(delay)

    def _record(
        self,
        label: str,
        attempt: int,
        outcome: str,
        elapsed: float,
        delay: float,
        error: Optional[BaseException] = None,
    ) -> None:
        record = TaskAttempt(
            task=label,
            attempt=attempt,
            outcome=outcome,
            elapsed_seconds=elapsed,
            retry_delay_seconds=delay,
            error=None if error is None else f"{type(error).__name__}: {error}",
        )
        with self._lock:
            self.attempts.append(record)

    # --------------------------------------------------------------- stats

    def snapshot(self, *, attempt_limit: int = 20) -> Dict[str, Any]:
        """The JSON document ``GET /metrics`` embeds under ``"resilience"``."""
        with self._lock:
            attempts: List[TaskAttempt] = list(self.attempts)[-attempt_limit:]
            return {
                "deadline_seconds": self.deadline,
                "retries": self.retries,
                "pool_generation": self._generation,
                "tasks_submitted": self.tasks_submitted,
                "tasks_succeeded": self.tasks_succeeded,
                "tasks_failed": self.tasks_failed,
                "retries_total": self.retries_total,
                "timeouts_total": self.timeouts_total,
                "pool_breaks": self.pool_breaks,
                "pool_recycles": self.pool_recycles,
                "losses_redispatched": self.losses_redispatched,
                "recent_attempts": [attempt.to_dict() for attempt in attempts],
            }

    # ------------------------------------------------------------ shutdown

    def shutdown(self, wait: bool = True, *, cancel_futures: bool = False) -> None:
        """Stop accepting tasks; release the monitor and worker pools."""
        with self._lock:
            if self._stopped:
                return
            self._stopped = True
            pool = self._pool
        self._monitors.shutdown(wait=wait, cancel_futures=cancel_futures)
        try:
            pool.shutdown(wait=wait, cancel_futures=cancel_futures)
        except TypeError:  # pragma: no cover - pre-3.9 executors
            pool.shutdown(wait=wait)
