"""The experiment registry: every spec, in the order DESIGN.md lists them.

This module is the only orchestrator module that imports the experiment
modules (each of which imports ``orchestrator.spec``/``orchestrator.result``
for its ``SPEC`` definition), so it must never be imported from the package
``__init__`` — import it directly where a registry is needed (the CLI, the
runner, pool workers).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.exceptions import OrchestrationError
from repro.experiments import (
    attestation_coverage,
    campaign_budget,
    campaign_churn,
    campaign_reliability,
    component_exposure,
    decentralized_pools,
    diversity_ablation,
    ecosystem_scale,
    example1,
    figure1,
    prop1,
    prop2,
    prop3,
    protocol_safety,
    safety_violation,
    two_class,
    vulnerability_window,
)
from repro.experiments.orchestrator.spec import ExperimentSpec

#: Every registered spec, in paper order (Figure 1 first, extensions last).
ALL_SPECS: Tuple[ExperimentSpec, ...] = (
    figure1.SPEC,
    example1.SPEC,
    prop1.SPEC,
    prop2.SPEC,
    prop3.SPEC,
    safety_violation.SPEC,
    attestation_coverage.SPEC,
    two_class.SPEC,
    protocol_safety.SPEC,
    diversity_ablation.SPEC,
    vulnerability_window.SPEC,
    decentralized_pools.SPEC,
    component_exposure.SPEC,
    campaign_budget.SPEC,
    campaign_reliability.SPEC,
    campaign_churn.SPEC,
    ecosystem_scale.SPEC,
)

_BY_ID: Dict[str, ExperimentSpec] = {spec.experiment_id: spec for spec in ALL_SPECS}
if len(_BY_ID) != len(ALL_SPECS):  # pragma: no cover - registration bug guard
    raise OrchestrationError("duplicate experiment ids in the registry")


def all_specs() -> Tuple[ExperimentSpec, ...]:
    """Every spec, in registry order."""
    return ALL_SPECS


def experiment_ids() -> List[str]:
    """The registered experiment ids, in registry order."""
    return [spec.experiment_id for spec in ALL_SPECS]


def known_tags() -> List[str]:
    """Every tag used by at least one spec, sorted."""
    return sorted({tag for spec in ALL_SPECS for tag in spec.tags})


def get_spec(experiment_id: str) -> ExperimentSpec:
    """The spec registered under ``experiment_id``."""
    spec = _BY_ID.get(experiment_id)
    if spec is None:
        raise OrchestrationError(
            f"unknown experiment {experiment_id!r} "
            f"(known: {', '.join(experiment_ids())})"
        )
    return spec
