"""Content-addressed on-disk cache for experiment results.

A cache entry's key is the SHA-256 of everything the result depends on:

- the experiment id and its JSON-canonical parameters;
- a **code fingerprint** — the hash of every ``repro`` source file plus the
  orchestrator's result schema version.  Experiments reach through
  ``analysis``, ``core``, ``backend`` and friends, so the fingerprint is
  deliberately package-wide: any source edit invalidates the whole cache
  rather than risking a stale number (the full suite rebuilds in seconds);
- the resolved backend name for backend-sensitive experiments (``"-"`` for
  backend-independent ones, whose numbers are the same everywhere).

Entries are whole :meth:`ExperimentResult.to_dict` documents written
atomically (temp file + rename), so a killed run never leaves a torn entry.
Each stored document also records the code fingerprint it was keyed under,
which is what lets :meth:`ResultCache.prune` identify entries orphaned by a
source edit without being able to invert the content hash.
Corrupt or unreadable entries degrade to cache misses.

Long-lived processes (the HTTP result service) refresh the memoized
fingerprint through :func:`invalidate_code_fingerprint` /
:func:`refresh_code_fingerprint` so a server picks up source edits instead
of serving results keyed to code that no longer exists.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from dataclasses import dataclass
from typing import Any, Mapping, Optional

from repro.core.exceptions import OrchestrationError
from repro.experiments.orchestrator.result import (
    RESULT_SCHEMA_VERSION,
    ExperimentResult,
)
from repro.experiments.orchestrator.spec import ExperimentSpec
from repro.testing.chaos import chaos_checkpoint

#: Environment variable overriding the default cache directory.
CACHE_DIR_ENV_VAR = "REPRO_CACHE_DIR"

#: Default cache directory (relative to the working directory).
DEFAULT_CACHE_DIR = ".repro-cache"

#: How old a ``.tmp-*`` file must be before prune()/stats() treat it as
#: leaked.  A fresh temp file is a store() in flight somewhere — deleting it
#: would make that writer's atomic rename fail.
TEMP_FILE_MAX_AGE_SECONDS = 3600.0

_package_fingerprint_cache: Optional[str] = None


def default_cache_dir() -> str:
    """The cache directory: ``$REPRO_CACHE_DIR`` or ``.repro-cache``."""
    return os.environ.get(CACHE_DIR_ENV_VAR) or DEFAULT_CACHE_DIR


def _code_fingerprint() -> str:
    """Hash of every ``.py`` file in the installed ``repro`` package.

    Experiments pull numbers from ``analysis``/``core``/``backend``/...,
    so a per-module hash would serve stale results after an edit anywhere
    else in the library; hashing the whole package trades cache lifetime
    for correctness.  Memoized per process (a batch run's source does not
    change mid-run); long-lived processes refresh the memo through
    :func:`invalidate_code_fingerprint`.
    """
    global _package_fingerprint_cache
    if _package_fingerprint_cache is None:
        _package_fingerprint_cache = compute_code_fingerprint()
    return _package_fingerprint_cache


def compute_code_fingerprint() -> str:
    """Hash the source tree *without* touching the memo.

    The result service computes this in a worker thread and applies it with
    :func:`set_code_fingerprint` from the event loop, so the memo only ever
    changes in the same thread that swaps the process pool — keeping
    "which code runs" and "which fingerprint keys it" a consistent pair.
    """
    import repro

    package_root = os.path.dirname(os.path.abspath(repro.__file__))
    digest = hashlib.sha256()
    for directory, _, filenames in sorted(os.walk(package_root)):
        for filename in sorted(filenames):
            if not filename.endswith(".py"):
                continue
            path = os.path.join(directory, filename)
            digest.update(os.path.relpath(path, package_root).encode("utf-8"))
            try:
                with open(path, "rb") as handle:
                    digest.update(handle.read())
            except OSError:  # pragma: no cover - deleted source mid-run
                digest.update(b"<unreadable>")
    return digest.hexdigest()


def set_code_fingerprint(value: str) -> None:
    """Install a fingerprint computed via :func:`compute_code_fingerprint`."""
    global _package_fingerprint_cache
    _package_fingerprint_cache = value


def code_fingerprint() -> str:
    """The (memoized) package-wide code fingerprint cache keys embed."""
    return _code_fingerprint()


def invalidate_code_fingerprint() -> None:
    """Drop the memoized code fingerprint so the next use re-hashes the tree.

    Call this before any cache-key computation whose correctness depends on
    the *current* source — the golden-snapshot refresh path and the HTTP
    result service's periodic refresh both do.
    """
    global _package_fingerprint_cache
    _package_fingerprint_cache = None


def refresh_code_fingerprint() -> bool:
    """Re-hash the source tree; ``True`` when the fingerprint changed.

    Equivalent to :func:`invalidate_code_fingerprint` followed by a fresh
    computation, reporting whether anything moved — the result service uses
    the return value to count the source edits it picked up.
    """
    previous = _package_fingerprint_cache
    invalidate_code_fingerprint()
    return previous is not None and _code_fingerprint() != previous


@dataclass(frozen=True)
class CacheStats:
    """What :meth:`ResultCache.stats` / :meth:`ResultCache.prune` report.

    Attributes:
        directory: the cache directory the numbers describe.
        entries: committed entries keyed to the *current* code fingerprint.
        stale_entries: committed entries keyed to any other fingerprint
            (orphaned by a source edit — unreachable until pruned).
        temp_files: leaked ``.tmp-*`` files from killed writers.
        total_bytes: on-disk size of everything counted above.
    """

    directory: str
    entries: int = 0
    stale_entries: int = 0
    temp_files: int = 0
    total_bytes: int = 0


@dataclass(frozen=True)
class PruneReport:
    """What one :meth:`ResultCache.prune` / :meth:`ResultCache.clear` did.

    Attributes:
        directory: the cache directory that was pruned.
        removed_entries: committed entries deleted.
        removed_temp_files: leaked ``.tmp-*`` files deleted.
        kept_entries: committed entries still present afterwards.
        freed_bytes: on-disk size of everything deleted.
    """

    directory: str
    removed_entries: int = 0
    removed_temp_files: int = 0
    kept_entries: int = 0
    freed_bytes: int = 0


class ResultCache:
    """Directory of content-addressed experiment results."""

    def __init__(self, directory: Optional[str] = None) -> None:
        self.directory = directory or default_cache_dir()

    def key_for(
        self,
        spec: ExperimentSpec,
        params_dict: Mapping[str, Any],
        backend: Optional[str],
        *,
        fingerprint: Optional[str] = None,
    ) -> str:
        """The content hash addressing ``spec`` run with these inputs.

        ``fingerprint`` pins the code fingerprint the key embeds; callers
        that later :meth:`store` under this key should capture one
        :func:`code_fingerprint` value and pass it to both calls, so a
        concurrent refresh cannot make the stored entry's recorded
        fingerprint disagree with its key.
        """
        material = json.dumps(
            {
                "schema": RESULT_SCHEMA_VERSION,
                "experiment_id": spec.experiment_id,
                "params": params_dict,
                "backend": backend if spec.backend_sensitive else "-",
                "code": fingerprint if fingerprint is not None else _code_fingerprint(),
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(material.encode("utf-8")).hexdigest()

    def _path(self, key: str) -> str:
        return os.path.join(self.directory, f"{key}.json")

    def load(self, key: str) -> Optional[ExperimentResult]:
        """The cached result for ``key``, or ``None`` on miss/corruption."""
        try:
            with open(self._path(key), "r", encoding="utf-8") as handle:
                document = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None
        try:
            result = ExperimentResult.from_dict(document)
        except OrchestrationError:
            return None
        # Kernel counters and peak RSS describe the run that *built* the
        # result; a cache hit ran no kernels and cost no build memory, so
        # they reset along with the cached flag.
        return result.with_volatile(
            wall_time_seconds=result.wall_time_seconds,
            cached=True,
            kernel_counters={},
            peak_rss_kb=0,
        )

    def store(
        self,
        key: str,
        result: ExperimentResult,
        *,
        fingerprint: Optional[str] = None,
    ) -> str:
        """Atomically persist ``result`` under ``key``; returns the file path.

        ``fingerprint`` must be the one ``key`` was computed under when the
        two calls can straddle a refresh (the HTTP service); the default is
        only safe for batch runs, where the memo cannot change in between.
        """
        path = self._path(key)
        document = result.to_dict()
        # The content key embeds the fingerprint but cannot be inverted, so
        # prune() needs it recorded in the entry itself to recognize entries
        # orphaned by a source edit.
        document["code_fingerprint"] = (
            fingerprint if fingerprint is not None else _code_fingerprint()
        )
        try:
            os.makedirs(self.directory, exist_ok=True)
            descriptor, temp_path = tempfile.mkstemp(
                dir=self.directory, prefix=".tmp-", suffix=".json"
            )
            try:
                with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
                    json.dump(document, handle, sort_keys=True, allow_nan=False)
                    handle.write("\n")
                # Chaos checkpoint between the temp write and the atomic
                # rename: a "crash" here leaves exactly the torn state the
                # tmp+rename protocol exists to keep invisible, and a
                # "corrupt" commits garbage that load() must treat as a miss.
                if chaos_checkpoint("cache-write", key=key) == "corrupt":
                    with open(temp_path, "w", encoding="utf-8") as handle:
                        handle.write('{"torn": ')
                os.replace(temp_path, path)
            except BaseException:
                try:
                    os.unlink(temp_path)
                except OSError:
                    pass
                raise
        except OSError as error:
            raise OrchestrationError(
                f"cannot write cache entry to {path!r}: {error}"
            ) from error
        return path

    def invalidate(self, key: str) -> bool:
        """Delete the committed entry for ``key``; ``True`` when one existed.

        The targeted counterpart to :meth:`prune`: a caller that knows one
        specific result is unwanted (an operator retiring a parameter point
        through the cache-admin API) drops exactly that entry without
        touching the rest of the directory.
        """
        if not key or "/" in key or os.sep in key:
            # Keys are hex digests; anything else must not be able to reach
            # outside the cache directory through _path().
            return False
        return self._remove(self._path(key))

    def __len__(self) -> int:
        """Number of committed (non-temporary) entries on disk."""
        try:
            names = os.listdir(self.directory)
        except OSError:
            return 0
        return sum(1 for name in names if self._is_entry(name))

    @staticmethod
    def _is_entry(name: str) -> bool:
        return name.endswith(".json") and not name.startswith(".tmp-")

    @staticmethod
    def _is_temp(name: str) -> bool:
        return name.startswith(".tmp-")

    def _is_leaked_temp(self, name: str, path: str) -> bool:
        """A temp file old enough that no live writer can still own it."""
        if not self._is_temp(name):
            return False
        try:
            age = time.time() - os.path.getmtime(path)
        except OSError:
            return False
        return age > TEMP_FILE_MAX_AGE_SECONDS

    def _entry_fingerprint(self, path: str) -> Optional[str]:
        """The fingerprint recorded in the entry, ``None`` when unreadable.

        Entries written before fingerprints were recorded (or corrupted
        since) report ``None`` and are treated as stale: their provenance
        cannot be established, so keeping them would only hold disk.
        """
        try:
            with open(path, "r", encoding="utf-8") as handle:
                document = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None
        if not isinstance(document, Mapping):
            return None
        fingerprint = document.get("code_fingerprint")
        return fingerprint if isinstance(fingerprint, str) else None

    @staticmethod
    def _size_of(path: str) -> int:
        try:
            return os.path.getsize(path)
        except OSError:
            return 0

    @staticmethod
    def _remove(path: str) -> bool:
        try:
            os.unlink(path)
        except OSError:
            return False
        return True

    def stats(self) -> CacheStats:
        """Count live entries, fingerprint-orphaned entries and leaked temps."""
        current = _code_fingerprint()
        entries = stale = temps = total_bytes = 0
        try:
            names = os.listdir(self.directory)
        except OSError:
            names = []
        for name in names:
            path = os.path.join(self.directory, name)
            if self._is_temp(name):
                if self._is_leaked_temp(name, path):
                    temps += 1
                    total_bytes += self._size_of(path)
            elif self._is_entry(name):
                total_bytes += self._size_of(path)
                if self._entry_fingerprint(path) == current:
                    entries += 1
                else:
                    stale += 1
        return CacheStats(
            directory=self.directory,
            entries=entries,
            stale_entries=stale,
            temp_files=temps,
            total_bytes=total_bytes,
        )

    def prune(self) -> PruneReport:
        """Delete unreachable state: fingerprint-orphaned entries, leaked temps.

        Every source edit changes the package fingerprint and with it every
        cache key, so entries written under a previous fingerprint can never
        be hit again — without pruning, the cache directory grows by a full
        result set per edit, forever.  Entries keyed to the *current*
        fingerprint are kept untouched.
        """
        current = _code_fingerprint()
        removed = temps = kept = freed = 0
        try:
            names = os.listdir(self.directory)
        except OSError:
            names = []
        for name in names:
            path = os.path.join(self.directory, name)
            if self._is_temp(name):
                # Fresh temps belong to a store() in flight; only reap ones
                # no live writer can still own.
                if self._is_leaked_temp(name, path):
                    size = self._size_of(path)
                    if self._remove(path):
                        temps += 1
                        freed += size
            elif self._is_entry(name):
                if self._entry_fingerprint(path) == current:
                    kept += 1
                    continue
                size = self._size_of(path)
                if self._remove(path):
                    removed += 1
                    freed += size
        return PruneReport(
            directory=self.directory,
            removed_entries=removed,
            removed_temp_files=temps,
            kept_entries=kept,
            freed_bytes=freed,
        )

    def clear(self) -> PruneReport:
        """Delete every committed entry (live or stale) and leaked temp file.

        Fresh ``.tmp-*`` files are left alone even here: a young temp file is
        a :meth:`store` in flight somewhere (possibly another process), and
        unlinking it would make that writer's ``os.replace`` raise — a
        ``clear`` must never convert a concurrent write into an
        :class:`~repro.core.exceptions.OrchestrationError`.  The same age
        rule as :meth:`prune` applies, so abandoned temps are still reaped.
        """
        removed = temps = freed = 0
        try:
            names = os.listdir(self.directory)
        except OSError:
            names = []
        for name in names:
            path = os.path.join(self.directory, name)
            if self._is_temp(name):
                if not self._is_leaked_temp(name, path):
                    continue
                size = self._size_of(path)
                if self._remove(path):
                    temps += 1
                    freed += size
                continue
            if not self._is_entry(name):
                continue
            size = self._size_of(path)
            if self._remove(path):
                removed += 1
                freed += size
        return PruneReport(
            directory=self.directory,
            removed_entries=removed,
            removed_temp_files=temps,
            kept_entries=0,
            freed_bytes=freed,
        )
