"""Content-addressed on-disk cache for experiment results.

A cache entry's key is the SHA-256 of everything the result depends on:

- the experiment id and its JSON-canonical parameters;
- a **code fingerprint** — the hash of every ``repro`` source file plus the
  orchestrator's result schema version.  Experiments reach through
  ``analysis``, ``core``, ``backend`` and friends, so the fingerprint is
  deliberately package-wide: any source edit invalidates the whole cache
  rather than risking a stale number (the full suite rebuilds in seconds);
- the resolved backend name for backend-sensitive experiments (``"-"`` for
  backend-independent ones, whose numbers are the same everywhere).

Entries are whole :meth:`ExperimentResult.to_dict` documents written
atomically (temp file + rename), so a killed run never leaves a torn entry.
Corrupt or unreadable entries degrade to cache misses.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Any, Mapping, Optional

from repro.core.exceptions import OrchestrationError
from repro.experiments.orchestrator.result import (
    RESULT_SCHEMA_VERSION,
    ExperimentResult,
)
from repro.experiments.orchestrator.spec import ExperimentSpec

#: Environment variable overriding the default cache directory.
CACHE_DIR_ENV_VAR = "REPRO_CACHE_DIR"

#: Default cache directory (relative to the working directory).
DEFAULT_CACHE_DIR = ".repro-cache"

_package_fingerprint_cache: Optional[str] = None


def default_cache_dir() -> str:
    """The cache directory: ``$REPRO_CACHE_DIR`` or ``.repro-cache``."""
    return os.environ.get(CACHE_DIR_ENV_VAR) or DEFAULT_CACHE_DIR


def _code_fingerprint() -> str:
    """Hash of every ``.py`` file in the installed ``repro`` package.

    Experiments pull numbers from ``analysis``/``core``/``backend``/...,
    so a per-module hash would serve stale results after an edit anywhere
    else in the library; hashing the whole package trades cache lifetime
    for correctness.  Memoized per process (source does not change mid-run).
    """
    global _package_fingerprint_cache
    if _package_fingerprint_cache is None:
        import repro

        package_root = os.path.dirname(os.path.abspath(repro.__file__))
        digest = hashlib.sha256()
        for directory, _, filenames in sorted(os.walk(package_root)):
            for filename in sorted(filenames):
                if not filename.endswith(".py"):
                    continue
                path = os.path.join(directory, filename)
                digest.update(os.path.relpath(path, package_root).encode("utf-8"))
                try:
                    with open(path, "rb") as handle:
                        digest.update(handle.read())
                except OSError:  # pragma: no cover - deleted source mid-run
                    digest.update(b"<unreadable>")
        _package_fingerprint_cache = digest.hexdigest()
    return _package_fingerprint_cache


class ResultCache:
    """Directory of content-addressed experiment results."""

    def __init__(self, directory: Optional[str] = None) -> None:
        self.directory = directory or default_cache_dir()

    def key_for(
        self,
        spec: ExperimentSpec,
        params_dict: Mapping[str, Any],
        backend: Optional[str],
    ) -> str:
        """The content hash addressing ``spec`` run with these inputs."""
        material = json.dumps(
            {
                "schema": RESULT_SCHEMA_VERSION,
                "experiment_id": spec.experiment_id,
                "params": params_dict,
                "backend": backend if spec.backend_sensitive else "-",
                "code": _code_fingerprint(),
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(material.encode("utf-8")).hexdigest()

    def _path(self, key: str) -> str:
        return os.path.join(self.directory, f"{key}.json")

    def load(self, key: str) -> Optional[ExperimentResult]:
        """The cached result for ``key``, or ``None`` on miss/corruption."""
        try:
            with open(self._path(key), "r", encoding="utf-8") as handle:
                document = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None
        try:
            result = ExperimentResult.from_dict(document)
        except OrchestrationError:
            return None
        return result.with_volatile(
            wall_time_seconds=result.wall_time_seconds, cached=True
        )

    def store(self, key: str, result: ExperimentResult) -> str:
        """Atomically persist ``result`` under ``key``; returns the file path."""
        path = self._path(key)
        try:
            os.makedirs(self.directory, exist_ok=True)
            descriptor, temp_path = tempfile.mkstemp(
                dir=self.directory, prefix=".tmp-", suffix=".json"
            )
            try:
                with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
                    json.dump(result.to_dict(), handle, sort_keys=True, allow_nan=False)
                    handle.write("\n")
                os.replace(temp_path, path)
            except BaseException:
                try:
                    os.unlink(temp_path)
                except OSError:
                    pass
                raise
        except OSError as error:
            raise OrchestrationError(
                f"cannot write cache entry to {path!r}: {error}"
            ) from error
        return path

    def __len__(self) -> int:
        """Number of committed (non-temporary) entries on disk."""
        try:
            names = os.listdir(self.directory)
        except OSError:
            return 0
        return sum(1 for name in names if name.endswith(".json") and not name.startswith(".tmp-"))
