"""Execution engine: serial or process-parallel, cache-aware, deterministic.

:func:`run_experiments` executes a selection of specs and returns their
structured results in selection order.  Determinism is by construction:

- every experiment derives all randomness from its own params/seed, never
  from process-global state, so execution order cannot change any number;
- process-parallel runs resolve the compute backend **once** in the parent
  and pass the resolved name to every worker, so a fork/spawn child cannot
  auto-detect a different backend than the serial run would;
- cache hits return the stored document, whose canonical view is
  byte-identical to what a fresh run produces (the volatile wall-time /
  cache-provenance fields live outside the canonical view).

The process pool is the scaling seam for the pure-Python backend, which the
thread-based sweep fan-out of PR 1 cannot speed up (GIL); NumPy-backend runs
also benefit because the 13 experiments are independent processes' worth of
work.

:func:`_pool_execute` is also the HTTP result service's compute seam
(``repro.serve``): cache misses are submitted to its bounded executor with
exactly the arguments a ``run_experiments`` pool worker would receive, so a
served result is computed by the same code path as a CLI run.  Distributed
execution replaces the executor without touching this module or any
experiment.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.backend import get_backend
from repro.backend.selection import use_backend
from repro.backend.timing import KERNEL_TIMINGS, peak_rss_kb
from repro.experiments.orchestrator.cache import ResultCache
from repro.experiments.orchestrator.resilient import DEFAULT_RETRIES, ResilientExecutor
from repro.experiments.orchestrator.result import ExperimentResult, jsonify
from repro.experiments.orchestrator.spec import ExperimentSpec
from repro.testing.chaos import chaos_checkpoint


def execute_spec(
    spec: ExperimentSpec,
    params: Any = None,
    *,
    backend: Optional[str] = None,
) -> ExperimentResult:
    """Run one experiment in-process and wrap its payload with metadata.

    ``backend`` (a backend name) is installed as the process default for the
    duration of the build so every nested estimate resolves consistently;
    ``None`` keeps the ambient resolution (default / env var / auto).
    """
    if params is None:
        params = spec.default_params()
    params_doc = spec.params_dict(params)
    # Builds run in-process (or inside a pool worker's process), so the
    # registry delta over the build is exactly this experiment's kernel work.
    timings_before = KERNEL_TIMINGS.snapshot()
    start = time.perf_counter()
    if backend is None:
        payload = spec.build(params)
    else:
        with use_backend(backend):
            payload = spec.build(params)
    elapsed = time.perf_counter() - start
    resolved = get_backend(backend).name if spec.backend_sensitive else None
    return ExperimentResult(
        experiment_id=spec.experiment_id,
        params=params_doc,
        tables=tuple(payload.tables),
        metrics=jsonify(payload.metrics, where=f"{spec.experiment_id} metrics"),
        backend=resolved,
        seed=spec.seed,
        wall_time_seconds=elapsed,
        kernel_counters=KERNEL_TIMINGS.delta_since(timings_before),
        peak_rss_kb=peak_rss_kb(),
    )


def _pool_execute(
    experiment_id: str, params_doc: Dict[str, Any], backend: Optional[str]
) -> Dict[str, Any]:
    """Worker entry point: look the spec up by id and run it.

    Returns the full serialized result (plain dict) so only JSON-safe data
    crosses the process boundary.  Submitted by :func:`run_experiments`
    pool workers and by the result service (``repro.serve``) — keep the
    signature JSON-scalar so any executor can carry it.
    """
    from repro.experiments.orchestrator import registry

    chaos_checkpoint("task", key=experiment_id)
    spec = registry.get_spec(experiment_id)
    params = spec.params_from_dict(params_doc) if spec.params_type is not None else None
    return execute_spec(spec, params, backend=backend).to_dict()


def run_experiments(
    specs: Sequence[ExperimentSpec],
    *,
    backend: Optional[str] = None,
    parallel: bool = False,
    max_workers: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    force: bool = False,
    task_timeout: Optional[float] = None,
    retries: int = DEFAULT_RETRIES,
) -> List[ExperimentResult]:
    """Run ``specs`` (default parameters) and return results in spec order.

    Args:
        backend: compute-backend name; resolved once so serial, parallel and
            sharded runs agree.  ``None`` uses the ambient resolution.
        parallel: fan the experiments out over a process pool.
        max_workers: pool size (default: ``os.cpu_count()``).
        cache: optional :class:`ResultCache`; fresh results are stored,
            prior results with matching content keys are returned directly.
        force: recompute even on a cache hit (the fresh result still
            overwrites the cache entry).
        task_timeout: per-attempt deadline (seconds) for each parallel task;
            a hung worker is terminated and its task retried.  ``None``
            waits forever.
        retries: how many times a parallel task lost to a worker crash,
            timeout or injected fault is re-dispatched before the run fails.
            Experiments are pure functions of their params, so a retried
            task returns bit-identical results and determinism survives
            worker loss.
    """
    effective_backend = get_backend(backend).name
    results: List[Optional[ExperimentResult]] = [None] * len(specs)
    pending: List[Tuple[int, ExperimentSpec, Dict[str, Any], Optional[str]]] = []
    for index, spec in enumerate(specs):
        params_doc = spec.params_dict()
        # `is not None`, not truthiness: ResultCache.__len__ makes an empty
        # cache falsy, which must still compute keys and store results.
        key = (
            cache.key_for(spec, params_doc, effective_backend)
            if cache is not None
            else None
        )
        if cache is not None and not force:
            hit = cache.load(key)
            if hit is not None and hit.experiment_id == spec.experiment_id:
                results[index] = hit
                continue
        pending.append((index, spec, params_doc, key))

    if parallel and len(pending) > 1:
        pool = ResilientExecutor(
            max_workers=max_workers, deadline=task_timeout, retries=retries
        )
        try:
            futures = [
                (index, spec, key, pool.submit(_pool_execute, spec.experiment_id, params_doc, effective_backend))
                for index, spec, params_doc, key in pending
            ]
            for index, spec, key, future in futures:
                result = ExperimentResult.from_dict(future.result())
                results[index] = result
                if cache is not None and key is not None:
                    cache.store(key, result)
        finally:
            pool.shutdown(wait=True, cancel_futures=True)
    else:
        for index, spec, params_doc, key in pending:
            result = execute_spec(spec, backend=effective_backend)
            results[index] = result
            if cache is not None and key is not None:
                cache.store(key, result)

    return [result for result in results if result is not None]
