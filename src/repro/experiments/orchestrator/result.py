"""Structured experiment results and the ``RESULTS.json`` document.

Every experiment produces an :class:`ExperimentResult`: the tables it used to
print, a flat dictionary of headline metrics, and run metadata (backend, seed,
wall time).  Two serialized views exist:

- the **canonical** view (:meth:`ExperimentResult.canonical_dict` /
  :meth:`ExperimentResult.canonical_json`) excludes volatile fields (wall
  time, cache provenance) and is byte-identical for a fixed seed regardless
  of execution mode — serial, process-parallel, sharded, cache hit or miss.
  Golden snapshots and the ``RESULTS.json`` ``results`` section store this
  view;
- the **full** view (:meth:`ExperimentResult.to_dict`) adds the volatile
  fields and is what the on-disk result cache stores.

``RESULTS.json`` aggregates many canonical results; sharded CI runs each
write their own document and :func:`merge_results_documents` unions them into
exactly what an unsharded run would have produced.
"""

from __future__ import annotations

import json
import numbers
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.report import Table
from repro.core.exceptions import OrchestrationError, ReproError

#: Schema version stamped into every serialized result and results document.
RESULT_SCHEMA_VERSION = 1


def jsonify(value: Any, *, where: str = "value") -> Any:
    """Normalize ``value`` to pure JSON types (dict/list/str/int/float/bool/None).

    Tuples become lists, mapping keys must be strings, and NumPy scalars are
    unwrapped via ``.item()`` so serialized documents never depend on which
    backend produced them.  Anything else raises
    :class:`~repro.core.exceptions.OrchestrationError` — results must be
    machine-readable, so unserializable payloads are a bug in the experiment
    glue, caught here rather than at ``json.dumps`` time.
    """
    if type(value).__module__.startswith("numpy") and hasattr(value, "item"):
        value = value.item()
    if value is None or isinstance(value, (bool, str)):
        return value
    if isinstance(value, numbers.Integral):
        return int(value)
    if isinstance(value, numbers.Real):
        result = float(value)
        if result != result or result in (float("inf"), float("-inf")):
            raise OrchestrationError(f"{where} is not a finite number: {value!r}")
        return result
    if isinstance(value, (list, tuple)):
        return [jsonify(item, where=f"{where}[{index}]") for index, item in enumerate(value)]
    if isinstance(value, Mapping):
        out: Dict[str, Any] = {}
        for key, item in value.items():
            if not isinstance(key, str):
                raise OrchestrationError(f"{where} has a non-string key: {key!r}")
            out[key] = jsonify(item, where=f"{where}[{key!r}]")
        return out
    raise OrchestrationError(
        f"{where} of type {type(value).__name__} cannot be serialized to JSON"
    )


@dataclass(frozen=True)
class ResultPayload:
    """What an experiment's build function returns: tables plus metrics.

    The engine wraps this with metadata (backend, seed, wall time) to form
    the full :class:`ExperimentResult`.
    """

    tables: Tuple[Table, ...]
    metrics: Mapping[str, Any]


@dataclass(frozen=True)
class ExperimentResult:
    """One experiment's structured outcome.

    Attributes:
        experiment_id: registry id of the experiment.
        params: the parameter dataclass as a JSON-safe dict.
        tables: the tables the text renderer prints, with raw cell values.
        metrics: headline scalars (and small JSON structures) downstream
            consumers read without parsing tables.
        backend: resolved compute-backend name for backend-sensitive
            experiments, ``None`` for backend-independent ones (their numbers
            are identical on every backend).
        seed: the experiment's base RNG seed (``None`` when deterministic).
        wall_time_seconds: volatile — excluded from the canonical view.
        cached: volatile — whether this result came from the on-disk cache.
        kernel_counters: volatile — per-kernel ``{calls, seconds, trials}``
            accumulated while this result was built (empty on cache hits and
            for experiments that never touch the backend kernels).  Like wall
            time, it describes *this run*, not the result, so it never enters
            the canonical view.
        peak_rss_kb: volatile — the building process's peak resident set size
            in KiB, sampled right after the build (0 on cache hits and for
            documents that predate the field).  A lifetime high-water mark of
            whichever process ran the build — a pool worker under parallel
            execution — so the serve layer can surface build memory pressure
            in ``/metrics`` without instrumenting workers separately.
    """

    experiment_id: str
    params: Mapping[str, Any]
    tables: Tuple[Table, ...]
    metrics: Mapping[str, Any]
    backend: Optional[str] = None
    seed: Optional[int] = None
    schema_version: int = RESULT_SCHEMA_VERSION
    wall_time_seconds: float = 0.0
    cached: bool = False
    kernel_counters: Mapping[str, Mapping[str, float]] = field(default_factory=dict)
    peak_rss_kb: int = 0

    def canonical_dict(self) -> Dict[str, Any]:
        """The deterministic JSON view (no wall time, no cache provenance)."""
        return {
            "schema_version": self.schema_version,
            "experiment_id": self.experiment_id,
            "backend": self.backend,
            "seed": self.seed,
            "params": jsonify(self.params, where=f"{self.experiment_id} params"),
            "metrics": jsonify(self.metrics, where=f"{self.experiment_id} metrics"),
            "tables": [
                jsonify(table.to_dict(), where=f"{self.experiment_id} table {index}")
                for index, table in enumerate(self.tables)
            ],
        }

    def canonical_json(self) -> str:
        """Compact sorted-key JSON of :meth:`canonical_dict` (byte-stable)."""
        return json.dumps(
            self.canonical_dict(), sort_keys=True, separators=(",", ":"), allow_nan=False
        )

    def to_dict(self) -> Dict[str, Any]:
        """The full serialized view, volatile fields included."""
        document = self.canonical_dict()
        document["wall_time_seconds"] = float(self.wall_time_seconds)
        document["cached"] = bool(self.cached)
        document["kernel_counters"] = jsonify(
            self.kernel_counters, where=f"{self.experiment_id} kernel counters"
        )
        document["peak_rss_kb"] = int(self.peak_rss_kb)
        return document

    @classmethod
    def from_dict(cls, document: Mapping[str, Any]) -> "ExperimentResult":
        """Rebuild a result from :meth:`to_dict` / :meth:`canonical_dict` output."""
        if not isinstance(document, Mapping):
            raise OrchestrationError(
                f"experiment result document must be an object, got {type(document).__name__}"
            )
        try:
            tables = tuple(Table.from_dict(entry) for entry in document.get("tables", ()))
            return cls(
                experiment_id=document["experiment_id"],
                params=dict(document["params"]),
                tables=tables,
                metrics=dict(document["metrics"]),
                backend=document.get("backend"),
                seed=document.get("seed"),
                schema_version=int(document.get("schema_version", RESULT_SCHEMA_VERSION)),
                wall_time_seconds=float(document.get("wall_time_seconds", 0.0)),
                cached=bool(document.get("cached", False)),
                kernel_counters=dict(document.get("kernel_counters") or {}),
                peak_rss_kb=int(document.get("peak_rss_kb", 0)),
            )
        except (KeyError, TypeError, ValueError, ReproError) as error:
            # ReproError covers AnalysisError from Table.from_dict: every
            # malformed document surfaces as one exception type here.
            raise OrchestrationError(f"malformed experiment result document: {error}") from error

    def with_volatile(
        self,
        *,
        wall_time_seconds: float,
        cached: bool,
        kernel_counters: Optional[Mapping[str, Mapping[str, float]]] = None,
        peak_rss_kb: Optional[int] = None,
    ) -> "ExperimentResult":
        """A copy with the volatile fields replaced (canonical view unchanged)."""
        return ExperimentResult(
            experiment_id=self.experiment_id,
            params=self.params,
            tables=self.tables,
            metrics=self.metrics,
            backend=self.backend,
            seed=self.seed,
            schema_version=self.schema_version,
            wall_time_seconds=wall_time_seconds,
            cached=cached,
            kernel_counters=(
                self.kernel_counters if kernel_counters is None else kernel_counters
            ),
            peak_rss_kb=(self.peak_rss_kb if peak_rss_kb is None else peak_rss_kb),
        )


def results_document(
    results: Sequence[ExperimentResult],
    *,
    shard: Optional[str] = None,
    backend: Optional[str] = None,
) -> Dict[str, Any]:
    """Build the ``RESULTS.json`` document for one run.

    The ``results`` section maps experiment id to the canonical result and is
    what sharded runs union back together; the ``run`` section carries the
    volatile per-run facts (order, wall times, cache hits, shard label).
    """
    ids = [result.experiment_id for result in results]
    duplicates = {x for x in ids if ids.count(x) > 1}
    if duplicates:
        raise OrchestrationError(
            f"duplicate experiment results in one document: {', '.join(sorted(duplicates))}"
        )
    return {
        "schema_version": RESULT_SCHEMA_VERSION,
        "results": {result.experiment_id: result.canonical_dict() for result in results},
        "run": {
            "experiments": ids,
            "shards": [shard] if shard else [],
            "backend": backend,
            "wall_time_seconds": {
                result.experiment_id: float(result.wall_time_seconds) for result in results
            },
            "cached": {result.experiment_id: bool(result.cached) for result in results},
        },
    }


def merge_results_documents(documents: Iterable[Mapping[str, Any]]) -> Dict[str, Any]:
    """Union several ``RESULTS.json`` documents (e.g. the shards of one run).

    Disjoint shards merge into exactly the unsharded document's ``results``
    section.  When the same experiment appears in several documents with
    *different* canonical content the merge fails loudly — that means the
    shards came from different code or parameters.
    """
    merged_results: Dict[str, Any] = {}
    experiments: List[str] = []
    shards: List[str] = []
    wall_times: Dict[str, float] = {}
    cached: Dict[str, bool] = {}
    backend: Optional[str] = None
    seen_any = False
    for document in documents:
        seen_any = True
        if not isinstance(document, Mapping):
            raise OrchestrationError(
                f"results document must be an object, got {type(document).__name__}"
            )
        version = document.get("schema_version")
        if version != RESULT_SCHEMA_VERSION:
            raise OrchestrationError(
                f"cannot merge results document with schema_version={version!r} "
                f"(expected {RESULT_SCHEMA_VERSION})"
            )
        for experiment_id, entry in document.get("results", {}).items():
            existing = merged_results.get(experiment_id)
            if existing is not None and existing != entry:
                raise OrchestrationError(
                    f"conflicting results for {experiment_id!r} while merging "
                    "(shards ran different code or parameters?)"
                )
            merged_results[experiment_id] = entry
        run = document.get("run", {})
        for experiment_id in run.get("experiments", ()):
            if experiment_id not in experiments:
                experiments.append(experiment_id)
        for shard in run.get("shards", ()):
            if shard not in shards:
                shards.append(shard)
        wall_times.update(run.get("wall_time_seconds", {}))
        cached.update(run.get("cached", {}))
        backend = backend or run.get("backend")
    if not seen_any:
        raise OrchestrationError("no results documents to merge")
    return {
        "schema_version": RESULT_SCHEMA_VERSION,
        "results": merged_results,
        "run": {
            "experiments": experiments,
            "shards": shards,
            "backend": backend,
            "wall_time_seconds": wall_times,
            "cached": cached,
        },
    }


def write_results_document(document: Mapping[str, Any], path: str, *, merge: bool = False) -> None:
    """Write (or, with ``merge=True``, merge into) a ``RESULTS.json`` file."""
    if merge:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                existing = json.load(handle)
        except FileNotFoundError:
            existing = None
        except (OSError, json.JSONDecodeError) as error:
            raise OrchestrationError(f"cannot merge into {path!r}: {error}") from error
        if existing is not None:
            document = merge_results_documents([existing, document])
    try:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True, allow_nan=False)
            handle.write("\n")
    except OSError as error:
        raise OrchestrationError(f"cannot write results document to {path!r}: {error}") from error


def load_results_document(path: str) -> Dict[str, Any]:
    """Read a ``RESULTS.json`` document, validating its schema version."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        raise OrchestrationError(f"cannot read results document {path!r}: {error}") from error
    if not isinstance(document, dict):
        raise OrchestrationError(
            f"results document {path!r} must be a JSON object, got {type(document).__name__}"
        )
    if document.get("schema_version") != RESULT_SCHEMA_VERSION:
        raise OrchestrationError(
            f"results document {path!r} has schema_version="
            f"{document.get('schema_version')!r} (expected {RESULT_SCHEMA_VERSION})"
        )
    return document
