"""Proposition 3: configuration abundance buys resilience at a message cost.

The experiment fixes a κ-optimal configuration distribution and sweeps the
configuration abundance ω.  For each ω it reports:

- the largest voting-power fraction a coalition of rational operators can
  control (which shrinks with ω, because each operator only runs 1/ω of its
  configuration's power);
- the largest fraction a single shared vulnerability compromises (which does
  *not* change with ω — the proposition's caveat that abundance is no defence
  against exploit-based faults);
- the per-round message complexity (which grows with ω — the trade-off the
  paper highlights), for both quadratic (PBFT-like) and linear
  (HotStuff-like) communication patterns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.analysis.report import Table
from repro.core.distribution import ConfigurationDistribution
from repro.core.exceptions import ExperimentError
from repro.core.propositions import (
    Proposition3Result,
    check_proposition_3,
    proposition_3_holds,
)
from repro.experiments.orchestrator import (
    ExperimentResult,
    ExperimentSpec,
    ResultPayload,
    execute_spec,
)


@dataclass(frozen=True)
class Proposition3Sweep:
    """The ω sweep plus verdicts and the linear-message comparison."""

    kappa: int
    colluding_operators: int
    quadratic_results: Tuple[Proposition3Result, ...]
    linear_results: Tuple[Proposition3Result, ...]
    holds: bool


def run_proposition3(
    *,
    kappa: int = 8,
    abundances: Sequence[int] = (1, 2, 4, 8, 16, 32, 64),
    colluding_operators: int = 2,
) -> Proposition3Sweep:
    """Run the Proposition 3 abundance sweep.

    Args:
        kappa: number of distinct configurations (κ-optimal distribution).
        abundances: ω values to sweep.
        colluding_operators: size of the rational-operator coalition.
    """
    if kappa < 2:
        raise ExperimentError("kappa must be at least 2")
    if not abundances:
        raise ExperimentError("at least one abundance value is required")
    if colluding_operators < 1:
        raise ExperimentError("the coalition needs at least one operator")
    distribution = ConfigurationDistribution.uniform_labels(kappa)
    quadratic = check_proposition_3(
        distribution,
        list(abundances),
        colluding_operators=colluding_operators,
        message_model="quadratic",
    )
    linear = check_proposition_3(
        distribution,
        list(abundances),
        colluding_operators=colluding_operators,
        message_model="linear",
    )
    return Proposition3Sweep(
        kappa=kappa,
        colluding_operators=colluding_operators,
        quadratic_results=tuple(quadratic),
        linear_results=tuple(linear),
        holds=proposition_3_holds(quadratic) and proposition_3_holds(linear),
    )


def proposition3_table(sweep: Proposition3Sweep) -> Table:
    """The ω sweep as a printable table."""
    table = Table(
        headers=(
            "abundance (omega)",
            "replicas",
            "rational takeover",
            "exploit takeover",
            "messages (quadratic)",
            "messages (linear)",
        )
    )
    for quadratic, linear in zip(sweep.quadratic_results, sweep.linear_results):
        table.add_row(
            quadratic.abundance,
            quadratic.replica_count,
            quadratic.max_rational_takeover,
            quadratic.max_exploit_takeover,
            quadratic.message_complexity,
            linear.message_complexity,
        )
    return table


@dataclass(frozen=True)
class Proposition3Params:
    """Orchestrator parameters for the Proposition 3 abundance sweep."""

    kappa: int = 8
    abundances: Tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64)
    colluding_operators: int = 2


def build_payload(params: Proposition3Params = None) -> ResultPayload:
    """Run the Proposition 3 sweep as a structured payload."""
    params = params or Proposition3Params()
    sweep = run_proposition3(
        kappa=params.kappa,
        abundances=tuple(params.abundances),
        colluding_operators=params.colluding_operators,
    )
    table = proposition3_table(sweep)
    table.title = "abundance_sweep"
    return ResultPayload(
        tables=(table,),
        metrics={"holds": sweep.holds},
    )


def render_result(result: ExperimentResult) -> str:
    """The classic Proposition 3 stdout report."""
    return "\n".join(
        [
            "Proposition 3 -- configuration abundance vs rational-operator resilience "
            f"(kappa={result.params['kappa']}, coalition={result.params['colluding_operators']})",
            result.tables[0].render(),
            "",
            f"Proposition 3 trade-off observed: {result.metrics['holds']}",
        ]
    )


SPEC = ExperimentSpec(
    experiment_id="proposition3",
    title="Proposition 3: configuration abundance vs rational-operator resilience",
    build=build_payload,
    render=render_result,
    params_type=Proposition3Params,
    tags=("paper", "proposition"),
    seed=None,
    backend_sensitive=False,
)


def main(argv: Sequence[str] = ()) -> None:
    """Run the Proposition 3 experiment and print the table."""
    print(render_result(execute_spec(SPEC)))


if __name__ == "__main__":  # pragma: no cover - manual entry point
    main()
