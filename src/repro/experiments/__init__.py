"""Experiment drivers: one module per figure / example / proposition.

Every module exposes a ``run_*`` function returning structured results and a
``main()`` entry point that prints the corresponding table or series, so each
experiment can be regenerated with ``python -m repro.experiments.<name>``.
The mapping from paper artifact to module is recorded in DESIGN.md §4 and the
measured-vs-paper comparison in EXPERIMENTS.md.
"""

from repro.experiments.campaign_budget import run_campaign_budget
from repro.experiments.campaign_churn import run_campaign_churn
from repro.experiments.campaign_reliability import run_campaign_reliability
from repro.experiments.example1 import run_example1
from repro.experiments.figure1 import run_figure1
from repro.experiments.prop1 import run_proposition1
from repro.experiments.prop2 import run_proposition2
from repro.experiments.prop3 import run_proposition3
from repro.experiments.safety_violation import run_safety_violation
from repro.experiments.attestation_coverage import run_attestation_coverage
from repro.experiments.two_class import run_two_class
from repro.experiments.protocol_safety import run_protocol_safety
from repro.experiments.diversity_ablation import run_diversity_ablation
from repro.experiments.vulnerability_window import run_vulnerability_window
from repro.experiments.decentralized_pools import run_decentralized_pools
from repro.experiments.component_exposure import run_component_exposure
from repro.experiments.ecosystem_scale import run_ecosystem_scale

__all__ = [
    "run_attestation_coverage",
    "run_campaign_budget",
    "run_campaign_churn",
    "run_campaign_reliability",
    "run_component_exposure",
    "run_decentralized_pools",
    "run_diversity_ablation",
    "run_ecosystem_scale",
    "run_example1",
    "run_figure1",
    "run_proposition1",
    "run_proposition2",
    "run_proposition3",
    "run_protocol_safety",
    "run_safety_violation",
    "run_two_class",
    "run_vulnerability_window",
]
