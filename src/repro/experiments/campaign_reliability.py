"""Safety-violation probability as a function of exploit reliability.

Section II-B's adversary exploits shared implementation flaws, but a
real-world exploit rarely lands on every exposed replica: sandboxing, ASLR,
version skew and plain flakiness make each attempt succeed only with some
probability.  This experiment sweeps that per-replica success probability
over a fixed ecosystem-sampled population: worst-case target selection
depends only on exposure (never on success probabilities), so the
:class:`~repro.faults.engine.GridCampaignEngine` runs the whole sweep on one
population/catalog pair as a single fused kernel call, each grid point
overriding the per-replica success probability.

Expected shape: the violation probability climbs from near 0 for unreliable
exploits toward the deterministic-campaign verdict at reliability 1.0 —
quantifying how much of the monoculture risk survives even flaky zero-days.

The campaign kernels draw from a counter-based RNG stream, so the numbers
are identical on every compute backend (the spec is not backend-sensitive).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.analysis.report import Table
from repro.core.exceptions import ExperimentError
from repro.core.resilience import ProtocolFamily
from repro.experiments.orchestrator import (
    ExperimentResult,
    ExperimentSpec,
    ResultPayload,
    execute_spec,
)
from repro.faults.engine import GridCampaignEngine
from repro.faults.scenarios import ecosystem_scenario, reliability_grid


@dataclass(frozen=True)
class CampaignReliabilityRow:
    """One exploit-success probability's batched-campaign estimates."""

    exploit_probability: float
    violation_probability_bft: float
    violation_probability_majority: float
    mean_compromised_fraction: float


@dataclass(frozen=True)
class CampaignReliabilityResult:
    """All reliability points, in sweep order."""

    population_size: int
    catalog_size: int
    budget: int
    rows: Tuple[CampaignReliabilityRow, ...]
    monotone_increasing: bool


def run_campaign_reliability(
    *,
    ecosystem: str = "diverse",
    population_size: int = 48,
    exploit_probabilities: Sequence[float] = (0.3, 0.45, 0.6, 0.75, 0.9),
    budget: int = 2,
    trials: int = 400,
    seed: int = 19,
) -> CampaignReliabilityResult:
    """Sweep exploit reliability with batched worst-case campaign trials."""
    if not exploit_probabilities:
        raise ExperimentError("at least one exploit probability is required")
    if budget <= 0:
        raise ExperimentError(f"exploit budget must be positive, got {budget}")
    # One scenario, one engine, one fused kernel call for the whole sweep:
    # only the exploit reliability varies across points, and the grid's
    # per-point success-probability override reproduces the looped sweep's
    # one-catalog-per-probability scenarios bit for bit (worst-case target
    # selection never consults success probabilities).
    scenario = ecosystem_scenario(
        ecosystem=ecosystem,
        population_size=population_size,
        seed=seed,
        exploit_probability=exploit_probabilities[0],
    )
    catalog_size = len(scenario.catalog)
    engine = GridCampaignEngine(scenario.population, scenario.catalog)
    estimates = engine.estimate_grid(
        reliability_grid(
            tuple(exploit_probabilities),
            budget=budget,
            families=(ProtocolFamily.BFT, ProtocolFamily.NAKAMOTO),
        ),
        trials=trials,
        seed=seed,
    )
    rows = []
    for probability, point in zip(exploit_probabilities, estimates):
        bft = point.estimate_at(0)
        majority = point.estimate_at(1)
        rows.append(
            CampaignReliabilityRow(
                exploit_probability=probability,
                violation_probability_bft=bft.violation_probability,
                violation_probability_majority=majority.violation_probability,
                mean_compromised_fraction=bft.mean_compromised_fraction,
            )
        )
    series = [row.violation_probability_bft for row in rows]
    monotone = all(later >= earlier - 0.05 for earlier, later in zip(series, series[1:]))
    return CampaignReliabilityResult(
        population_size=population_size,
        catalog_size=catalog_size,
        budget=budget,
        rows=tuple(rows),
        monotone_increasing=monotone,
    )


def campaign_reliability_table(result: CampaignReliabilityResult) -> Table:
    """The reliability sweep as a printable table."""
    table = Table(
        headers=(
            "exploit success probability",
            "P[violation] BFT (1/3)",
            "P[violation] majority (1/2)",
            "mean compromised fraction",
        )
    )
    for row in result.rows:
        table.add_row(
            row.exploit_probability,
            row.violation_probability_bft,
            row.violation_probability_majority,
            row.mean_compromised_fraction,
        )
    return table


@dataclass(frozen=True)
class CampaignReliabilityParams:
    """Orchestrator parameters for the exploit-reliability sweep."""

    ecosystem: str = "diverse"
    population_size: int = 48
    exploit_probabilities: Tuple[float, ...] = (0.3, 0.45, 0.6, 0.75, 0.9)
    budget: int = 2
    trials: int = 400
    seed: int = 19


def build_payload(params: CampaignReliabilityParams = None) -> ResultPayload:
    """Run the reliability sweep as a structured payload."""
    params = params or CampaignReliabilityParams()
    result = run_campaign_reliability(
        ecosystem=params.ecosystem,
        population_size=params.population_size,
        exploit_probabilities=tuple(params.exploit_probabilities),
        budget=params.budget,
        trials=params.trials,
        seed=params.seed,
    )
    table = campaign_reliability_table(result)
    table.title = "reliability_sweep"
    return ResultPayload(
        tables=(table,),
        metrics={
            "catalog_size": result.catalog_size,
            "budget": result.budget,
            "monotone_increasing": result.monotone_increasing,
        },
    )


def render_result(result: ExperimentResult) -> str:
    """The campaign-reliability stdout report."""
    return "\n".join(
        [
            "Safety-violation probability vs exploit reliability "
            f"(budget={result.metrics['budget']}, "
            f"{result.params['population_size']} replicas, "
            f"{result.params['trials']} trials)",
            result.tables[0].render(),
            "",
            "violation probability grows with exploit reliability: "
            f"{result.metrics['monotone_increasing']}",
        ]
    )


SPEC = ExperimentSpec(
    experiment_id="campaign_reliability",
    title="Batched campaigns: violation probability vs exploit reliability",
    build=build_payload,
    render=render_result,
    params_type=CampaignReliabilityParams,
    tags=("extension", "campaign"),
    seed=19,
    backend_sensitive=False,
)


def main(argv: Sequence[str] = ()) -> None:
    """Run the exploit-reliability sweep and print the table."""
    print(render_result(execute_spec(SPEC)))


if __name__ == "__main__":  # pragma: no cover - manual entry point
    main()
