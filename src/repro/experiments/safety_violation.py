"""Safety-violation probability as a function of configuration diversity.

This experiment quantifies the Section II-C condition under uncertainty about
which components are vulnerable: for a family of configuration censuses with
increasing entropy — from a monoculture through the Bitcoin oligopoly to a
κ-optimal uniform distribution — it estimates (by Monte Carlo) the probability
that an attacker exploiting a bounded number of shared vulnerabilities
compromises more voting power than the protocol tolerates.

The expected shape: the violation probability is near 1 for low-entropy
censuses and falls sharply as the census approaches κ-optimality, for both
the BFT (1/3) and Nakamoto / hybrid (1/2) tolerance levels.

The estimator routes through the campaign engine's census-mode seam
(:func:`repro.faults.engine.run_census_trials`), so this experiment shares
its backend entry point with the population-matrix campaign sweeps while its
per-backend RNG streams — and golden snapshots — stay unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.analysis.monte_carlo import estimate_violation_probability
from repro.analysis.sweep import mapping_sweep
from repro.backend import get_backend
from repro.backend.selection import BackendLike
from repro.analysis.report import Table
from repro.core.distribution import ConfigurationDistribution
from repro.core.exceptions import ExperimentError
from repro.core.resilience import ProtocolFamily
from repro.datasets.bitcoin_pools import figure1_distribution
from repro.datasets.generators import oligopoly_distribution, uniform_distribution, zipf_distribution
from repro.experiments.orchestrator import (
    ExperimentResult,
    ExperimentSpec,
    ResultPayload,
    execute_spec,
)


@dataclass(frozen=True)
class SafetyViolationRow:
    """One census's violation probabilities."""

    label: str
    entropy_bits: float
    kappa: int
    violation_probability_bft: float
    violation_probability_majority: float


@dataclass(frozen=True)
class SafetyViolationResult:
    """All censuses, ordered by increasing entropy."""

    rows: Tuple[SafetyViolationRow, ...]
    vulnerability_probability: float
    exploit_budget: int
    monotone_decreasing: bool


def default_censuses() -> Dict[str, ConfigurationDistribution]:
    """The census family used by the experiment (roughly increasing entropy)."""
    return {
        "monoculture (1 config)": ConfigurationDistribution({"only-config": 1.0}),
        "duopoly 70/30": ConfigurationDistribution({"a": 0.7, "b": 0.3}),
        "zipf-16 (s=1.2)": zipf_distribution(16, 1.2),
        "bitcoin pools (x=101)": figure1_distribution(101),
        "oligopoly 10@96% + 500": oligopoly_distribution(10, 0.96, 500),
        "uniform-16": uniform_distribution(16),
        "uniform-64": uniform_distribution(64),
        "uniform-256": uniform_distribution(256),
    }


def run_safety_violation(
    *,
    censuses: Dict[str, ConfigurationDistribution] = None,
    vulnerability_probability: float = 0.25,
    exploit_budget: int = 1,
    trials: int = 2000,
    seed: int = 7,
    backend: BackendLike = None,
    parallel: bool = False,
    max_workers: Optional[int] = None,
) -> SafetyViolationResult:
    """Estimate violation probabilities across the census family.

    Per-census seeds are fixed (``seed + index``), so ``parallel=True`` fans
    the censuses out over a thread pool without changing any number in the
    result.
    """
    if censuses is None:
        censuses = default_censuses()
    if not censuses:
        raise ExperimentError("at least one census is required")
    resolved = get_backend(backend)

    def estimate_row(index: int, label: str, census: ConfigurationDistribution) -> SafetyViolationRow:
        bft = estimate_violation_probability(
            census,
            family=ProtocolFamily.BFT,
            vulnerability_probability=vulnerability_probability,
            exploit_budget=exploit_budget,
            trials=trials,
            seed=seed + index,
            backend=resolved,
        )
        majority = estimate_violation_probability(
            census,
            family=ProtocolFamily.NAKAMOTO,
            vulnerability_probability=vulnerability_probability,
            exploit_budget=exploit_budget,
            trials=trials,
            seed=seed + index,
            backend=resolved,
        )
        return SafetyViolationRow(
            label=label,
            entropy_bits=census.entropy(),
            kappa=census.support_size(),
            violation_probability_bft=bft.violation_probability,
            violation_probability_majority=majority.violation_probability,
        )

    rows = mapping_sweep(
        censuses, estimate_row, parallel=parallel, max_workers=max_workers
    )
    rows.sort(key=lambda row: row.entropy_bits)
    bft_series = [row.violation_probability_bft for row in rows]
    monotone = all(b <= a + 0.05 for a, b in zip(bft_series, bft_series[1:]))
    return SafetyViolationResult(
        rows=tuple(rows),
        vulnerability_probability=vulnerability_probability,
        exploit_budget=exploit_budget,
        monotone_decreasing=monotone,
    )


def safety_violation_table(result: SafetyViolationResult) -> Table:
    """The experiment as a printable table."""
    table = Table(
        headers=(
            "census",
            "entropy (bits)",
            "kappa",
            "P[violation] BFT (1/3)",
            "P[violation] majority (1/2)",
        )
    )
    for row in result.rows:
        table.add_row(
            row.label,
            row.entropy_bits,
            row.kappa,
            row.violation_probability_bft,
            row.violation_probability_majority,
        )
    return table


@dataclass(frozen=True)
class SafetyViolationParams:
    """Orchestrator parameters for the safety-violation census sweep."""

    vulnerability_probability: float = 0.25
    exploit_budget: int = 1
    trials: int = 2000
    seed: int = 7


def build_payload(params: SafetyViolationParams = None) -> ResultPayload:
    """Run the census sweep as a structured payload (default census family)."""
    params = params or SafetyViolationParams()
    result = run_safety_violation(
        vulnerability_probability=params.vulnerability_probability,
        exploit_budget=params.exploit_budget,
        trials=params.trials,
        seed=params.seed,
    )
    table = safety_violation_table(result)
    table.title = "census_sweep"
    return ResultPayload(
        tables=(table,),
        metrics={
            "monotone_decreasing": result.monotone_decreasing,
            "censuses": len(result.rows),
        },
    )


def render_result(result: ExperimentResult) -> str:
    """The classic safety-violation stdout report."""
    return "\n".join(
        [
            "Safety-violation probability vs census entropy "
            f"(p_vuln={result.params['vulnerability_probability']}, "
            f"budget={result.params['exploit_budget']})",
            result.tables[0].render(),
            "",
            "violation probability decreases with entropy: "
            f"{result.metrics['monotone_decreasing']}",
        ]
    )


SPEC = ExperimentSpec(
    experiment_id="safety_violation",
    title="Safety-violation probability vs census entropy (Monte Carlo)",
    build=build_payload,
    render=render_result,
    params_type=SafetyViolationParams,
    tags=("analysis", "monte-carlo"),
    seed=7,
    backend_sensitive=True,
)


def main(argv: Sequence[str] = ()) -> None:
    """Run the safety-violation experiment and print the table."""
    print(render_result(execute_spec(SPEC)))


if __name__ == "__main__":  # pragma: no cover - manual entry point
    main()
