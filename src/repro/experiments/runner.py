"""Run every experiment and print every table.

``python -m repro.experiments.runner`` regenerates the full evaluation: the
paper's Figure 1 and Example 1, the three propositions, and the additional
analyses listed in DESIGN.md §4.  Individual experiments can also be run via
their own modules (``python -m repro.experiments.figure1`` and so on).

The heavy lifting lives in :mod:`repro.experiments.orchestrator`; this module
keeps the classic text-only entry point (and the ``ALL_EXPERIMENTS`` tuple
for callers that iterate it) as a thin shim over the registry.  For result
artifacts, caching, sharding and parallel execution use ``repro.cli run``.
"""

from __future__ import annotations

import sys
from typing import Callable, Optional, Sequence, Tuple

from repro.core.exceptions import ReproError
from repro.experiments.orchestrator import (
    experiment_banner,
    filter_specs,
    run_experiments,
)
from repro.experiments.orchestrator import registry
from repro.experiments.orchestrator.spec import ExperimentSpec


def _entry_point(spec: ExperimentSpec) -> Callable[[], None]:
    """A classic ``main``-style callable for one spec (prints its report)."""

    def entry() -> None:
        from repro.experiments.orchestrator.engine import execute_spec

        print(spec.render(execute_spec(spec)))

    return entry


#: (experiment id, print-style entry point) in the order DESIGN.md lists them.
ALL_EXPERIMENTS: Tuple[Tuple[str, Callable[[], None]], ...] = tuple(
    (spec.experiment_id, _entry_point(spec)) for spec in registry.all_specs()
)


def run_all(
    names: Sequence[str] = (),
    *,
    parallel: bool = False,
    max_workers: Optional[int] = None,
) -> None:
    """Run the named experiments (all of them when ``names`` is empty).

    Unknown names raise
    :class:`~repro.core.exceptions.OrchestrationError` instead of being
    silently skipped — a misspelled experiment in a regeneration script must
    fail loudly, not produce a partial evaluation that looks complete.
    """
    specs = filter_specs(registry.all_specs(), names=tuple(names))
    results = run_experiments(specs, parallel=parallel, max_workers=max_workers)
    for spec, result in zip(specs, results):
        print(experiment_banner(spec.experiment_id))
        print(spec.render(result))
        print()


def main(argv: Sequence[str] = ()) -> int:
    """Command-line entry point: optional experiment names as arguments."""
    try:
        run_all(tuple(argv))
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":  # pragma: no cover - manual entry point
    sys.exit(main(sys.argv[1:]))
