"""Run every experiment and print every table.

``python -m repro.experiments.runner`` regenerates the full evaluation: the
paper's Figure 1 and Example 1, the three propositions, and the additional
analyses listed in DESIGN.md §4.  Individual experiments can also be run via
their own modules (``python -m repro.experiments.figure1`` and so on).
"""

from __future__ import annotations

from typing import Callable, Sequence, Tuple

from repro.experiments import (
    attestation_coverage,
    component_exposure,
    decentralized_pools,
    diversity_ablation,
    example1,
    figure1,
    prop1,
    prop2,
    prop3,
    protocol_safety,
    safety_violation,
    two_class,
    vulnerability_window,
)

#: (experiment id, module main) in the order DESIGN.md lists them.
ALL_EXPERIMENTS: Tuple[Tuple[str, Callable[[], None]], ...] = (
    ("figure1", figure1.main),
    ("example1", example1.main),
    ("proposition1", prop1.main),
    ("proposition2", prop2.main),
    ("proposition3", prop3.main),
    ("safety_violation", safety_violation.main),
    ("attestation_coverage", attestation_coverage.main),
    ("two_class", two_class.main),
    ("protocol_safety", protocol_safety.main),
    ("diversity_ablation", diversity_ablation.main),
    ("vulnerability_window", vulnerability_window.main),
    ("decentralized_pools", decentralized_pools.main),
    ("component_exposure", component_exposure.main),
)


def run_all(names: Sequence[str] = ()) -> None:
    """Run the named experiments (all of them when ``names`` is empty)."""
    wanted = set(names)
    for name, entry_point in ALL_EXPERIMENTS:
        if wanted and name not in wanted:
            continue
        banner = f"== {name} " + "=" * max(0, 70 - len(name))
        print(banner)
        entry_point()
        print()


def main(argv: Sequence[str] = ()) -> None:
    """Command-line entry point: optional experiment names as arguments."""
    run_all(tuple(argv))


if __name__ == "__main__":  # pragma: no cover - manual entry point
    import sys

    main(sys.argv[1:])
