"""Configuration discovery via remote attestation (Section III-B).

The experiment builds a replica population from the synthetic ecosystem,
attests a varying fraction of it through the simulated TPM/TEE pipeline and
reports what the resulting registry can and cannot tell a diversity monitor:

- the attested census entropy versus the ground-truth census entropy;
- the fraction of voting power whose configuration remains unknown (the
  conservative analysis must treat it as one shared fault domain);
- the number of alerts the diversity monitor raises on the registry view.

It demonstrates the paper's Challenge 1: without broad attestation coverage,
the measurable diversity underestimates badly and the unknown mass dominates
the worst-case analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.analysis.report import Table
from repro.attestation.device import AttestationDevice, DeviceType
from repro.attestation.quote import produce_quote
from repro.attestation.registry import AttestationRegistry
from repro.attestation.verifier import AttestationVerifier
from repro.core.exceptions import ExperimentError
from repro.core.population import ReplicaPopulation
from repro.datasets.software_ecosystem import SyntheticEcosystem, default_ecosystem
from repro.diversity.monitor import DiversityMonitor
from repro.experiments.orchestrator import (
    ExperimentResult,
    ExperimentSpec,
    ResultPayload,
    execute_spec,
)


@dataclass(frozen=True)
class CoverageRow:
    """Registry quality at one attestation-coverage level."""

    attested_fraction: float
    true_entropy_bits: float
    attested_census_entropy_bits: float
    unknown_power_fraction: float
    monitor_alerts: int


@dataclass(frozen=True)
class AttestationCoverageResult:
    """The coverage sweep."""

    population_size: int
    rows: Tuple[CoverageRow, ...]


def _build_registry(
    population: ReplicaPopulation, attested_fraction: float
) -> AttestationRegistry:
    """Attest the first ``attested_fraction`` of the population; declare the rest."""
    verifier = AttestationVerifier()
    registry = AttestationRegistry(verifier)
    replicas = population.replicas()
    attested_count = round(len(replicas) * attested_fraction)
    for index, replica in enumerate(replicas):
        if index < attested_count:
            device = AttestationDevice(
                device_id=f"dev-{replica.replica_id}", device_type=DeviceType.TPM
            )
            verifier.register_device(device)
            nonce = verifier.issue_nonce()
            quote = produce_quote(device, replica.replica_id, replica.configuration, nonce)
            registry.register_attested(quote, power=replica.power)
        else:
            registry.register_declared(
                replica.replica_id, replica.configuration, power=replica.power
            )
    return registry


def run_attestation_coverage(
    *,
    population_size: int = 300,
    fractions: Sequence[float] = (0.1, 0.25, 0.5, 0.75, 0.9, 1.0),
    ecosystem: SyntheticEcosystem = None,
    seed: int = 11,
) -> AttestationCoverageResult:
    """Run the attestation-coverage sweep."""
    if population_size < 10:
        raise ExperimentError("the population should have at least 10 replicas")
    if not fractions:
        raise ExperimentError("at least one coverage fraction is required")
    ecosystem = ecosystem or default_ecosystem()
    population = ecosystem.sample_population(population_size, seed=seed)
    true_entropy = population.entropy()
    rows = []
    for fraction in fractions:
        if not 0.0 <= fraction <= 1.0:
            raise ExperimentError(f"coverage fraction must be in [0, 1], got {fraction}")
        registry = _build_registry(population, fraction)
        attested_census = registry.census(attested_only=True) if fraction > 0 else None
        monitor = DiversityMonitor()
        full_census = registry.census()
        alerts = monitor.evaluate(full_census)
        unknown_fraction = 1.0 - registry.attested_fraction()
        rows.append(
            CoverageRow(
                attested_fraction=fraction,
                true_entropy_bits=true_entropy,
                attested_census_entropy_bits=(
                    attested_census.entropy() if attested_census is not None else 0.0
                ),
                unknown_power_fraction=unknown_fraction,
                monitor_alerts=len(alerts),
            )
        )
    return AttestationCoverageResult(population_size=population_size, rows=tuple(rows))


def coverage_table(result: AttestationCoverageResult) -> Table:
    """The sweep as a printable table."""
    table = Table(
        headers=(
            "attested fraction",
            "true entropy (bits)",
            "attested census entropy",
            "unknown power fraction",
            "monitor alerts",
        )
    )
    for row in result.rows:
        table.add_row(
            row.attested_fraction,
            row.true_entropy_bits,
            row.attested_census_entropy_bits,
            row.unknown_power_fraction,
            row.monitor_alerts,
        )
    return table


@dataclass(frozen=True)
class AttestationCoverageParams:
    """Orchestrator parameters for the attestation-coverage sweep."""

    population_size: int = 300
    fractions: Tuple[float, ...] = (0.1, 0.25, 0.5, 0.75, 0.9, 1.0)
    seed: int = 11


def build_payload(params: AttestationCoverageParams = None) -> ResultPayload:
    """Run the coverage sweep as a structured payload."""
    params = params or AttestationCoverageParams()
    result = run_attestation_coverage(
        population_size=params.population_size,
        fractions=tuple(params.fractions),
        seed=params.seed,
    )
    table = coverage_table(result)
    table.title = "coverage_sweep"
    full = result.rows[-1]
    return ResultPayload(
        tables=(table,),
        metrics={
            "true_entropy_bits": full.true_entropy_bits,
            "full_coverage_unknown_fraction": full.unknown_power_fraction,
        },
    )


def render_result(result: ExperimentResult) -> str:
    """The classic attestation-coverage stdout report."""
    return "\n".join(
        [
            f"Attestation coverage sweep over {result.params['population_size']} replicas",
            result.tables[0].render(),
        ]
    )


SPEC = ExperimentSpec(
    experiment_id="attestation_coverage",
    title="Configuration discovery via remote attestation (coverage sweep)",
    build=build_payload,
    render=render_result,
    params_type=AttestationCoverageParams,
    tags=("extension", "attestation"),
    seed=11,
    backend_sensitive=False,
)


def main(argv: Sequence[str] = ()) -> None:
    """Run the attestation-coverage experiment and print the table."""
    print(render_result(execute_spec(SPEC)))


if __name__ == "__main__":  # pragma: no cover - manual entry point
    main()
