"""Proposition 2: more unique-configuration replicas do not mean more resilience.

The experiment grows systems where every replica has a unique configuration
under two power-assignment regimes:

- *uniform growth* — every replica holds the same power: the relative
  abundances stay identical and entropy grows as ``log2 n`` (the escape
  clause of the proposition);
- *oligopoly growth* — the power distribution keeps the Bitcoin-style
  oligopoly shape (new replicas only share the small residual): entropy
  saturates well below ``log2 n``, so adding replicas buys almost nothing.

Proposition 2 holds when every oligopoly-growth step either fails to improve
entropy or improves it less than the uniform bound, and every uniform-growth
step is explained by identical relative abundances.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.analysis.report import Table
from repro.core.exceptions import ExperimentError
from repro.core.propositions import Proposition2Result, check_proposition_2
from repro.datasets.bitcoin_pools import figure1_distribution
from repro.experiments.orchestrator import (
    ExperimentResult,
    ExperimentSpec,
    ResultPayload,
    execute_spec,
)


@dataclass(frozen=True)
class Proposition2Step:
    """One growth step of the Proposition 2 experiment."""

    regime: str
    replicas_before: int
    replicas_after: int
    result: Proposition2Result


@dataclass(frozen=True)
class Proposition2Sweep:
    """All growth steps plus the overall verdict."""

    steps: Tuple[Proposition2Step, ...]
    holds: bool
    oligopoly_entropy_ceiling: float
    uniform_final_entropy: float


def run_proposition2(
    *,
    sizes: Sequence[int] = (18, 67, 117, 517, 1017),
) -> Proposition2Sweep:
    """Run the Proposition 2 growth comparison.

    Args:
        sizes: total system sizes to step through.  For the oligopoly regime
            the size is 17 pools + residual miners; the uniform regime uses
            the same totals with equal power per replica.
    """
    if len(sizes) < 2:
        raise ExperimentError("at least two system sizes are required")
    if any(size <= 17 for size in sizes):
        raise ExperimentError("sizes must exceed the 17 fixed pools")
    steps = []
    oligopoly_entropies = []
    uniform_entropies = []
    for before, after in zip(sizes, sizes[1:]):
        # Oligopoly regime: Bitcoin pools plus uniformly-split residual.
        dist_before = figure1_distribution(before - 17)
        dist_after = figure1_distribution(after - 17)
        oligopoly = check_proposition_2(
            dist_before.probabilities(), dist_after.probabilities()
        )
        oligopoly_entropies.extend([oligopoly.entropy_before, oligopoly.entropy_after])
        steps.append(
            Proposition2Step(
                regime="oligopoly",
                replicas_before=before,
                replicas_after=after,
                result=oligopoly,
            )
        )
        # Uniform regime: same sizes, equal power per replica.
        uniform = check_proposition_2(
            [1.0 / before] * before, [1.0 / after] * after
        )
        uniform_entropies.extend([uniform.entropy_before, uniform.entropy_after])
        steps.append(
            Proposition2Step(
                regime="uniform",
                replicas_before=before,
                replicas_after=after,
                result=uniform,
            )
        )
    return Proposition2Sweep(
        steps=tuple(steps),
        holds=all(step.result.holds for step in steps),
        oligopoly_entropy_ceiling=max(oligopoly_entropies),
        uniform_final_entropy=max(uniform_entropies),
    )


def proposition2_table(sweep: Proposition2Sweep) -> Table:
    """The sweep as a printable table."""
    table = Table(
        headers=(
            "regime",
            "replicas before",
            "replicas after",
            "entropy before",
            "entropy after",
            "improved",
            "uniform after",
            "holds",
        )
    )
    for step in sweep.steps:
        table.add_row(
            step.regime,
            step.replicas_before,
            step.replicas_after,
            step.result.entropy_before,
            step.result.entropy_after,
            step.result.resilience_improved,
            step.result.relative_abundances_identical,
            step.result.holds,
        )
    return table


@dataclass(frozen=True)
class Proposition2Params:
    """Orchestrator parameters for the Proposition 2 growth comparison."""

    sizes: Tuple[int, ...] = (18, 67, 117, 517, 1017)


def build_payload(params: Proposition2Params = None) -> ResultPayload:
    """Run the Proposition 2 comparison as a structured payload."""
    params = params or Proposition2Params()
    sweep = run_proposition2(sizes=tuple(params.sizes))
    table = proposition2_table(sweep)
    table.title = "growth_steps"
    return ResultPayload(
        tables=(table,),
        metrics={
            "holds": sweep.holds,
            "oligopoly_entropy_ceiling": sweep.oligopoly_entropy_ceiling,
            "uniform_final_entropy": sweep.uniform_final_entropy,
        },
    )


def render_result(result: ExperimentResult) -> str:
    """The classic Proposition 2 stdout report."""
    metrics = result.metrics
    return "\n".join(
        [
            "Proposition 2 -- growing unique-configuration systems",
            result.tables[0].render(),
            "",
            f"oligopoly entropy ceiling : {metrics['oligopoly_entropy_ceiling']:.4f} bits",
            f"uniform entropy reached   : {metrics['uniform_final_entropy']:.4f} bits",
            f"Proposition 2 holds       : {metrics['holds']}",
        ]
    )


SPEC = ExperimentSpec(
    experiment_id="proposition2",
    title="Proposition 2: growing unique-configuration systems",
    build=build_payload,
    render=render_result,
    params_type=Proposition2Params,
    tags=("paper", "proposition"),
    seed=None,
    backend_sensitive=False,
)


def main(argv: Sequence[str] = ()) -> None:
    """Run the Proposition 2 experiment and print the table."""
    print(render_result(execute_spec(SPEC)))


if __name__ == "__main__":  # pragma: no cover - manual entry point
    main()
