"""Proposition 1: abundance increases lower entropy unless proportional.

The experiment sweeps κ-optimal systems of different sizes and applies three
kinds of abundance increase to each:

- *proportional* — every configuration gains the same factor (relative
  abundance preserved): entropy must stay identical;
- *single-configuration* — one configuration gains extra individuals:
  entropy must strictly decrease;
- *skewed* — a random-but-deterministic uneven increment: entropy must not
  increase.

Proposition 1 holds over the sweep when every case behaves accordingly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.analysis.report import Table
from repro.core.abundance import AbundanceVector
from repro.core.exceptions import ExperimentError
from repro.core.propositions import Proposition1Result, check_proposition_1
from repro.experiments.orchestrator import (
    ExperimentResult,
    ExperimentSpec,
    ResultPayload,
    execute_spec,
)


@dataclass(frozen=True)
class Proposition1Case:
    """One (κ, scenario) cell of the Proposition 1 sweep."""

    kappa: int
    scenario: str
    result: Proposition1Result


@dataclass(frozen=True)
class Proposition1Sweep:
    """All cases of the Proposition 1 experiment."""

    cases: Tuple[Proposition1Case, ...]
    holds: bool


def _baseline(kappa: int, omega: float) -> AbundanceVector:
    return AbundanceVector.uniform([f"config-{i}" for i in range(kappa)], abundance=omega)


def run_proposition1(
    *,
    kappas: Sequence[int] = (2, 4, 8, 16, 32, 64),
    omega: float = 4.0,
) -> Proposition1Sweep:
    """Run the Proposition 1 sweep.

    Args:
        kappas: κ values (number of configurations) to test.
        omega: the baseline per-configuration abundance.
    """
    if not kappas:
        raise ExperimentError("at least one kappa value is required")
    if omega <= 0:
        raise ExperimentError(f"omega must be positive, got {omega}")
    cases = []
    for kappa in kappas:
        if kappa < 2:
            raise ExperimentError("kappa must be at least 2 for a meaningful comparison")
        baseline = _baseline(kappa, omega)
        keys = list(baseline.configurations())

        proportional = {key: omega for key in keys}  # doubles every abundance
        single = {keys[0]: omega * kappa}  # one configuration becomes dominant
        skewed = {key: omega * (index % 3) for index, key in enumerate(keys)}

        cases.append(
            Proposition1Case(
                kappa=kappa,
                scenario="proportional",
                result=check_proposition_1(baseline, proportional),
            )
        )
        cases.append(
            Proposition1Case(
                kappa=kappa,
                scenario="single-configuration",
                result=check_proposition_1(baseline, single),
            )
        )
        cases.append(
            Proposition1Case(
                kappa=kappa,
                scenario="skewed",
                result=check_proposition_1(baseline, skewed),
            )
        )
    return Proposition1Sweep(
        cases=tuple(cases), holds=all(case.result.holds for case in cases)
    )


def proposition1_table(sweep: Proposition1Sweep) -> Table:
    """The sweep as a printable table."""
    table = Table(
        headers=(
            "kappa",
            "scenario",
            "entropy before",
            "entropy after",
            "relative abundance preserved",
            "holds",
        )
    )
    for case in sweep.cases:
        table.add_row(
            case.kappa,
            case.scenario,
            case.result.entropy_before,
            case.result.entropy_after,
            case.result.relative_abundance_preserved,
            case.result.holds,
        )
    return table


@dataclass(frozen=True)
class Proposition1Params:
    """Orchestrator parameters for the Proposition 1 sweep."""

    kappas: Tuple[int, ...] = (2, 4, 8, 16, 32, 64)
    omega: float = 4.0


def build_payload(params: Proposition1Params = None) -> ResultPayload:
    """Run the Proposition 1 sweep as a structured payload."""
    params = params or Proposition1Params()
    sweep = run_proposition1(kappas=tuple(params.kappas), omega=params.omega)
    table = proposition1_table(sweep)
    table.title = "sweep"
    return ResultPayload(
        tables=(table,),
        metrics={"holds": sweep.holds, "cases": len(sweep.cases)},
    )


def render_result(result: ExperimentResult) -> str:
    """The classic Proposition 1 stdout report."""
    return "\n".join(
        [
            "Proposition 1 -- abundance increases vs entropy on κ-optimal systems",
            result.tables[0].render(),
            "",
            f"Proposition 1 holds over the sweep: {result.metrics['holds']}",
        ]
    )


SPEC = ExperimentSpec(
    experiment_id="proposition1",
    title="Proposition 1: abundance increases vs entropy on κ-optimal systems",
    build=build_payload,
    render=render_result,
    params_type=Proposition1Params,
    tags=("paper", "proposition"),
    seed=None,
    backend_sensitive=False,
)


def main(argv: Sequence[str] = ()) -> None:
    """Run the Proposition 1 experiment and print the table."""
    print(render_result(execute_spec(SPEC)))


if __name__ == "__main__":  # pragma: no cover - manual entry point
    main()
