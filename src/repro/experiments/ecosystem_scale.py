"""Violation probability vs ecosystem scale through the sparse campaign plane.

The paper's threat model is ecosystem-sized — "a zero-day in the dominant
operating system" compromising a large fraction of *all* replicas — so the
replica count itself is a first-order knob.  This experiment sweeps it: each
scale point streams an ecosystem population straight into a sparse CSR
matrix (:func:`repro.faults.scenarios.sparse_ecosystem_matrix`; the
population is never materialized) and runs worst-case campaigns through the
row-chunked :class:`~repro.faults.engine.GridCampaignEngine` sparse path,
judging the BFT (1/3) and majority (1/2) tolerances on shared draws.

Expected shape: concentration of measure.  The dominant-component compromise
fraction converges to ``share × p_exploit`` as the population grows, so a
tolerance below that product sees its violation probability rise toward 1
with scale while a tolerance above it falls toward 0 — small deployments are
noisy, ecosystem-scale ones are deterministic.  With the default knobs
(share 0.78, ``p_exploit`` 0.45) the BFT threshold sits just *under* the
limit and the majority threshold well *above* it, so the two rows diverge as
the replica count climbs.

The default sizes cover the small end of the 10³→10⁶ sweep so the golden
stays cheap; the million-replica end runs through the exact same code path
in ``repro.cli bench-population`` and the CI scale-smoke gate, and any size
can be requested via params (the spec is cached, sharded and servable like
every other experiment).  The sparse kernels draw from the same
counter-based RNG stream as the dense ones, so the numbers are identical on
every compute backend and to a dense engine run at overlapping scales.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.analysis.report import Table
from repro.core.exceptions import ExperimentError
from repro.experiments.orchestrator import (
    ExperimentResult,
    ExperimentSpec,
    ResultPayload,
    execute_spec,
)
from repro.faults.engine import GridCampaignEngine, GridPointRequest
from repro.faults.scenarios import sparse_ecosystem_matrix

#: Replica-range chunk used by the sweep's engines — small enough that the
#: larger default sizes span several chunks, so the golden numbers pin the
#: chunk-invisibility contract (chunked == unchunked) on every run.
SCALE_CHUNK_ROWS = 4096


@dataclass(frozen=True)
class EcosystemScaleRow:
    """One population size's sparse worst-case campaign estimates."""

    population_size: int
    nnz: int
    density: float
    row_chunks: int
    violation_probability_bft: float
    violation_probability_majority: float
    mean_compromised_fraction: float


@dataclass(frozen=True)
class EcosystemScaleResult:
    """All scale points, ascending, plus the shared scenario knobs."""

    ecosystem: str
    catalog_size: int
    exploit_probability: float
    budget: int
    rows: Tuple[EcosystemScaleRow, ...]


def run_ecosystem_scale(
    *,
    ecosystem: str = "default",
    sizes: Sequence[int] = (1_000, 4_000, 16_000),
    budget: int = 1,
    exploit_probability: float = 0.45,
    trials: int = 160,
    seed: int = 17,
    chunk_rows: int = SCALE_CHUNK_ROWS,
) -> EcosystemScaleResult:
    """Sweep the replica count through the streaming sparse campaign path."""
    if not sizes:
        raise ExperimentError("at least one population size is required")
    if any(size <= 0 for size in sizes):
        raise ExperimentError("population sizes must be positive")
    if budget <= 0:
        raise ExperimentError(f"exploit budget must be positive, got {budget}")
    rows = []
    catalog_size = 0
    for index, size in enumerate(sorted(sizes)):
        matrix, catalog = sparse_ecosystem_matrix(
            ecosystem=ecosystem,
            population_size=size,
            seed=seed,
            exploit_probability=exploit_probability,
        )
        if not matrix.is_sparse:
            raise ExperimentError(
                "ecosystem_scale requires the sparse build path"
            )
        catalog_size = len(catalog)
        engine = GridCampaignEngine.from_matrix(matrix, chunk_rows=chunk_rows)
        point = engine.estimate_grid(
            (
                GridPointRequest(
                    tolerances=(1.0 / 3.0, 0.5),
                    worst_case=budget,
                    seed_offset=index,
                ),
            ),
            trials=trials,
            seed=seed,
        )[0]
        bft = point.estimate_at(0)
        majority = point.estimate_at(1)
        rows.append(
            EcosystemScaleRow(
                population_size=size,
                nnz=matrix.nnz,
                density=matrix.density,
                row_chunks=engine.last_chunk_count,
                violation_probability_bft=bft.violation_probability,
                violation_probability_majority=majority.violation_probability,
                mean_compromised_fraction=bft.mean_compromised_fraction,
            )
        )
    return EcosystemScaleResult(
        ecosystem=ecosystem,
        catalog_size=catalog_size,
        exploit_probability=exploit_probability,
        budget=budget,
        rows=tuple(rows),
    )


def ecosystem_scale_table(result: EcosystemScaleResult) -> Table:
    """The scale sweep as a printable table."""
    table = Table(
        headers=(
            "replicas",
            "exposed cells",
            "density",
            "row chunks",
            "P[violation] BFT (1/3)",
            "P[violation] majority (1/2)",
            "mean compromised fraction",
        )
    )
    for row in result.rows:
        table.add_row(
            row.population_size,
            row.nnz,
            row.density,
            row.row_chunks,
            row.violation_probability_bft,
            row.violation_probability_majority,
            row.mean_compromised_fraction,
        )
    return table


@dataclass(frozen=True)
class EcosystemScaleParams:
    """Orchestrator parameters for the ecosystem-scale sweep."""

    ecosystem: str = "default"
    sizes: Tuple[int, ...] = (1_000, 4_000, 16_000)
    budget: int = 1
    exploit_probability: float = 0.45
    trials: int = 160
    seed: int = 17
    chunk_rows: int = SCALE_CHUNK_ROWS


def build_payload(params: EcosystemScaleParams = None) -> ResultPayload:
    """Run the scale sweep as a structured payload."""
    params = params or EcosystemScaleParams()
    result = run_ecosystem_scale(
        ecosystem=params.ecosystem,
        sizes=tuple(params.sizes),
        budget=params.budget,
        exploit_probability=params.exploit_probability,
        trials=params.trials,
        seed=params.seed,
        chunk_rows=params.chunk_rows,
    )
    table = ecosystem_scale_table(result)
    table.title = "scale_sweep"
    return ResultPayload(
        tables=(table,),
        metrics={
            "ecosystem": result.ecosystem,
            "catalog_size": result.catalog_size,
            "exploit_probability": result.exploit_probability,
            "budget": result.budget,
            "largest_population": result.rows[-1].population_size,
        },
    )


def render_result(result: ExperimentResult) -> str:
    """The ecosystem-scale stdout report."""
    return "\n".join(
        [
            "Violation probability vs ecosystem scale "
            f"({result.metrics['ecosystem']} ecosystem, worst-case budget "
            f"{result.metrics['budget']}, {result.params['trials']} trials, "
            "sparse streaming build)",
            result.tables[0].render(),
            "",
            "largest population swept: "
            f"{result.metrics['largest_population']} replicas",
        ]
    )


SPEC = ExperimentSpec(
    experiment_id="ecosystem_scale",
    title="Sparse campaigns: violation probability vs ecosystem scale",
    build=build_payload,
    render=render_result,
    params_type=EcosystemScaleParams,
    tags=("extension", "campaign", "scale"),
    seed=17,
    backend_sensitive=False,
)


def main(argv: Sequence[str] = ()) -> None:
    """Run the ecosystem-scale sweep and print the table."""
    print(render_result(execute_spec(SPEC)))


if __name__ == "__main__":  # pragma: no cover - manual entry point
    main()
