"""Safety-violation probability over a churning permissionless population.

Challenge 1 of the paper: in a permissionless system no manager controls the
configuration census — it drifts as participants join and leave, pulled
toward the ecosystem's market shares (monocultures self-reinforce).  This
experiment makes the consequence quantitative: one continuous churn
trajectory is snapshotted at evenly spaced steps
(:func:`repro.faults.scenarios.churned_scenarios`), each snapshot is
re-cataloged, and the :class:`~repro.faults.engine.GridCampaignEngine`
estimates the worst-case bounded-budget violation probability at every
checkpoint through the fused grid kernel (each checkpoint has its own
population, so it runs as a single-point grid on its own engine).

Expected shape: the violation probability drifts with the census even while
the entropy only wobbles — new joiners follow the ecosystem's market shares,
so the dominant fault domains keep growing.  Diversity, and with it the
safety margin, is a moving target that needs continuous monitoring rather
than a one-off deployment decision.

The campaign kernels draw from a counter-based RNG stream, so the numbers
are identical on every compute backend (the spec is not backend-sensitive).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.analysis.report import Table
from repro.core.entropy import shannon_entropy
from repro.core.exceptions import ExperimentError
from repro.core.resilience import ProtocolFamily
from repro.experiments.orchestrator import (
    ExperimentResult,
    ExperimentSpec,
    ResultPayload,
    execute_spec,
)
from repro.faults.engine import GridCampaignEngine
from repro.faults.scenarios import churn_checkpoint_grid, churned_scenarios


@dataclass(frozen=True)
class CampaignChurnRow:
    """One churn checkpoint's census and batched-campaign estimates."""

    step: int
    population_size: int
    entropy_bits: float
    violation_probability_bft: float
    mean_compromised_fraction: float


@dataclass(frozen=True)
class CampaignChurnResult:
    """The checkpoint series, step 0 first."""

    rows: Tuple[CampaignChurnRow, ...]
    entropy_drift: float
    violation_drift: float


def run_campaign_churn(
    *,
    ecosystem: str = "diverse",
    population_size: int = 40,
    steps: int = 120,
    checkpoints: int = 4,
    join_rate: float = 0.6,
    leave_rate: float = 0.35,
    churn_seed: int = 5,
    exploit_probability: float = 0.6,
    budget: int = 2,
    trials: int = 300,
    seed: int = 29,
) -> CampaignChurnResult:
    """Estimate violation probability along one churn trajectory."""
    if budget <= 0:
        raise ExperimentError(f"exploit budget must be positive, got {budget}")
    trajectory = churned_scenarios(
        ecosystem=ecosystem,
        population_size=population_size,
        steps=steps,
        checkpoints=checkpoints,
        join_rate=join_rate,
        leave_rate=leave_rate,
        churn_seed=churn_seed,
        population_seed=seed,
        exploit_probability=exploit_probability,
    )
    rows = []
    for index, (step, scenario) in enumerate(trajectory):
        engine = GridCampaignEngine(scenario.population, scenario.catalog)
        # ``seed_offset=index`` keeps the looped sweep's ``seed + index``
        # sub-stream, so the checkpoint numbers are bit-identical to it.
        estimate = engine.estimate_grid(
            churn_checkpoint_grid(
                index, budget=budget, families=(ProtocolFamily.BFT,)
            ),
            trials=trials,
            seed=seed,
        )[0].estimate_at(0)
        rows.append(
            CampaignChurnRow(
                step=step,
                population_size=len(scenario.population),
                # Scalar entropy (not the backend kernel) keeps the reported
                # bits identical across backends, like the campaign numbers.
                entropy_bits=shannon_entropy(
                    scenario.population.configuration_census().probabilities()
                ),
                violation_probability_bft=estimate.violation_probability,
                mean_compromised_fraction=estimate.mean_compromised_fraction,
            )
        )
    return CampaignChurnResult(
        rows=tuple(rows),
        entropy_drift=rows[-1].entropy_bits - rows[0].entropy_bits,
        violation_drift=rows[-1].violation_probability_bft
        - rows[0].violation_probability_bft,
    )


def campaign_churn_table(result: CampaignChurnResult) -> Table:
    """The churn trajectory as a printable table."""
    table = Table(
        headers=(
            "churn step",
            "replicas",
            "entropy (bits)",
            "P[violation] BFT (1/3)",
            "mean compromised fraction",
        )
    )
    for row in result.rows:
        table.add_row(
            row.step,
            row.population_size,
            row.entropy_bits,
            row.violation_probability_bft,
            row.mean_compromised_fraction,
        )
    return table


@dataclass(frozen=True)
class CampaignChurnParams:
    """Orchestrator parameters for the churned-population campaign sweep."""

    ecosystem: str = "diverse"
    population_size: int = 40
    steps: int = 120
    checkpoints: int = 4
    join_rate: float = 0.6
    leave_rate: float = 0.35
    churn_seed: int = 5
    exploit_probability: float = 0.6
    budget: int = 2
    trials: int = 300
    seed: int = 29


def build_payload(params: CampaignChurnParams = None) -> ResultPayload:
    """Run the churn-trajectory sweep as a structured payload."""
    params = params or CampaignChurnParams()
    result = run_campaign_churn(
        ecosystem=params.ecosystem,
        population_size=params.population_size,
        steps=params.steps,
        checkpoints=params.checkpoints,
        join_rate=params.join_rate,
        leave_rate=params.leave_rate,
        churn_seed=params.churn_seed,
        exploit_probability=params.exploit_probability,
        budget=params.budget,
        trials=params.trials,
        seed=params.seed,
    )
    table = campaign_churn_table(result)
    table.title = "churn_trajectory"
    return ResultPayload(
        tables=(table,),
        metrics={
            "entropy_drift": result.entropy_drift,
            "violation_drift": result.violation_drift,
            "checkpoints": len(result.rows),
        },
    )


def render_result(result: ExperimentResult) -> str:
    """The campaign-churn stdout report."""
    return "\n".join(
        [
            "Safety-violation probability along a churn trajectory "
            f"({result.params['ecosystem']} ecosystem, "
            f"{result.params['steps']} steps, "
            f"{result.params['trials']} trials per checkpoint)",
            result.tables[0].render(),
            "",
            f"entropy drift over the run   : {result.metrics['entropy_drift']:+.4f} bits",
            f"violation-probability drift  : {result.metrics['violation_drift']:+.4f}",
        ]
    )


SPEC = ExperimentSpec(
    experiment_id="campaign_churn",
    title="Batched campaigns: violation probability under population churn",
    build=build_payload,
    render=render_result,
    params_type=CampaignChurnParams,
    tags=("extension", "campaign", "permissionless"),
    seed=29,
    backend_sensitive=False,
)


def main(argv: Sequence[str] = ()) -> None:
    """Run the churn-trajectory sweep and print the table."""
    print(render_result(execute_spec(SPEC)))


if __name__ == "__main__":  # pragma: no cover - manual entry point
    main()
