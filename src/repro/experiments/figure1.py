"""Figure 1: best-case entropy of Bitcoin replica diversity.

The paper's Figure 1 plots the Shannon entropy of the Bitcoin mining-power
distribution under the best-case diversity assumption (every miner has a
unique configuration), as the unknown residual 0.87% of hash power is spread
uniformly over 1 to 1000 miners.  The take-away is that the entropy stays
below 3 bits for every x — i.e. below the entropy of an 8-replica BFT system
with unique configurations — because the pool oligopoly dominates.

``run_figure1`` regenerates the series; ``main`` prints it (sub-sampled) as a
text table together with the 3-bit reference line.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.analysis.report import Table
from repro.core.exceptions import ExperimentError
from repro.datasets.bitcoin_pools import figure1_distribution, figure1_total_miners
from repro.experiments.orchestrator import (
    ExperimentResult,
    ExperimentSpec,
    ResultPayload,
    execute_spec,
)

#: The reference entropy of an 8-replica unique-configuration BFT system.
BFT_8_REPLICA_ENTROPY_BITS = 3.0


@dataclass(frozen=True)
class Figure1Point:
    """One point of the Figure 1 series.

    Attributes:
        residual_miners: the X-axis value (miners sharing the residual 0.87%).
        total_miners: total miners in the system (17 pools + residual miners).
        entropy_bits: Shannon entropy of the best-case configuration
            distribution, in bits.
    """

    residual_miners: int
    total_miners: int
    entropy_bits: float


@dataclass(frozen=True)
class Figure1Result:
    """The regenerated Figure 1 series plus its headline statistics."""

    points: Tuple[Figure1Point, ...]
    max_entropy_bits: float
    min_entropy_bits: float
    always_below_bft8: bool

    def entropy_at(self, residual_miners: int) -> float:
        """Entropy at a specific X value (raises when not part of the sweep).

        The x → entropy index is built once on first use and memoized on the
        instance (the frozen dataclass still has a ``__dict__``), so repeated
        lookups — Example 1 probes several caption points — are O(1) instead
        of a linear scan over the 1000-point series.
        """
        index = self.__dict__.get("_entropy_index")
        if index is None:
            index = {point.residual_miners: point.entropy_bits for point in self.points}
            object.__setattr__(self, "_entropy_index", index)
        try:
            return index[residual_miners]
        except KeyError:
            raise ExperimentError(
                f"x={residual_miners} was not part of the sweep"
            ) from None


def run_figure1(
    *,
    min_residual_miners: int = 1,
    max_residual_miners: int = 1000,
    step: int = 1,
) -> Figure1Result:
    """Regenerate the Figure 1 entropy series.

    Args:
        min_residual_miners: first X value (the paper uses 1).
        max_residual_miners: last X value (the paper uses 1000).
        step: stride through the X range (1 reproduces every paper point).
    """
    if min_residual_miners < 1:
        raise ExperimentError("the residual miner count starts at 1")
    if max_residual_miners < min_residual_miners:
        raise ExperimentError("max residual miners must be >= the minimum")
    if step < 1:
        raise ExperimentError(f"step must be positive, got {step}")
    points = []
    for x in range(min_residual_miners, max_residual_miners + 1, step):
        distribution = figure1_distribution(x)
        points.append(
            Figure1Point(
                residual_miners=x,
                total_miners=figure1_total_miners(x),
                entropy_bits=distribution.entropy(base=2.0),
            )
        )
    entropies = [point.entropy_bits for point in points]
    return Figure1Result(
        points=tuple(points),
        max_entropy_bits=max(entropies),
        min_entropy_bits=min(entropies),
        always_below_bft8=all(entropy < BFT_8_REPLICA_ENTROPY_BITS for entropy in entropies),
    )


def figure1_table(result: Figure1Result, *, sample_every: int = 100) -> Table:
    """A printable sub-sampled view of the series."""
    if sample_every < 1:
        raise ExperimentError(f"sample stride must be positive, got {sample_every}")
    table = Table(headers=("residual miners (x)", "total miners", "entropy (bits)"))
    for index, point in enumerate(result.points):
        if index % sample_every == 0 or index == len(result.points) - 1:
            table.add_row(point.residual_miners, point.total_miners, point.entropy_bits)
    return table


@dataclass(frozen=True)
class Figure1Params:
    """Orchestrator parameters for the Figure 1 sweep."""

    min_residual_miners: int = 1
    max_residual_miners: int = 1000
    step: int = 1
    sample_every: int = 100


def build_payload(params: Figure1Params = None) -> ResultPayload:
    """Run Figure 1 and pack the series into a structured payload."""
    params = params or Figure1Params()
    result = run_figure1(
        min_residual_miners=params.min_residual_miners,
        max_residual_miners=params.max_residual_miners,
        step=params.step,
    )
    table = figure1_table(result, sample_every=params.sample_every)
    table.title = "entropy_series"
    return ResultPayload(
        tables=(table,),
        metrics={
            "max_entropy_bits": result.max_entropy_bits,
            "min_entropy_bits": result.min_entropy_bits,
            "bft8_reference_bits": BFT_8_REPLICA_ENTROPY_BITS,
            "always_below_bft8": result.always_below_bft8,
            "points": len(result.points),
        },
    )


def render_result(result: ExperimentResult) -> str:
    """The classic Figure 1 stdout report, rebuilt from the structured result."""
    return "\n".join(
        [
            "Figure 1 -- best-case entropy of Bitcoin replica diversity",
            result.tables[0].render(),
            "",
            f"max entropy over the sweep : {result.metrics['max_entropy_bits']:.4f} bits",
            f"entropy of 8-replica BFT   : {result.metrics['bft8_reference_bits']:.4f} bits",
            f"always below the BFT line  : {result.metrics['always_below_bft8']}",
        ]
    )


SPEC = ExperimentSpec(
    experiment_id="figure1",
    title="Figure 1: best-case entropy of Bitcoin replica diversity",
    build=build_payload,
    render=render_result,
    params_type=Figure1Params,
    tags=("paper", "figure"),
    seed=None,
    backend_sensitive=False,
)


def main(argv: Sequence[str] = ()) -> None:
    """Regenerate Figure 1 and print the series summary."""
    print(render_result(execute_spec(SPEC)))


if __name__ == "__main__":  # pragma: no cover - manual entry point
    main()
