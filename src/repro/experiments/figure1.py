"""Figure 1: best-case entropy of Bitcoin replica diversity.

The paper's Figure 1 plots the Shannon entropy of the Bitcoin mining-power
distribution under the best-case diversity assumption (every miner has a
unique configuration), as the unknown residual 0.87% of hash power is spread
uniformly over 1 to 1000 miners.  The take-away is that the entropy stays
below 3 bits for every x — i.e. below the entropy of an 8-replica BFT system
with unique configurations — because the pool oligopoly dominates.

``run_figure1`` regenerates the series; ``main`` prints it (sub-sampled) as a
text table together with the 3-bit reference line.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.analysis.report import Table
from repro.core.exceptions import ExperimentError
from repro.datasets.bitcoin_pools import figure1_distribution, figure1_total_miners

#: The reference entropy of an 8-replica unique-configuration BFT system.
BFT_8_REPLICA_ENTROPY_BITS = 3.0


@dataclass(frozen=True)
class Figure1Point:
    """One point of the Figure 1 series.

    Attributes:
        residual_miners: the X-axis value (miners sharing the residual 0.87%).
        total_miners: total miners in the system (17 pools + residual miners).
        entropy_bits: Shannon entropy of the best-case configuration
            distribution, in bits.
    """

    residual_miners: int
    total_miners: int
    entropy_bits: float


@dataclass(frozen=True)
class Figure1Result:
    """The regenerated Figure 1 series plus its headline statistics."""

    points: Tuple[Figure1Point, ...]
    max_entropy_bits: float
    min_entropy_bits: float
    always_below_bft8: bool

    def entropy_at(self, residual_miners: int) -> float:
        """Entropy at a specific X value (raises when not part of the sweep)."""
        for point in self.points:
            if point.residual_miners == residual_miners:
                return point.entropy_bits
        raise ExperimentError(f"x={residual_miners} was not part of the sweep")


def run_figure1(
    *,
    min_residual_miners: int = 1,
    max_residual_miners: int = 1000,
    step: int = 1,
) -> Figure1Result:
    """Regenerate the Figure 1 entropy series.

    Args:
        min_residual_miners: first X value (the paper uses 1).
        max_residual_miners: last X value (the paper uses 1000).
        step: stride through the X range (1 reproduces every paper point).
    """
    if min_residual_miners < 1:
        raise ExperimentError("the residual miner count starts at 1")
    if max_residual_miners < min_residual_miners:
        raise ExperimentError("max residual miners must be >= the minimum")
    if step < 1:
        raise ExperimentError(f"step must be positive, got {step}")
    points = []
    for x in range(min_residual_miners, max_residual_miners + 1, step):
        distribution = figure1_distribution(x)
        points.append(
            Figure1Point(
                residual_miners=x,
                total_miners=figure1_total_miners(x),
                entropy_bits=distribution.entropy(base=2.0),
            )
        )
    entropies = [point.entropy_bits for point in points]
    return Figure1Result(
        points=tuple(points),
        max_entropy_bits=max(entropies),
        min_entropy_bits=min(entropies),
        always_below_bft8=all(entropy < BFT_8_REPLICA_ENTROPY_BITS for entropy in entropies),
    )


def figure1_table(result: Figure1Result, *, sample_every: int = 100) -> Table:
    """A printable sub-sampled view of the series."""
    if sample_every < 1:
        raise ExperimentError(f"sample stride must be positive, got {sample_every}")
    table = Table(headers=("residual miners (x)", "total miners", "entropy (bits)"))
    for index, point in enumerate(result.points):
        if index % sample_every == 0 or index == len(result.points) - 1:
            table.add_row(point.residual_miners, point.total_miners, point.entropy_bits)
    return table


def main(argv: Sequence[str] = ()) -> None:
    """Regenerate Figure 1 and print the series summary."""
    result = run_figure1()
    print("Figure 1 -- best-case entropy of Bitcoin replica diversity")
    print(figure1_table(result).render())
    print()
    print(f"max entropy over the sweep : {result.max_entropy_bits:.4f} bits")
    print(f"entropy of 8-replica BFT   : {BFT_8_REPLICA_ENTROPY_BITS:.4f} bits")
    print(f"always below the BFT line  : {result.always_below_bft8}")


if __name__ == "__main__":  # pragma: no cover - manual entry point
    main()
