"""End-to-end protocol validation: shared faults vs simulated consensus runs.

This experiment closes the loop between the analytical condition of Section
II-C and actual protocol executions:

1. Build a BFT replica deployment whose configurations come from either a
   *diverse* (planner-assigned) or a *monoculture* ecosystem.
2. Assume one exploitable vulnerability in the most popular component and run
   the exploit campaign to find which replicas turn Byzantine.
3. Run PBFT, the streamlined (HotStuff-style) protocol and the hybrid
   protocol with that fault schedule and record whether safety held.
4. Do the same on the Nakamoto side: compromise the mining pools running the
   vulnerable component and measure the double-spend success probability.

Expected shape: the monoculture deployments lose safety from a single
vulnerability (compromised power exceeds f / 50%), while the diverse
deployments stay safe — the paper's core argument, demonstrated end to end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.analysis.report import Table
from repro.bft.runner import ConsensusRunResult, run_consensus
from repro.core.configuration import ComponentKind, ReplicaConfiguration
from repro.core.exceptions import ExperimentError
from repro.core.population import Replica, ReplicaPopulation
from repro.core.resilience import ProtocolFamily
from repro.faults.campaign import ExploitCampaign
from repro.faults.catalog import VulnerabilityCatalog
from repro.faults.injection import FaultSchedule
from repro.experiments.orchestrator import (
    ExperimentResult,
    ExperimentSpec,
    ResultPayload,
    execute_spec,
)
from repro.nakamoto.attack import majority_takeover
from repro.nakamoto.pool import pools_from_snapshot


@dataclass(frozen=True)
class ProtocolSafetyRow:
    """One (deployment, protocol) cell of the experiment."""

    deployment: str
    protocol: str
    replicas: int
    byzantine: int
    fault_bound: int
    condition_satisfied: bool
    safety_observed: bool


@dataclass(frozen=True)
class NakamotoSafetyRow:
    """The Nakamoto side of the experiment."""

    deployment: str
    compromised_fraction: float
    majority: bool
    double_spend_probability: float


@dataclass(frozen=True)
class ProtocolSafetyResult:
    """All BFT cells plus the Nakamoto rows."""

    bft_rows: Tuple[ProtocolSafetyRow, ...]
    nakamoto_rows: Tuple[NakamotoSafetyRow, ...]
    condition_predicts_safety: bool


def _diverse_population(count: int) -> ReplicaPopulation:
    """Each replica runs its own configuration (abundance 1)."""
    return ReplicaPopulation.with_unique_configurations(count, prefix="diverse")


def _shared_client_population(count: int, shared_indices: Sequence[int]) -> ReplicaPopulation:
    """Replicas at ``shared_indices`` run one dominant stack; the rest are unique.

    The shared indices are interleaved across the replica-id order so the
    honest survivors of a shared-component compromise end up on both sides of
    a Byzantine primary's equivocation split — the worst case for safety.
    """
    shared = ReplicaConfiguration.from_names(
        operating_system="linux", consensus_client="client-alpha", crypto_library="openssl"
    )
    shared_set = set(shared_indices)
    if any(index < 0 or index >= count for index in shared_set):
        raise ExperimentError("shared indices must address existing replicas")
    replicas = []
    for index in range(count):
        configuration = (
            shared if index in shared_set else ReplicaConfiguration.labeled(f"unique-{index}")
        )
        replicas.append(Replica(replica_id=f"replica-{index}", configuration=configuration))
    return ReplicaPopulation(replicas)


def _campaign_schedule(population: ReplicaPopulation) -> Tuple[FaultSchedule, int]:
    """Exploit the single most damaging vulnerability against ``population``.

    Target selection and fault-domain resolution run over the campaign's
    array-backed :class:`~repro.faults.matrix.PopulationMatrix` (one masked
    matrix–vector reduction on the compute backend); with the catalog's
    deterministic exploits the outcome is identical to the scalar model.
    """
    catalog = VulnerabilityCatalog.for_population(population)
    campaign = ExploitCampaign(population, catalog)
    outcome = campaign.run_worst_case(max_vulnerabilities=1)
    return FaultSchedule.from_campaign(outcome), len(outcome.compromised_replicas)


def run_protocol_safety(
    *,
    replica_count: int = 7,
    protocols: Sequence[str] = ("pbft", "hotstuff", "hybrid"),
) -> ProtocolSafetyResult:
    """Run the end-to-end protocol-safety experiment."""
    if replica_count != 7:
        raise ExperimentError(
            "the experiment's deployments are laid out for exactly 7 replicas"
        )
    deployments: Dict[str, ReplicaPopulation] = {
        "diverse (unique configs)": _diverse_population(replica_count),
        "shared client on 2 of 7": _shared_client_population(replica_count, (0, 3)),
        "shared client on 3 of 7": _shared_client_population(replica_count, (0, 3, 5)),
        "shared client on 5 of 7": _shared_client_population(replica_count, (0, 2, 3, 5, 6)),
    }
    bft_rows: List[ProtocolSafetyRow] = []
    prediction_matches = True
    for name, population in deployments.items():
        schedule, byzantine_count = _campaign_schedule(population)
        for protocol in protocols:
            # The campaign compromises whole replicas; their trusted
            # components are assumed to stay intact (the trusted-hardware
            # fault domain is exercised separately in the hybrid tests).
            result: ConsensusRunResult = run_consensus(
                population,
                schedule,
                protocol=protocol,
            )
            condition = result.within_fault_bound
            bft_rows.append(
                ProtocolSafetyRow(
                    deployment=name,
                    protocol=protocol,
                    replicas=replica_count,
                    byzantine=byzantine_count,
                    fault_bound=result.quorum.fault_bound,
                    condition_satisfied=condition,
                    safety_observed=result.safety_ok,
                )
            )
            if condition and not result.safety_ok:
                # The condition guarantees safety; the converse need not hold.
                prediction_matches = False

    nakamoto_rows = _nakamoto_rows()
    return ProtocolSafetyResult(
        bft_rows=tuple(bft_rows),
        nakamoto_rows=tuple(nakamoto_rows),
        condition_predicts_safety=prediction_matches,
    )


def _nakamoto_rows() -> List[NakamotoSafetyRow]:
    """Compromise pool software under two diversity assumptions."""
    pools, solo = pools_from_snapshot(residual_miners=100)
    power = {pool.pool_id: pool.total_hash_power() for pool in pools}
    power.update({miner.miner_id: miner.hash_power for miner in solo})
    rows = []
    # Diverse pools: every pool runs unique software; one vulnerability only
    # captures the single largest pool.
    largest_pool = max(power, key=power.get)
    diverse = majority_takeover(power, [largest_pool])
    rows.append(
        NakamotoSafetyRow(
            deployment="diverse pools (1 pool compromised)",
            compromised_fraction=diverse.compromised_fraction,
            majority=diverse.majority,
            double_spend_probability=diverse.double_spend_probability,
        )
    )
    # Shared pool software: the top five pools run the same coordination
    # stack, so a single vulnerability captures all of them.
    top_five = sorted(power, key=power.get, reverse=True)[:5]
    shared = majority_takeover(power, top_five)
    rows.append(
        NakamotoSafetyRow(
            deployment="shared pool software (top-5 compromised)",
            compromised_fraction=shared.compromised_fraction,
            majority=shared.majority,
            double_spend_probability=shared.double_spend_probability,
        )
    )
    return rows


def protocol_safety_table(result: ProtocolSafetyResult) -> Table:
    """The BFT cells as a printable table."""
    table = Table(
        headers=(
            "deployment",
            "protocol",
            "byzantine",
            "fault bound f",
            "condition f >= faults",
            "safety observed",
        )
    )
    for row in result.bft_rows:
        table.add_row(
            row.deployment,
            row.protocol,
            row.byzantine,
            row.fault_bound,
            row.condition_satisfied,
            row.safety_observed,
        )
    return table


def nakamoto_table(result: ProtocolSafetyResult) -> Table:
    """The Nakamoto rows as a printable table."""
    table = Table(
        headers=(
            "deployment",
            "compromised hash fraction",
            "majority",
            "P[double spend, 6 conf]",
        )
    )
    for row in result.nakamoto_rows:
        table.add_row(
            row.deployment,
            row.compromised_fraction,
            row.majority,
            row.double_spend_probability,
        )
    return table


@dataclass(frozen=True)
class ProtocolSafetyParams:
    """Orchestrator parameters for the end-to-end protocol-safety runs."""

    replica_count: int = 7
    protocols: Tuple[str, ...] = ("pbft", "hotstuff", "hybrid")


def build_payload(params: ProtocolSafetyParams = None) -> ResultPayload:
    """Run the end-to-end experiment as a structured payload."""
    params = params or ProtocolSafetyParams()
    result = run_protocol_safety(
        replica_count=params.replica_count, protocols=tuple(params.protocols)
    )
    bft = protocol_safety_table(result)
    bft.title = "bft_safety"
    nakamoto = nakamoto_table(result)
    nakamoto.title = "nakamoto_safety"
    return ResultPayload(
        tables=(bft, nakamoto),
        metrics={"condition_predicts_safety": result.condition_predicts_safety},
    )


def render_result(result: ExperimentResult) -> str:
    """The classic protocol-safety stdout report (both tables)."""
    return "\n".join(
        [
            "End-to-end BFT safety under a single shared vulnerability",
            result.tables[0].render(),
            "",
            "Nakamoto: hash power captured through shared pool software",
            result.tables[1].render(),
            "",
            "the Section II-C condition predicted safety correctly: "
            f"{result.metrics['condition_predicts_safety']}",
        ]
    )


SPEC = ExperimentSpec(
    experiment_id="protocol_safety",
    title="End-to-end protocol safety: shared faults vs simulated consensus",
    build=build_payload,
    render=render_result,
    params_type=ProtocolSafetyParams,
    tags=("extension", "protocols"),
    seed=None,
    backend_sensitive=False,
)


def main(argv: Sequence[str] = ()) -> None:
    """Run the end-to-end protocol-safety experiment and print both tables."""
    print(render_result(execute_spec(SPEC)))


if __name__ == "__main__":  # pragma: no cover - manual entry point
    main()
