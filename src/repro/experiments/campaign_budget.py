"""Safety-violation probability as a function of the adversary's budget.

The Section II-C condition bounds the *sum* of per-vulnerability compromised
powers, so the attacker's exploit budget ``m`` (how many distinct zero-days
they can weaponize simultaneously) is a first-order knob.  This experiment
sweeps that budget against one ecosystem-sampled population: the
:class:`~repro.faults.engine.GridCampaignEngine` runs the *entire* sweep —
every budget, hundreds of randomized worst-case campaigns each — as one
fused backend kernel call, judging the BFT (1/3) and majority (1/2)
tolerances on the same shared exploit draws.

Expected shape: the violation probability grows monotonically with the
budget — each extra exploit can only add compromised power — and the gap
between the two tolerance rows shows how much headroom hybrid/Nakamoto
deployments buy.

The campaign kernels draw from a counter-based RNG stream, so the numbers
are identical on every compute backend (the spec is not backend-sensitive).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.analysis.report import Table
from repro.core.entropy import shannon_entropy
from repro.core.exceptions import ExperimentError
from repro.core.resilience import ProtocolFamily
from repro.experiments.orchestrator import (
    ExperimentResult,
    ExperimentSpec,
    ResultPayload,
    execute_spec,
)
from repro.faults.engine import CampaignEstimate, GridCampaignEngine
from repro.faults.scenarios import budget_grid, ecosystem_scenario


@dataclass(frozen=True)
class CampaignBudgetRow:
    """One adversary budget's batched-campaign estimates."""

    budget: int
    exploited: int
    violation_probability_bft: float
    violation_probability_majority: float
    mean_compromised_fraction: float


@dataclass(frozen=True)
class CampaignBudgetResult:
    """All budgets, in sweep order, plus the scenario description."""

    scenario: str
    population_size: int
    catalog_size: int
    entropy_bits: float
    rows: Tuple[CampaignBudgetRow, ...]
    monotone_increasing: bool


def run_campaign_budget(
    *,
    ecosystem: str = "diverse",
    population_size: int = 48,
    budgets: Sequence[int] = (1, 2, 3, 4, 6),
    exploit_probability: float = 0.55,
    trials: int = 400,
    seed: int = 11,
) -> CampaignBudgetResult:
    """Sweep the adversary's exploit budget with batched campaign trials."""
    if not budgets:
        raise ExperimentError("at least one adversary budget is required")
    if any(budget <= 0 for budget in budgets):
        raise ExperimentError("adversary budgets must be positive")
    scenario = ecosystem_scenario(
        ecosystem=ecosystem,
        population_size=population_size,
        seed=seed,
        exploit_probability=exploit_probability,
    )
    engine = GridCampaignEngine(scenario.population, scenario.catalog)
    # The whole sweep is one fused kernel call: every budget is a grid point
    # at seed offset ``index`` (the looped sweep's ``seed + index``), and both
    # tolerance levels judge the same sampled campaigns from one exploit draw.
    estimates = engine.estimate_grid(
        budget_grid(
            tuple(budgets),
            families=(ProtocolFamily.BFT, ProtocolFamily.NAKAMOTO),
        ),
        trials=trials,
        seed=seed,
    )
    rows = []
    for budget, point in zip(budgets, estimates):
        bft: CampaignEstimate = point.estimate_at(0)
        majority = point.estimate_at(1)
        rows.append(
            CampaignBudgetRow(
                budget=budget,
                exploited=len(bft.exploited),
                violation_probability_bft=bft.violation_probability,
                violation_probability_majority=majority.violation_probability,
                mean_compromised_fraction=bft.mean_compromised_fraction,
            )
        )
    series = [row.violation_probability_bft for row in rows]
    monotone = all(later >= earlier - 0.05 for earlier, later in zip(series, series[1:]))
    return CampaignBudgetResult(
        scenario=scenario.label,
        population_size=len(scenario.population),
        catalog_size=len(scenario.catalog),
        # Scalar entropy (not the backend kernel) so the reported bits are
        # bit-identical across backends, like every campaign number here.
        entropy_bits=shannon_entropy(
            scenario.population.configuration_census().probabilities()
        ),
        rows=tuple(rows),
        monotone_increasing=monotone,
    )


def campaign_budget_table(result: CampaignBudgetResult) -> Table:
    """The budget sweep as a printable table."""
    table = Table(
        headers=(
            "budget m",
            "exploited",
            "P[violation] BFT (1/3)",
            "P[violation] majority (1/2)",
            "mean compromised fraction",
        )
    )
    for row in result.rows:
        table.add_row(
            row.budget,
            row.exploited,
            row.violation_probability_bft,
            row.violation_probability_majority,
            row.mean_compromised_fraction,
        )
    return table


@dataclass(frozen=True)
class CampaignBudgetParams:
    """Orchestrator parameters for the adversary-budget sweep."""

    ecosystem: str = "diverse"
    population_size: int = 48
    budgets: Tuple[int, ...] = (1, 2, 3, 4, 6)
    exploit_probability: float = 0.55
    trials: int = 400
    seed: int = 11


def build_payload(params: CampaignBudgetParams = None) -> ResultPayload:
    """Run the budget sweep as a structured payload."""
    params = params or CampaignBudgetParams()
    result = run_campaign_budget(
        ecosystem=params.ecosystem,
        population_size=params.population_size,
        budgets=tuple(params.budgets),
        exploit_probability=params.exploit_probability,
        trials=params.trials,
        seed=params.seed,
    )
    table = campaign_budget_table(result)
    table.title = "budget_sweep"
    return ResultPayload(
        tables=(table,),
        metrics={
            "scenario": result.scenario,
            "catalog_size": result.catalog_size,
            "entropy_bits": result.entropy_bits,
            "monotone_increasing": result.monotone_increasing,
        },
    )


def render_result(result: ExperimentResult) -> str:
    """The campaign-budget stdout report."""
    return "\n".join(
        [
            "Safety-violation probability vs adversary exploit budget "
            f"({result.metrics['scenario']}, {result.params['trials']} trials)",
            result.tables[0].render(),
            "",
            "violation probability grows with the budget: "
            f"{result.metrics['monotone_increasing']}",
        ]
    )


SPEC = ExperimentSpec(
    experiment_id="campaign_budget",
    title="Batched campaigns: violation probability vs adversary budget",
    build=build_payload,
    render=render_result,
    params_type=CampaignBudgetParams,
    tags=("extension", "campaign"),
    seed=11,
    backend_sensitive=False,
)


def main(argv: Sequence[str] = ()) -> None:
    """Run the adversary-budget sweep and print the table."""
    print(render_result(execute_spec(SPEC)))


if __name__ == "__main__":  # pragma: no cover - manual entry point
    main()
