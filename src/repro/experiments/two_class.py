"""The paper's concluding proposal: two replica classes with different weights.

The conclusion of the paper sketches a mitigation for permissionless systems:
keep both attested and non-attested replicas, but give them different voting
weights.  This experiment implements that proposal with the
:class:`~repro.diversity.policy.TwoClassWeightPolicy` and sweeps the
attested:unattested weight ratio, reporting for each ratio:

- the entropy of the effective-power census (unattested power is lumped into
  one worst-case "unknown" fault domain);
- the effective-power fraction the unattested class would hand an attacker in
  the worst case;
- the Monte-Carlo safety-violation probability of the resulting census.

Expected shape: as attested replicas gain weight, the unknown fault domain's
effective share falls below the protocol tolerance and the violation
probability drops — quantifying the benefit the conclusion claims.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.analysis.monte_carlo import estimate_violation_probability
from repro.analysis.report import Table
from repro.core.distribution import ConfigurationDistribution
from repro.core.exceptions import ExperimentError
from repro.core.population import ReplicaPopulation
from repro.core.resilience import ProtocolFamily
from repro.datasets.software_ecosystem import SyntheticEcosystem, default_ecosystem
from repro.diversity.policy import TwoClassWeightPolicy
from repro.experiments.orchestrator import (
    ExperimentResult,
    ExperimentSpec,
    ResultPayload,
    execute_spec,
)


@dataclass(frozen=True)
class TwoClassRow:
    """Outcome of one attested:unattested weight ratio."""

    weight_ratio: float
    census_entropy_bits: float
    unattested_effective_fraction: float
    violation_probability: float


@dataclass(frozen=True)
class TwoClassResult:
    """The weight-ratio sweep."""

    population_size: int
    attested_population_fraction: float
    rows: Tuple[TwoClassRow, ...]
    improves_with_weight: bool


def run_two_class(
    *,
    population_size: int = 300,
    attested_population_fraction: float = 0.4,
    weight_ratios: Sequence[float] = (1.0, 2.0, 4.0, 8.0, 16.0),
    ecosystem: SyntheticEcosystem = None,
    vulnerability_probability: float = 0.3,
    trials: int = 1500,
    seed: int = 23,
) -> TwoClassResult:
    """Run the two-class weight-policy sweep."""
    if population_size < 10:
        raise ExperimentError("the population should have at least 10 replicas")
    if not 0.0 < attested_population_fraction < 1.0:
        raise ExperimentError("the attested fraction must be strictly between 0 and 1")
    if not weight_ratios:
        raise ExperimentError("at least one weight ratio is required")
    ecosystem = ecosystem or default_ecosystem()
    population: ReplicaPopulation = ecosystem.sample_population(
        population_size, seed=seed, attested_fraction=attested_population_fraction
    )
    rows = []
    for index, ratio in enumerate(weight_ratios):
        if ratio <= 0:
            raise ExperimentError(f"weight ratio must be positive, got {ratio}")
        policy = TwoClassWeightPolicy(attested_weight=ratio, unattested_weight=1.0)
        weighted = policy.apply(population)
        census = _census_from_weighted(weighted.effective_power, population)
        estimate = estimate_violation_probability(
            census,
            family=ProtocolFamily.BFT,
            vulnerability_probability=vulnerability_probability,
            exploit_budget=1,
            trials=trials,
            seed=seed + index,
        )
        rows.append(
            TwoClassRow(
                weight_ratio=ratio,
                census_entropy_bits=weighted.entropy,
                unattested_effective_fraction=weighted.unattested_worst_case_fraction,
                violation_probability=estimate.violation_probability,
            )
        )
    fractions = [row.unattested_effective_fraction for row in rows]
    improves = all(later <= earlier + 1e-9 for earlier, later in zip(fractions, fractions[1:]))
    return TwoClassResult(
        population_size=population_size,
        attested_population_fraction=attested_population_fraction,
        rows=tuple(rows),
        improves_with_weight=improves,
    )


def _census_from_weighted(
    effective_power: Tuple[Tuple[str, float], ...], population: ReplicaPopulation
) -> ConfigurationDistribution:
    """Census over fault domains under the policy's effective power.

    Attested replicas contribute their attested configuration; unattested
    power is pooled into a single worst-case "unknown" domain, mirroring
    :meth:`TwoClassWeightPolicy.apply`.
    """
    weights: dict = {}
    power_by_id = dict(effective_power)
    for replica in population:
        power = power_by_id.get(replica.replica_id, 0.0)
        if power <= 0:
            continue
        key = replica.configuration if replica.attested else "unattested-unknown"
        weights[key] = weights.get(key, 0.0) + power
    return ConfigurationDistribution(weights)


def two_class_table(result: TwoClassResult) -> Table:
    """The sweep as a printable table."""
    table = Table(
        headers=(
            "attested weight ratio",
            "census entropy (bits)",
            "unattested effective fraction",
            "P[violation] BFT",
        )
    )
    for row in result.rows:
        table.add_row(
            row.weight_ratio,
            row.census_entropy_bits,
            row.unattested_effective_fraction,
            row.violation_probability,
        )
    return table


@dataclass(frozen=True)
class TwoClassParams:
    """Orchestrator parameters for the two-class weight-policy sweep."""

    population_size: int = 300
    attested_population_fraction: float = 0.4
    weight_ratios: Tuple[float, ...] = (1.0, 2.0, 4.0, 8.0, 16.0)
    vulnerability_probability: float = 0.3
    trials: int = 1500
    seed: int = 23


def build_payload(params: TwoClassParams = None) -> ResultPayload:
    """Run the weight-ratio sweep as a structured payload."""
    params = params or TwoClassParams()
    result = run_two_class(
        population_size=params.population_size,
        attested_population_fraction=params.attested_population_fraction,
        weight_ratios=tuple(params.weight_ratios),
        vulnerability_probability=params.vulnerability_probability,
        trials=params.trials,
        seed=params.seed,
    )
    table = two_class_table(result)
    table.title = "weight_ratio_sweep"
    return ResultPayload(
        tables=(table,),
        metrics={"improves_with_weight": result.improves_with_weight},
    )


def render_result(result: ExperimentResult) -> str:
    """The classic two-class stdout report."""
    fraction = result.params["attested_population_fraction"]
    return "\n".join(
        [
            "Two-class voting-weight policy "
            f"({fraction:.0%} of {result.params['population_size']} replicas attested)",
            result.tables[0].render(),
            "",
            "unattested exposure shrinks as attested weight grows: "
            f"{result.metrics['improves_with_weight']}",
        ]
    )


SPEC = ExperimentSpec(
    experiment_id="two_class",
    title="Two-class voting-weight policy (attested vs unattested replicas)",
    build=build_payload,
    render=render_result,
    params_type=TwoClassParams,
    tags=("extension", "monte-carlo"),
    seed=23,
    backend_sensitive=True,
)


def main(argv: Sequence[str] = ()) -> None:
    """Run the two-class experiment and print the table."""
    print(render_result(execute_spec(SPEC)))


if __name__ == "__main__":  # pragma: no cover - manual entry point
    main()
