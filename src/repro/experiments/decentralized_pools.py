"""Decentralized pools / non-outsourceable mining as a diversity mitigation.

Section III-A suggests non-outsourceable mining puzzles and decentralized
mining pools as ways to undo the consensus-power concentration that pool
operators (and exchange custodians) create.  This experiment quantifies the
mitigation on the paper's own Example 1 snapshot:

- starting from the 02-Feb-2023 pool landscape (with each pool given a number
  of member miners proportional to its size), it decentralizes the k largest
  pools for k = 0..17 and reports the census entropy, the largest fault
  domain and the hash power a small coalition of operators can still gather;
- the k = 0 row is exactly the Figure 1 situation, and the k = 17 row is the
  fully non-outsourceable ideal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.analysis.report import Table
from repro.core.exceptions import ExperimentError
from repro.experiments.orchestrator import (
    ExperimentResult,
    ExperimentSpec,
    ResultPayload,
    execute_spec,
)
from repro.nakamoto.decentralized_pool import (
    decentralization_report,
    operator_takeover_fraction,
)
from repro.nakamoto.pool import pools_from_snapshot


@dataclass(frozen=True)
class DecentralizationRow:
    """Effect of decentralizing the ``decentralized_pools`` largest pools."""

    decentralized_pools: int
    entropy_bits: float
    largest_fault_domain: float
    effective_replicas: int
    coalition_takeover: float


@dataclass(frozen=True)
class DecentralizedPoolsResult:
    """The full k-largest-pools sweep."""

    members_per_percent: int
    coalition_size: int
    rows: Tuple[DecentralizationRow, ...]
    entropy_is_monotone: bool
    breaks_majority_at: int


def run_decentralized_pools(
    *,
    residual_miners: int = 100,
    members_per_pool: int = 20,
    coalition_size: int = 3,
    steps: Sequence[int] = (0, 1, 2, 3, 5, 10, 17),
) -> DecentralizedPoolsResult:
    """Run the decentralization sweep over the Example 1 pool landscape."""
    if members_per_pool < 1:
        raise ExperimentError("each pool needs at least one member")
    if coalition_size < 1:
        raise ExperimentError("the coalition needs at least one operator")
    if not steps or any(step < 0 or step > 17 for step in steps):
        raise ExperimentError("steps must name between 0 and 17 pools")
    pools, solo = pools_from_snapshot(
        residual_miners=residual_miners, members_per_pool=members_per_pool
    )
    ordered = sorted(pools, key=lambda pool: -pool.total_hash_power())

    rows: List[DecentralizationRow] = []
    breaks_majority_at = -1
    for step in steps:
        selected = [pool.pool_id for pool in ordered[:step]]
        report = decentralization_report(
            pools, solo, decentralized_pool_ids=selected
        )
        takeover = operator_takeover_fraction(
            pools, solo, coalition_size, decentralized_pool_ids=selected
        )
        rows.append(
            DecentralizationRow(
                decentralized_pools=step,
                entropy_bits=report.decentralized_entropy_bits,
                largest_fault_domain=report.decentralized_largest_share,
                effective_replicas=report.decentralized_replicas,
                coalition_takeover=takeover,
            )
        )
        if breaks_majority_at < 0 and takeover < 0.5:
            breaks_majority_at = step
    entropies = [row.entropy_bits for row in rows]
    return DecentralizedPoolsResult(
        members_per_percent=members_per_pool,
        coalition_size=coalition_size,
        rows=tuple(rows),
        entropy_is_monotone=all(
            later >= earlier - 1e-9 for earlier, later in zip(entropies, entropies[1:])
        ),
        breaks_majority_at=breaks_majority_at,
    )


def decentralization_table(result: DecentralizedPoolsResult) -> Table:
    """The sweep as a printable table."""
    table = Table(
        headers=(
            "decentralized pools (largest first)",
            "entropy (bits)",
            "largest fault domain",
            "effective replicas",
            f"top-{result.coalition_size} operator takeover",
        )
    )
    for row in result.rows:
        table.add_row(
            row.decentralized_pools,
            row.entropy_bits,
            row.largest_fault_domain,
            row.effective_replicas,
            row.coalition_takeover,
        )
    return table


@dataclass(frozen=True)
class DecentralizedPoolsParams:
    """Orchestrator parameters for the pool-decentralization sweep."""

    residual_miners: int = 100
    members_per_pool: int = 20
    coalition_size: int = 3
    steps: Tuple[int, ...] = (0, 1, 2, 3, 5, 10, 17)


def build_payload(params: DecentralizedPoolsParams = None) -> ResultPayload:
    """Run the decentralization sweep as a structured payload."""
    params = params or DecentralizedPoolsParams()
    result = run_decentralized_pools(
        residual_miners=params.residual_miners,
        members_per_pool=params.members_per_pool,
        coalition_size=params.coalition_size,
        steps=tuple(params.steps),
    )
    table = decentralization_table(result)
    table.title = "decentralization_sweep"
    return ResultPayload(
        tables=(table,),
        metrics={
            "entropy_is_monotone": result.entropy_is_monotone,
            "breaks_majority_at": result.breaks_majority_at,
        },
    )


def render_result(result: ExperimentResult) -> str:
    """The classic decentralized-pools stdout report."""
    lines = [
        "Decentralized pools / non-outsourceable mining on the Example 1 snapshot "
        f"({result.params['members_per_pool']} members per pool)",
        result.tables[0].render(),
        "",
        "entropy grows with every decentralized pool : "
        f"{result.metrics['entropy_is_monotone']}",
    ]
    breaks_at = result.metrics["breaks_majority_at"]
    if breaks_at >= 0:
        lines.append(
            f"a top-{result.params['coalition_size']} operator coalition loses its "
            f"majority once the {breaks_at} largest pools are decentralized"
        )
    return "\n".join(lines)


SPEC = ExperimentSpec(
    experiment_id="decentralized_pools",
    title="Decentralized pools / non-outsourceable mining (Example 1 snapshot)",
    build=build_payload,
    render=render_result,
    params_type=DecentralizedPoolsParams,
    tags=("extension", "nakamoto"),
    seed=None,
    backend_sensitive=False,
)


def main(argv: Sequence[str] = ()) -> None:
    """Run the decentralized-pools experiment and print the table."""
    print(render_result(execute_spec(SPEC)))


if __name__ == "__main__":  # pragma: no cover - manual entry point
    main()
