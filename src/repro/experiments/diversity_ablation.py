"""Ablation: diversity management strategies under a constrained ecosystem.

DESIGN.md §6 calls out the assignment strategy as a design choice worth
ablating.  This experiment deploys the same number of replicas with three
strategies over the same candidate configurations:

- *planner* — the entropy-maximizing water-filling planner (Lazarus-style
  managed deployment);
- *proportional* — replicas follow component market shares (what an unmanaged
  permissionless population converges to);
- *monoculture* — everyone picks the most popular configuration (worst case).

For each strategy it reports the census entropy, the largest configuration
share, whether a single shared vulnerability can violate BFT safety, and the
Monte-Carlo violation probability — quantifying how much active diversity
management buys.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from repro.analysis.monte_carlo import estimate_violation_probability
from repro.analysis.report import Table
from repro.core.distribution import ConfigurationDistribution
from repro.core.exceptions import ExperimentError
from repro.core.resilience import ProtocolFamily, tolerated_fault_fraction
from repro.datasets.software_ecosystem import SyntheticEcosystem, default_ecosystem
from repro.diversity.planner import AssignmentPlan, EntropyPlanner
from repro.experiments.orchestrator import (
    ExperimentResult,
    ExperimentSpec,
    ResultPayload,
    execute_spec,
)


@dataclass(frozen=True)
class AblationRow:
    """Outcome of one assignment strategy."""

    strategy: str
    entropy_bits: float
    kappa: int
    largest_share: float
    single_fault_violates_bft: bool
    violation_probability: float


@dataclass(frozen=True)
class DiversityAblationResult:
    """All strategies for one deployment size."""

    replica_count: int
    candidate_count: int
    rows: Tuple[AblationRow, ...]
    planner_beats_baselines: bool


def _candidate_labels(ecosystem: SyntheticEcosystem, per_kind_limit: int) -> Sequence[str]:
    """Flatten the ecosystem into whole-configuration candidate labels.

    Every combination of the top ``per_kind_limit`` components per kind
    becomes one candidate label; the proportional baseline weights each label
    by the product of its components' market shares.
    """
    labels = ["candidate-0"]
    # Build labels and weights jointly in _candidate_weights; this helper only
    # returns the label list for the planner.
    return [label for label, _ in _candidate_weights(ecosystem, per_kind_limit)]


def _candidate_weights(
    ecosystem: SyntheticEcosystem, per_kind_limit: int
) -> Sequence[Tuple[str, float]]:
    """(label, popularity weight) pairs for the candidate configurations."""
    if per_kind_limit < 1:
        raise ExperimentError("per-kind limit must be positive")
    combos: Sequence[Tuple[str, float]] = [("cfg", 1.0)]
    for market in ecosystem.markets:
        shares = sorted(
            market.normalized_shares().items(), key=lambda item: -item[1]
        )[:per_kind_limit]
        combos = [
            (f"{label}|{market.kind.value}:{name}", weight * share)
            for label, weight in combos
            for name, share in shares
        ]
    return combos


def run_diversity_ablation(
    *,
    replica_count: int = 60,
    per_kind_limit: int = 2,
    ecosystem: SyntheticEcosystem = None,
    vulnerability_probability: float = 0.3,
    trials: int = 1500,
    seed: int = 31,
) -> DiversityAblationResult:
    """Run the diversity-management ablation."""
    if replica_count < 4:
        raise ExperimentError("at least 4 replicas are required")
    ecosystem = ecosystem or default_ecosystem()
    weights = _candidate_weights(ecosystem, per_kind_limit)
    labels = [label for label, _ in weights]
    popularity = dict(weights)
    planner = EntropyPlanner(labels)

    plans: Dict[str, AssignmentPlan] = {
        "planner (entropy-maximizing)": planner.plan(replica_count),
        "proportional (market-driven)": planner.plan_proportional(replica_count, popularity),
        "monoculture (most popular)": planner.plan_monoculture(replica_count),
    }

    tolerance = tolerated_fault_fraction(ProtocolFamily.BFT)
    rows = []
    for index, (strategy, plan) in enumerate(plans.items()):
        census: ConfigurationDistribution = plan.as_distribution()
        largest = max(census.probabilities())
        estimate = estimate_violation_probability(
            census,
            family=ProtocolFamily.BFT,
            vulnerability_probability=vulnerability_probability,
            exploit_budget=1,
            trials=trials,
            seed=seed + index,
        )
        rows.append(
            AblationRow(
                strategy=strategy,
                entropy_bits=census.entropy(),
                kappa=census.support_size(),
                largest_share=largest,
                single_fault_violates_bft=largest >= tolerance,
                violation_probability=estimate.violation_probability,
            )
        )

    planner_row = rows[0]
    planner_wins = all(
        planner_row.entropy_bits >= other.entropy_bits - 1e-9
        and planner_row.violation_probability <= other.violation_probability + 1e-9
        for other in rows[1:]
    )
    return DiversityAblationResult(
        replica_count=replica_count,
        candidate_count=len(labels),
        rows=tuple(rows),
        planner_beats_baselines=planner_wins,
    )


def ablation_table(result: DiversityAblationResult) -> Table:
    """The ablation as a printable table."""
    table = Table(
        headers=(
            "strategy",
            "entropy (bits)",
            "kappa",
            "largest share",
            "1 fault breaks BFT",
            "P[violation]",
        )
    )
    for row in result.rows:
        table.add_row(
            row.strategy,
            row.entropy_bits,
            row.kappa,
            row.largest_share,
            row.single_fault_violates_bft,
            row.violation_probability,
        )
    return table


@dataclass(frozen=True)
class DiversityAblationParams:
    """Orchestrator parameters for the diversity-management ablation."""

    replica_count: int = 60
    per_kind_limit: int = 2
    vulnerability_probability: float = 0.3
    trials: int = 1500
    seed: int = 31


def build_payload(params: DiversityAblationParams = None) -> ResultPayload:
    """Run the ablation as a structured payload."""
    params = params or DiversityAblationParams()
    result = run_diversity_ablation(
        replica_count=params.replica_count,
        per_kind_limit=params.per_kind_limit,
        vulnerability_probability=params.vulnerability_probability,
        trials=params.trials,
        seed=params.seed,
    )
    table = ablation_table(result)
    table.title = "strategy_ablation"
    return ResultPayload(
        tables=(table,),
        metrics={
            "candidate_count": result.candidate_count,
            "planner_beats_baselines": result.planner_beats_baselines,
        },
    )


def render_result(result: ExperimentResult) -> str:
    """The classic diversity-ablation stdout report."""
    return "\n".join(
        [
            f"Diversity-management ablation: {result.params['replica_count']} replicas over "
            f"{result.metrics['candidate_count']} candidate configurations",
            result.tables[0].render(),
            "",
            f"the planner dominates both baselines: {result.metrics['planner_beats_baselines']}",
        ]
    )


SPEC = ExperimentSpec(
    experiment_id="diversity_ablation",
    title="Diversity-management ablation: planner vs proportional vs monoculture",
    build=build_payload,
    render=render_result,
    params_type=DiversityAblationParams,
    tags=("extension", "monte-carlo"),
    seed=31,
    backend_sensitive=True,
)


def main(argv: Sequence[str] = ()) -> None:
    """Run the diversity-management ablation and print the table."""
    print(render_result(execute_spec(SPEC)))


if __name__ == "__main__":  # pragma: no cover - manual entry point
    main()
