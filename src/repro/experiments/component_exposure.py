"""Which component slot is the weakest link? (Section III-A, quantified).

The whole-configuration entropy of Figure 1 does not say *where* a
permissionless population's monoculture sits.  This experiment decomposes the
census of two synthetic ecosystems (the moderately diverse default and the
monoculture-leaning skewed one) by component kind, reporting for each slot the
entropy, the dominant choice's voting-power share and whether one fault in
that choice already violates the BFT tolerance.  It also lists the concrete
components whose exposure exceeds the tolerance — the diversification
priority list a Lazarus-style manager or an operator community would work
through.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from repro.analysis.components import (
    ComponentKindProfile,
    component_entropy_profile,
    diversification_priority,
    weakest_component,
)
from repro.analysis.report import Table
from repro.core.exceptions import ExperimentError
from repro.core.population import ReplicaPopulation
from repro.core.resilience import ProtocolFamily
from repro.datasets.software_ecosystem import (
    SyntheticEcosystem,
    default_ecosystem,
    skewed_ecosystem,
)
from repro.experiments.orchestrator import (
    ExperimentResult,
    ExperimentSpec,
    ResultPayload,
    execute_spec,
)


@dataclass(frozen=True)
class EcosystemExposure:
    """Per-kind profiles and the priority list for one ecosystem."""

    label: str
    population_entropy_bits: float
    profiles: Tuple[ComponentKindProfile, ...]
    weakest_kind: str
    weakest_share: float
    priority_components: Tuple[Tuple[str, float], ...]


@dataclass(frozen=True)
class ComponentExposureResult:
    """The experiment output for every analysed ecosystem."""

    population_size: int
    ecosystems: Tuple[EcosystemExposure, ...]
    skewed_has_critical_slot: bool
    diverse_has_no_critical_slot: bool


def _analyse(
    label: str, ecosystem: SyntheticEcosystem, population_size: int, seed: int
) -> EcosystemExposure:
    population: ReplicaPopulation = ecosystem.sample_population(population_size, seed=seed)
    profiles = component_entropy_profile(population, family=ProtocolFamily.BFT)
    weakest = weakest_component(population, family=ProtocolFamily.BFT)
    return EcosystemExposure(
        label=label,
        population_entropy_bits=population.entropy(),
        profiles=profiles,
        weakest_kind=weakest.kind.value,
        weakest_share=weakest.dominant_share,
        priority_components=diversification_priority(population, family=ProtocolFamily.BFT),
    )


def run_component_exposure(
    *,
    population_size: int = 400,
    seed: int = 51,
    ecosystems: Dict[str, SyntheticEcosystem] = None,
) -> ComponentExposureResult:
    """Run the component-exposure decomposition."""
    if population_size < 20:
        raise ExperimentError("the population should have at least 20 replicas")
    if ecosystems is None:
        ecosystems = {
            "default (moderately diverse)": default_ecosystem(),
            "skewed (monoculture-leaning)": skewed_ecosystem(),
        }
    if not ecosystems:
        raise ExperimentError("at least one ecosystem is required")
    analysed = tuple(
        _analyse(label, ecosystem, population_size, seed)
        for label, ecosystem in ecosystems.items()
    )
    skewed = [entry for entry in analysed if "skewed" in entry.label]
    diverse = [entry for entry in analysed if "default" in entry.label]
    return ComponentExposureResult(
        population_size=population_size,
        ecosystems=analysed,
        skewed_has_critical_slot=all(
            any(profile.single_fault_violates for profile in entry.profiles)
            for entry in skewed
        )
        if skewed
        else False,
        diverse_has_no_critical_slot=all(
            not any(profile.single_fault_violates for profile in entry.profiles)
            for entry in diverse
        )
        if diverse
        else False,
    )


def exposure_table(result: ComponentExposureResult) -> Table:
    """Per-kind profiles for every ecosystem as one printable table."""
    table = Table(
        headers=(
            "ecosystem",
            "component kind",
            "entropy (bits)",
            "choices",
            "dominant share",
            "1 fault breaks BFT",
        )
    )
    for entry in result.ecosystems:
        for profile in entry.profiles:
            table.add_row(
                entry.label,
                profile.kind.value,
                profile.entropy_bits,
                profile.distinct_choices,
                profile.dominant_share,
                profile.single_fault_violates,
            )
    return table


@dataclass(frozen=True)
class ComponentExposureParams:
    """Orchestrator parameters for the component-exposure decomposition."""

    population_size: int = 400
    seed: int = 51


def build_payload(params: ComponentExposureParams = None) -> ResultPayload:
    """Run the decomposition as a structured payload (default ecosystems)."""
    params = params or ComponentExposureParams()
    result = run_component_exposure(
        population_size=params.population_size, seed=params.seed
    )
    table = exposure_table(result)
    table.title = "per_kind_profiles"
    return ResultPayload(
        tables=(table,),
        metrics={
            "skewed_has_critical_slot": result.skewed_has_critical_slot,
            "diverse_has_no_critical_slot": result.diverse_has_no_critical_slot,
            "ecosystems": [
                {
                    "label": entry.label,
                    "population_entropy_bits": entry.population_entropy_bits,
                    "weakest_kind": entry.weakest_kind,
                    "weakest_share": entry.weakest_share,
                    "priority_component_count": len(entry.priority_components),
                }
                for entry in result.ecosystems
            ],
        },
    )


def render_result(result: ExperimentResult) -> str:
    """The classic component-exposure stdout report."""
    lines = [
        f"Component-level exposure over {result.params['population_size']}-replica populations",
        result.tables[0].render(),
        "",
    ]
    for entry in result.metrics["ecosystems"]:
        lines.append(
            f"{entry['label']}: population entropy "
            f"{entry['population_entropy_bits']:.3f} bits; "
            f"weakest slot = {entry['weakest_kind']} "
            f"(dominant choice holds {entry['weakest_share']:.0%} of power); "
            f"{entry['priority_component_count']} components above the BFT tolerance"
        )
    return "\n".join(lines)


SPEC = ExperimentSpec(
    experiment_id="component_exposure",
    title="Component-level exposure: which component slot is the weakest link?",
    build=build_payload,
    render=render_result,
    params_type=ComponentExposureParams,
    tags=("extension", "components"),
    seed=51,
    backend_sensitive=False,
)


def main(argv: Sequence[str] = ()) -> None:
    """Run the component-exposure experiment and print the tables."""
    print(render_result(execute_spec(SPEC)))


if __name__ == "__main__":  # pragma: no cover - manual entry point
    main()
