"""Example 1: Bitcoin's best-case diversity vs a small BFT deployment.

Example 1 of the paper compares the best-case entropy of the Bitcoin mining
landscape (17 pools holding 99.13% of hash power, residual spread over up to
1000 miners) against a classic BFT deployment of just 8 replicas with unique
configurations (entropy exactly 3 bits), concluding that the oligopoly keeps
Bitcoin's effective diversity *below* that of the 8-replica system.

``run_example1`` reproduces the comparison and also reports the effective
number of configurations (the Hill number) and the minimum number of
equal-weight configurations Bitcoin would need to match various BFT sizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.analysis.report import Table
from repro.core.distribution import ConfigurationDistribution
from repro.core.exceptions import ExperimentError
from repro.core.optimality import minimum_kappa_for_entropy
from repro.datasets.bitcoin_pools import figure1_distribution
from repro.experiments.figure1 import run_figure1
from repro.experiments.orchestrator import (
    ExperimentResult,
    ExperimentSpec,
    ResultPayload,
    execute_spec,
)


@dataclass(frozen=True)
class Example1Result:
    """The Example 1 comparison.

    Attributes:
        bitcoin_best_entropy_bits: the maximum best-case Bitcoin entropy over
            the full Figure 1 sweep (x = 1..1000).
        bitcoin_entropy_at_x101: entropy at the caption's example point
            (x = 101, i.e. 118 miners).
        bft8_entropy_bits: entropy of 8 unique-configuration replicas (3 bits).
        bitcoin_below_bft8: whether Bitcoin stays below the 8-replica system.
        effective_configurations: Hill-number equivalent of the Bitcoin
            distribution at its best sweep point.
        equivalent_bft_size: smallest uniform BFT deployment matching
            Bitcoin's best-case entropy.
    """

    bitcoin_best_entropy_bits: float
    bitcoin_entropy_at_x101: float
    bft8_entropy_bits: float
    bitcoin_below_bft8: bool
    effective_configurations: float
    equivalent_bft_size: int


def bft_uniform_entropy(replicas: int) -> float:
    """Entropy (bits) of a BFT system with one unique configuration per replica."""
    if replicas <= 0:
        raise ExperimentError(f"replica count must be positive, got {replicas}")
    return ConfigurationDistribution.uniform_labels(replicas).entropy()


def run_example1(*, max_residual_miners: int = 1000) -> Example1Result:
    """Reproduce the Example 1 comparison."""
    figure1 = run_figure1(max_residual_miners=max_residual_miners)
    best = figure1.max_entropy_bits
    best_distribution = figure1_distribution(max_residual_miners)
    at_101 = (
        figure1.entropy_at(101)
        if max_residual_miners >= 101
        else figure1.points[-1].entropy_bits
    )
    bft8 = bft_uniform_entropy(8)
    return Example1Result(
        bitcoin_best_entropy_bits=best,
        bitcoin_entropy_at_x101=at_101,
        bft8_entropy_bits=bft8,
        bitcoin_below_bft8=best < bft8,
        effective_configurations=best_distribution.effective_configurations(),
        equivalent_bft_size=minimum_kappa_for_entropy(best),
    )


def comparison_table(result: Example1Result) -> Table:
    """Example 1 as a printable table."""
    table = Table(headers=("quantity", "value"))
    table.add_row("Bitcoin best-case entropy (max over x=1..1000)", result.bitcoin_best_entropy_bits)
    table.add_row("Bitcoin best-case entropy at x=101 (118 miners)", result.bitcoin_entropy_at_x101)
    table.add_row("8-replica unique-configuration BFT entropy", result.bft8_entropy_bits)
    table.add_row("Bitcoin stays below the 8-replica BFT system", result.bitcoin_below_bft8)
    table.add_row("effective number of configurations (Hill, q=1)", result.effective_configurations)
    table.add_row("equal-weight configurations needed to match", result.equivalent_bft_size)
    return table


@dataclass(frozen=True)
class Example1Params:
    """Orchestrator parameters for the Example 1 comparison."""

    max_residual_miners: int = 1000


def build_payload(params: Example1Params = None) -> ResultPayload:
    """Run Example 1 and pack the comparison into a structured payload."""
    params = params or Example1Params()
    result = run_example1(max_residual_miners=params.max_residual_miners)
    table = comparison_table(result)
    table.title = "comparison"
    return ResultPayload(
        tables=(table,),
        metrics={
            "bitcoin_best_entropy_bits": result.bitcoin_best_entropy_bits,
            "bitcoin_entropy_at_x101": result.bitcoin_entropy_at_x101,
            "bft8_entropy_bits": result.bft8_entropy_bits,
            "bitcoin_below_bft8": result.bitcoin_below_bft8,
            "effective_configurations": result.effective_configurations,
            "equivalent_bft_size": result.equivalent_bft_size,
        },
    )


def render_result(result: ExperimentResult) -> str:
    """The classic Example 1 stdout report."""
    return "\n".join(
        [
            "Example 1 -- Bitcoin best-case diversity vs an 8-replica BFT system",
            result.tables[0].render(),
        ]
    )


SPEC = ExperimentSpec(
    experiment_id="example1",
    title="Example 1: Bitcoin best-case diversity vs an 8-replica BFT system",
    build=build_payload,
    render=render_result,
    params_type=Example1Params,
    tags=("paper", "example"),
    seed=None,
    backend_sensitive=False,
)


def main(argv: Sequence[str] = ()) -> None:
    """Reproduce Example 1 and print the comparison."""
    print(render_result(execute_spec(SPEC)))


if __name__ == "__main__":  # pragma: no cover - manual entry point
    main()
