"""Binding vote keys to attested configurations (Remark 3).

Remark 3 of the paper: "it is essential to associate the secret key for
attestation and the secret key for authenticating a vote, proving that a vote
indeed comes from a replica with the attested configuration."  The binder
below implements the simulated equivalent: when a quote verifies, the
verifier records (replica, vote key, configuration); a vote is accepted as
*configuration-backed* only if it is signed (simulated HMAC) with the bound
vote key.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.attestation.quote import AttestationQuote
from repro.attestation.verifier import AttestationVerifier
from repro.core.configuration import ReplicaConfiguration
from repro.core.exceptions import AttestationError


def derive_vote_key(replica_id: str, secret_seed: str) -> str:
    """Derive a replica's (simulated) vote-signing key."""
    return hashlib.sha256(f"vote-key:{secret_seed}:{replica_id}".encode()).hexdigest()


def sign_vote(vote_key: str, ballot: str) -> str:
    """Sign a ballot with the vote key (simulated signature)."""
    return hmac.new(vote_key.encode(), ballot.encode(), hashlib.sha256).hexdigest()


@dataclass(frozen=True)
class BoundVote:
    """A vote together with the attestation-backed identity of its signer.

    Attributes:
        replica_id: the voter.
        ballot: the voted value (opaque string).
        signature: signature over the ballot with the bound vote key.
    """

    replica_id: str
    ballot: str
    signature: str


class VoteKeyBinder:
    """Associates verified attestations with vote keys and checks votes."""

    def __init__(self, verifier: AttestationVerifier) -> None:
        self._verifier = verifier
        self._bindings: Dict[str, Tuple[str, ReplicaConfiguration]] = {}

    def bind(self, quote: AttestationQuote, vote_key: str) -> ReplicaConfiguration:
        """Verify ``quote`` and bind ``vote_key`` to the attested configuration.

        Returns the attested configuration; raises when the quote does not
        verify (no binding is recorded in that case).
        """
        if not vote_key:
            raise AttestationError("vote key must not be empty")
        result = self._verifier.verify(quote)
        if not result.valid:
            raise AttestationError(f"attestation failed: {result.reason}")
        assert result.attested_configuration is not None  # guaranteed when valid
        self._bindings[quote.replica_id] = (vote_key, result.attested_configuration)
        return result.attested_configuration

    def is_bound(self, replica_id: str) -> bool:
        """Whether ``replica_id`` currently has an attestation-backed vote key."""
        return replica_id in self._bindings

    def configuration_of(self, replica_id: str) -> ReplicaConfiguration:
        """The attested configuration bound to ``replica_id``."""
        try:
            return self._bindings[replica_id][1]
        except KeyError:
            raise AttestationError(f"replica {replica_id!r} has no binding") from None

    def cast_vote(self, replica_id: str, vote_key: str, ballot: str) -> BoundVote:
        """Produce a vote signed with the replica's bound key."""
        if replica_id not in self._bindings:
            raise AttestationError(f"replica {replica_id!r} has no binding")
        return BoundVote(replica_id=replica_id, ballot=ballot, signature=sign_vote(vote_key, ballot))

    def verify_vote(self, vote: BoundVote) -> bool:
        """Check that a vote was signed with the key bound to its sender.

        Returns false (rather than raising) for unbound replicas and bad
        signatures, because rejecting votes is a normal protocol event.
        """
        binding = self._bindings.get(vote.replica_id)
        if binding is None:
            return False
        bound_key, _ = binding
        expected = sign_vote(bound_key, vote.ballot)
        return hmac.compare_digest(expected, vote.signature)

    def attested_weight(self, weights: Dict[str, float]) -> float:
        """Total voting weight of the replicas that hold valid bindings."""
        return sum(weight for replica_id, weight in weights.items() if replica_id in self._bindings)

    def __len__(self) -> int:
        return len(self._bindings)
