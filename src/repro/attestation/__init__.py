"""Simulated remote attestation (Section III-B).

The paper proposes discovering replica configurations through remote
attestation backed by trusted hardware (TPMs / TEEs) and raises two
additional concerns (Remark 3): the attestation key must be bound to the key
that authenticates votes, and the configuration should stay private to avoid
handing attackers a target list.

Real trusted hardware is obviously not available to a pure-Python
reproduction, so this subpackage *simulates* it (see DESIGN.md §3): devices
measure the replica's declared software stack deterministically, quotes are
"signed" with simulated keys, and a compromised device can be instructed to
lie — which is exactly the failure mode the paper worries about.

- :mod:`repro.attestation.device` -- simulated TPM / TEE devices and keys.
- :mod:`repro.attestation.quote` -- measurements and attestation quotes.
- :mod:`repro.attestation.verifier` -- the attestation verification service.
- :mod:`repro.attestation.binding` -- binding vote keys to attested configs.
- :mod:`repro.attestation.privacy` -- configuration commitments for privacy.
- :mod:`repro.attestation.registry` -- the configuration-discovery registry
  that feeds the diversity analysis.
"""

from repro.attestation.binding import BoundVote, VoteKeyBinder
from repro.attestation.device import AttestationDevice, DeviceType
from repro.attestation.privacy import ConfigurationCommitment, commit_configuration
from repro.attestation.quote import AttestationQuote, measure_configuration
from repro.attestation.registry import AttestationRegistry
from repro.attestation.verifier import AttestationVerifier, VerificationResult

__all__ = [
    "AttestationDevice",
    "AttestationQuote",
    "AttestationRegistry",
    "AttestationVerifier",
    "BoundVote",
    "ConfigurationCommitment",
    "DeviceType",
    "VerificationResult",
    "VoteKeyBinder",
    "commit_configuration",
    "measure_configuration",
]
