"""Measurements and attestation quotes.

A *measurement* is a digest over the replica's software stack (its
:class:`~repro.core.configuration.ReplicaConfiguration`), mimicking what a TPM
accumulates in its PCRs or what an SGX enclave reports as MRENCLAVE.  A
*quote* is a measurement signed by a trusted device, together with a nonce
that protects against replay.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional

from repro.attestation.device import AttestationDevice
from repro.core.configuration import ReplicaConfiguration
from repro.core.exceptions import AttestationError


def measure_configuration(configuration: ReplicaConfiguration) -> str:
    """Deterministic digest of a replica configuration (simulated PCR value)."""
    return hashlib.sha256(configuration.identifier.encode()).hexdigest()


@dataclass(frozen=True)
class AttestationQuote:
    """A signed statement "device D measured configuration digest M".

    Attributes:
        replica_id: the replica being attested.
        device_id: the trusted device that produced the quote.
        measurement: digest of the attested configuration.
        nonce: verifier-chosen freshness nonce.
        firmware_version: firmware the device reported.
        signature: the device's signature over the quote body.
        claimed_configuration: the configuration the replica claims to run
            (carried alongside so the verifier can recompute the measurement;
            a lying replica with an honest device is caught by the mismatch).
    """

    replica_id: str
    device_id: str
    measurement: str
    nonce: str
    firmware_version: str
    signature: str
    claimed_configuration: Optional[ReplicaConfiguration] = None

    def body(self) -> str:
        """The byte string (as text) the signature covers."""
        return "|".join(
            (self.replica_id, self.device_id, self.measurement, self.nonce, self.firmware_version)
        )


def produce_quote(
    device: AttestationDevice,
    replica_id: str,
    configuration: ReplicaConfiguration,
    nonce: str,
    *,
    lie_about: Optional[ReplicaConfiguration] = None,
) -> AttestationQuote:
    """Have ``device`` attest ``configuration`` for ``replica_id``.

    Args:
        device: the replica's trusted device.
        replica_id: the replica being attested.
        configuration: the configuration actually running on the replica.
        nonce: verifier-supplied freshness nonce.
        lie_about: when given *and* the device is compromised, the quote
            reports this configuration instead of the real one (an intact
            device refuses to lie and raises).
    """
    if not replica_id:
        raise AttestationError("replica id must not be empty")
    if not nonce:
        raise AttestationError("nonce must not be empty")
    reported = configuration
    if lie_about is not None:
        if not device.compromised:
            raise AttestationError(
                f"device {device.device_id!r} is intact and refuses to attest a false configuration"
            )
        reported = lie_about
    measurement = measure_configuration(reported)
    quote = AttestationQuote(
        replica_id=replica_id,
        device_id=device.device_id,
        measurement=measurement,
        nonce=nonce,
        firmware_version=device.firmware_version,
        signature="",
        claimed_configuration=reported,
    )
    signature = device.sign(quote.body())
    return AttestationQuote(
        replica_id=quote.replica_id,
        device_id=quote.device_id,
        measurement=quote.measurement,
        nonce=quote.nonce,
        firmware_version=quote.firmware_version,
        signature=signature,
        claimed_configuration=reported,
    )
