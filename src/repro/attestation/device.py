"""Simulated trusted devices (TPMs and TEEs) and their attestation keys.

A device holds an attestation key pair (simulated as an HMAC secret), is
registered with a manufacturer "certificate" (a namespace the verifier
trusts) and produces signed quotes over measurements.  A *compromised* device
signs whatever it is told — modeling the SGX-style attacks the paper cites —
and a *revoked* device is one the verifier no longer trusts.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass, field
from enum import Enum, unique
from typing import Optional

from repro.core.exceptions import AttestationError


@unique
class DeviceType(str, Enum):
    """Families of trusted hardware the paper lists in Section III-B."""

    TPM = "tpm"
    SGX = "sgx"
    TRUSTZONE = "trustzone"
    AMD_PSP = "amd-psp"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


def _derive_secret(device_id: str, manufacturer_secret: str) -> bytes:
    """Deterministically derive a device's signing secret (simulated EK/AIK)."""
    material = f"{manufacturer_secret}:{device_id}".encode()
    return hashlib.sha256(material).digest()


@dataclass
class AttestationDevice:
    """One simulated trusted device attached to a replica.

    Attributes:
        device_id: unique identifier (e.g. ``"tpm-replica-7"``).
        device_type: TPM / SGX / TrustZone / AMD PSP.
        manufacturer_secret: the manufacturer key namespace the verifier
            trusts; devices derived from an unknown namespace fail
            verification.
        compromised: when true, the device signs arbitrary claims (the
            attacker fully controls it).
        firmware_version: included in quotes so trusted-hardware
            vulnerabilities can target specific firmware versions.
    """

    device_id: str
    device_type: DeviceType = DeviceType.TPM
    manufacturer_secret: str = "trusted-manufacturer"
    compromised: bool = False
    firmware_version: str = "1.0"
    _secret: bytes = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if not self.device_id:
            raise AttestationError("device id must not be empty")
        self._secret = _derive_secret(self.device_id, self.manufacturer_secret)

    def sign(self, payload: str) -> str:
        """Produce the device's signature (HMAC) over ``payload``."""
        return hmac.new(self._secret, payload.encode(), hashlib.sha256).hexdigest()

    def signature_valid(self, payload: str, signature: str) -> bool:
        """Check a signature allegedly produced by this device."""
        return hmac.compare_digest(self.sign(payload), signature)

    def compromise(self) -> None:
        """Hand the device to the attacker (it will sign arbitrary claims)."""
        self.compromised = True

    def __str__(self) -> str:
        return f"{self.device_type.value}:{self.device_id}"
