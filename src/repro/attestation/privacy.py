"""Configuration privacy: commitments instead of cleartext configurations.

Remark 3's second concern: publishing every replica's configuration hands
attackers a target list when a new vulnerability drops.  The standard remedy
is to publish only a *hiding commitment* to the configuration; the diversity
analysis can still be run by a party that learns the openings (the
attestation service), or in aggregate.

The commitments here are hash-based (SHA-256 over configuration || blinding
factor): binding under collision resistance and hiding as long as the
blinding factor stays secret — sufficient fidelity for simulation purposes.
"""

from __future__ import annotations

import hashlib
import secrets
from dataclasses import dataclass
from typing import Dict, Iterable, Optional

from repro.core.configuration import ReplicaConfiguration
from repro.core.distribution import ConfigurationDistribution
from repro.core.exceptions import AttestationError


@dataclass(frozen=True)
class ConfigurationCommitment:
    """A hiding, binding commitment to one replica's configuration.

    Attributes:
        replica_id: whose configuration is committed.
        digest: the published commitment value.
    """

    replica_id: str
    digest: str


def _commitment_digest(configuration: ReplicaConfiguration, blinding: str) -> str:
    return hashlib.sha256(f"{configuration.identifier}|{blinding}".encode()).hexdigest()


def commit_configuration(
    replica_id: str,
    configuration: ReplicaConfiguration,
    *,
    blinding: Optional[str] = None,
) -> tuple:
    """Commit to ``configuration`` and return ``(commitment, blinding)``.

    The blinding factor must be kept secret by the replica (and shared only
    with the party allowed to learn the configuration, e.g. the attestation
    service computing the aggregate diversity statistics).
    """
    if not replica_id:
        raise AttestationError("replica id must not be empty")
    blinding = blinding if blinding is not None else secrets.token_hex(16)
    if not blinding:
        raise AttestationError("blinding factor must not be empty")
    commitment = ConfigurationCommitment(
        replica_id=replica_id,
        digest=_commitment_digest(configuration, blinding),
    )
    return commitment, blinding


def open_commitment(
    commitment: ConfigurationCommitment,
    configuration: ReplicaConfiguration,
    blinding: str,
) -> bool:
    """Check an opening of a commitment (true when it matches)."""
    return commitment.digest == _commitment_digest(configuration, blinding)


class PrivateCensusAggregator:
    """Computes the configuration census without publishing who runs what.

    Replicas submit commitments publicly and reveal the opening only to the
    aggregator; the aggregator publishes the *distribution* (which is all the
    entropy analysis needs) but never the per-replica assignment.
    """

    def __init__(self) -> None:
        self._commitments: Dict[str, ConfigurationCommitment] = {}
        self._openings: Dict[str, ReplicaConfiguration] = {}
        self._weights: Dict[str, float] = {}

    def submit_commitment(
        self, commitment: ConfigurationCommitment, *, weight: float = 1.0
    ) -> None:
        """Record a replica's public commitment and voting weight."""
        if weight < 0:
            raise AttestationError(f"weight must be non-negative, got {weight}")
        if commitment.replica_id in self._commitments:
            raise AttestationError(
                f"replica {commitment.replica_id!r} already submitted a commitment"
            )
        self._commitments[commitment.replica_id] = commitment
        self._weights[commitment.replica_id] = weight

    def reveal(
        self,
        replica_id: str,
        configuration: ReplicaConfiguration,
        blinding: str,
    ) -> None:
        """Privately open a commitment to the aggregator."""
        commitment = self._commitments.get(replica_id)
        if commitment is None:
            raise AttestationError(f"replica {replica_id!r} submitted no commitment")
        if not open_commitment(commitment, configuration, blinding):
            raise AttestationError(f"opening for replica {replica_id!r} does not verify")
        self._openings[replica_id] = configuration

    def revealed_fraction(self) -> float:
        """Fraction of committed replicas that have opened their commitment."""
        if not self._commitments:
            return 0.0
        return len(self._openings) / len(self._commitments)

    def census(self) -> ConfigurationDistribution:
        """The (weight-weighted) configuration distribution of opened replicas.

        Per-replica assignments stay inside the aggregator; only the aggregate
        distribution leaves it.
        """
        if not self._openings:
            raise AttestationError("no commitments have been opened yet")
        weights: Dict[ReplicaConfiguration, float] = {}
        for replica_id, configuration in self._openings.items():
            weight = self._weights.get(replica_id, 1.0)
            weights[configuration] = weights.get(configuration, 0.0) + weight
        return ConfigurationDistribution(weights)

    def __len__(self) -> int:
        return len(self._commitments)
