"""The attestation verification service.

Models a unified attestation service (the paper mentions Microsoft Azure
Attestation as an example): it issues nonces, knows which devices exist and
which manufacturer namespaces and firmware versions are trustworthy, and
verifies quotes.  Verification checks freshness (nonce), device registration
and revocation, firmware trust, signature validity and measurement
consistency with the claimed configuration.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Optional, Set

from repro.attestation.device import AttestationDevice
from repro.attestation.quote import AttestationQuote, measure_configuration
from repro.core.configuration import ReplicaConfiguration
from repro.core.exceptions import AttestationError


@dataclass(frozen=True)
class VerificationResult:
    """Outcome of verifying one quote.

    Attributes:
        valid: whether the quote passed every check.
        reason: human-readable failure reason (empty when valid).
        attested_configuration: the configuration the quote vouches for (only
            meaningful when valid).
    """

    valid: bool
    reason: str = ""
    attested_configuration: Optional[ReplicaConfiguration] = None


class AttestationVerifier:
    """Registers devices, issues nonces and verifies attestation quotes."""

    def __init__(self) -> None:
        self._devices: Dict[str, AttestationDevice] = {}
        self._revoked: Set[str] = set()
        self._untrusted_firmware: Set[str] = set()
        self._issued_nonces: Set[str] = set()
        self._consumed_nonces: Set[str] = set()
        self._nonce_counter = 0

    # -- device management ---------------------------------------------------------

    def register_device(self, device: AttestationDevice) -> None:
        """Register a device so its quotes can be verified."""
        if device.device_id in self._devices:
            raise AttestationError(f"device {device.device_id!r} already registered")
        self._devices[device.device_id] = device

    def revoke_device(self, device_id: str) -> None:
        """Revoke a device (e.g. after its compromise becomes known)."""
        if device_id not in self._devices:
            raise AttestationError(f"unknown device {device_id!r}")
        self._revoked.add(device_id)

    def distrust_firmware(self, firmware_version: str) -> None:
        """Mark a firmware version as untrusted (a disclosed TEE vulnerability)."""
        if not firmware_version:
            raise AttestationError("firmware version must not be empty")
        self._untrusted_firmware.add(firmware_version)

    def is_revoked(self, device_id: str) -> bool:
        return device_id in self._revoked

    # -- nonces -----------------------------------------------------------------------

    def issue_nonce(self) -> str:
        """Issue a fresh nonce for a challenge-response attestation."""
        self._nonce_counter += 1
        nonce = hashlib.sha256(f"nonce-{self._nonce_counter}".encode()).hexdigest()[:16]
        self._issued_nonces.add(nonce)
        return nonce

    # -- verification --------------------------------------------------------------------

    def verify(self, quote: AttestationQuote) -> VerificationResult:
        """Verify one quote against the registered devices and policies."""
        device = self._devices.get(quote.device_id)
        if device is None:
            return VerificationResult(False, f"unknown device {quote.device_id!r}")
        if quote.device_id in self._revoked:
            return VerificationResult(False, f"device {quote.device_id!r} is revoked")
        if quote.firmware_version in self._untrusted_firmware:
            return VerificationResult(
                False, f"firmware {quote.firmware_version!r} is no longer trusted"
            )
        if quote.nonce not in self._issued_nonces:
            return VerificationResult(False, "unknown nonce (possible replay)")
        if quote.nonce in self._consumed_nonces:
            return VerificationResult(False, "nonce already used (replay)")
        if not device.signature_valid(quote.body(), quote.signature):
            return VerificationResult(False, "signature does not verify")
        if quote.claimed_configuration is None:
            return VerificationResult(False, "quote carries no configuration claim")
        expected = measure_configuration(quote.claimed_configuration)
        if expected != quote.measurement:
            return VerificationResult(
                False, "measurement does not match the claimed configuration"
            )
        self._consumed_nonces.add(quote.nonce)
        return VerificationResult(True, attested_configuration=quote.claimed_configuration)

    # -- dunder ------------------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._devices)

    def __contains__(self, device_id: str) -> bool:
        return device_id in self._devices
