"""The configuration-discovery registry (Challenge 1 of the paper).

The registry is the end product of Section III-B: a continuously-updated view
of which configurations hold how much voting power, built from verified
attestation quotes.  It distinguishes *attested* power (backed by a verified
quote) from *declared* power (self-reported, untrusted), which is exactly the
two-class structure the paper's conclusion proposes, and it exposes the
census the entropy analysis consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.attestation.quote import AttestationQuote
from repro.attestation.verifier import AttestationVerifier
from repro.core.configuration import ReplicaConfiguration
from repro.core.distribution import ConfigurationDistribution
from repro.core.exceptions import AttestationError
from repro.core.population import Replica, ReplicaPopulation


@dataclass(frozen=True)
class RegistryEntry:
    """One replica's entry in the discovery registry."""

    replica_id: str
    configuration: ReplicaConfiguration
    power: float
    attested: bool


class AttestationRegistry:
    """Tracks attested and declared replica configurations with their power."""

    def __init__(self, verifier: Optional[AttestationVerifier] = None) -> None:
        # "is None" rather than "or": an empty verifier is falsy (it defines
        # __len__) but is still the verifier the caller wants to share.
        self._verifier = verifier if verifier is not None else AttestationVerifier()
        self._entries: Dict[str, RegistryEntry] = {}

    @property
    def verifier(self) -> AttestationVerifier:
        return self._verifier

    # -- registration -----------------------------------------------------------------

    def register_attested(self, quote: AttestationQuote, *, power: float = 1.0) -> RegistryEntry:
        """Verify ``quote`` and record the replica as attested.

        Raises :class:`AttestationError` when the quote does not verify.
        """
        if power < 0:
            raise AttestationError(f"power must be non-negative, got {power}")
        result = self._verifier.verify(quote)
        if not result.valid:
            raise AttestationError(f"attestation failed: {result.reason}")
        assert result.attested_configuration is not None
        entry = RegistryEntry(
            replica_id=quote.replica_id,
            configuration=result.attested_configuration,
            power=power,
            attested=True,
        )
        self._entries[quote.replica_id] = entry
        return entry

    def register_declared(
        self,
        replica_id: str,
        configuration: ReplicaConfiguration,
        *,
        power: float = 1.0,
    ) -> RegistryEntry:
        """Record a self-declared (unattested) configuration."""
        if not replica_id:
            raise AttestationError("replica id must not be empty")
        if power < 0:
            raise AttestationError(f"power must be non-negative, got {power}")
        entry = RegistryEntry(
            replica_id=replica_id,
            configuration=configuration,
            power=power,
            attested=False,
        )
        self._entries[replica_id] = entry
        return entry

    def remove(self, replica_id: str) -> None:
        """Drop a replica from the registry (it left the system)."""
        if replica_id not in self._entries:
            raise AttestationError(f"unknown replica {replica_id!r}")
        del self._entries[replica_id]

    # -- queries --------------------------------------------------------------------------

    def entry(self, replica_id: str) -> RegistryEntry:
        try:
            return self._entries[replica_id]
        except KeyError:
            raise AttestationError(f"unknown replica {replica_id!r}") from None

    def entries(self) -> Tuple[RegistryEntry, ...]:
        return tuple(self._entries.values())

    def attested_power(self) -> float:
        """Total power backed by verified attestations."""
        return sum(entry.power for entry in self._entries.values() if entry.attested)

    def declared_power(self) -> float:
        """Total power that is only self-declared."""
        return sum(entry.power for entry in self._entries.values() if not entry.attested)

    def attested_fraction(self) -> float:
        """Fraction of total registered power that is attested."""
        total = self.attested_power() + self.declared_power()
        if total <= 0:
            return 0.0
        return self.attested_power() / total

    def census(
        self,
        *,
        attested_only: bool = False,
        attested_weight: float = 1.0,
        declared_weight: float = 1.0,
    ) -> ConfigurationDistribution:
        """The configuration distribution implied by the registry.

        Args:
            attested_only: ignore self-declared entries entirely.
            attested_weight: voting-weight multiplier for attested power.
            declared_weight: voting-weight multiplier for declared power;
                setting this below ``attested_weight`` implements the paper's
                concluding proposal of giving attested replicas more weight.
        """
        if attested_weight < 0 or declared_weight < 0:
            raise AttestationError("weights must be non-negative")
        weights: Dict[ReplicaConfiguration, float] = {}
        for entry in self._entries.values():
            if attested_only and not entry.attested:
                continue
            factor = attested_weight if entry.attested else declared_weight
            if entry.power * factor <= 0:
                continue
            weights[entry.configuration] = (
                weights.get(entry.configuration, 0.0) + entry.power * factor
            )
        if not weights:
            raise AttestationError("the registry census is empty")
        return ConfigurationDistribution(weights)

    def to_population(self) -> ReplicaPopulation:
        """The registry contents as a :class:`ReplicaPopulation`."""
        if not self._entries:
            raise AttestationError("the registry is empty")
        return ReplicaPopulation(
            Replica(
                replica_id=entry.replica_id,
                configuration=entry.configuration,
                power=entry.power,
                attested=entry.attested,
            )
            for entry in self._entries.values()
        )

    # -- dunder -------------------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, replica_id: str) -> bool:
        return replica_id in self._entries
