"""Stake accounts and delegation (the exchange-custody oligopoly).

Section III-A observes that end users often hold their keys at exchanges and
delegate validation, so a handful of custodians end up wielding a large share
of the stake — reducing diversity exactly like mining pools do for hash power.
The :class:`StakeRegistry` models accounts, delegation and the resulting
*effective* voting-power distribution over validators.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.core.distribution import ConfigurationDistribution
from repro.core.exceptions import MembershipError
from repro.core.power import PowerLedger, PowerRegime


@dataclass(frozen=True)
class StakeAccount:
    """One stake-holding account.

    Attributes:
        account_id: unique account identifier.
        stake: the account's own stake.
        delegate_id: validator/custodian the stake is delegated to (``None``
            when the account validates for itself).
    """

    account_id: str
    stake: float
    delegate_id: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.account_id:
            raise MembershipError("account id must not be empty")
        if self.stake < 0:
            raise MembershipError(f"stake must be non-negative, got {self.stake}")


class StakeRegistry:
    """Tracks accounts, delegation and effective validator power."""

    def __init__(self) -> None:
        self._accounts: Dict[str, StakeAccount] = {}

    # -- mutation --------------------------------------------------------------------

    def open_account(self, account_id: str, stake: float) -> None:
        """Create an account holding ``stake`` (initially self-validating)."""
        if account_id in self._accounts:
            raise MembershipError(f"account {account_id!r} already exists")
        self._accounts[account_id] = StakeAccount(account_id=account_id, stake=stake)

    def set_stake(self, account_id: str, stake: float) -> None:
        """Update an account's stake."""
        account = self._get(account_id)
        self._accounts[account_id] = StakeAccount(
            account_id=account_id, stake=stake, delegate_id=account.delegate_id
        )

    def delegate(self, account_id: str, delegate_id: Optional[str]) -> None:
        """Delegate an account's stake to ``delegate_id`` (``None`` undelegates).

        Delegating to an account that itself delegates is allowed; effective
        power resolution follows the chain (with cycle detection).
        """
        account = self._get(account_id)
        if delegate_id == account_id:
            raise MembershipError("an account cannot delegate to itself")
        if delegate_id is not None and delegate_id not in self._accounts:
            raise MembershipError(f"unknown delegate {delegate_id!r}")
        self._accounts[account_id] = StakeAccount(
            account_id=account_id, stake=account.stake, delegate_id=delegate_id
        )

    # -- queries -----------------------------------------------------------------------

    def _get(self, account_id: str) -> StakeAccount:
        try:
            return self._accounts[account_id]
        except KeyError:
            raise MembershipError(f"unknown account {account_id!r}") from None

    def account(self, account_id: str) -> StakeAccount:
        """The account record for ``account_id``."""
        return self._get(account_id)

    def total_stake(self) -> float:
        """Total stake across all accounts."""
        return sum(account.stake for account in self._accounts.values())

    def _resolve_validator(self, account_id: str) -> str:
        """Follow the delegation chain to the account that actually validates."""
        current = account_id
        visited = set()
        while True:
            if current in visited:
                raise MembershipError(
                    f"delegation cycle detected starting from {account_id!r}"
                )
            visited.add(current)
            delegate = self._accounts[current].delegate_id
            if delegate is None:
                return current
            current = delegate

    def effective_power(self) -> Dict[str, float]:
        """Effective validating power per validator (delegations resolved)."""
        power: Dict[str, float] = {}
        for account in self._accounts.values():
            if account.stake <= 0:
                continue
            validator = self._resolve_validator(account.account_id)
            power[validator] = power.get(validator, 0.0) + account.stake
        return power

    def power_ledger(self) -> PowerLedger:
        """Effective validator power as a :class:`PowerLedger`."""
        power = self.effective_power()
        if not power:
            raise MembershipError("no account holds positive stake")
        return PowerLedger.from_mapping(power, regime=PowerRegime.COMMITTEE_STAKE)

    def validator_distribution(self) -> ConfigurationDistribution:
        """Effective power as a distribution (one "configuration" per validator).

        This is the best-case diversity view, exactly parallel to treating
        each mining pool as a unique configuration in Example 1.
        """
        power = self.effective_power()
        if not power:
            raise MembershipError("no account holds positive stake")
        return ConfigurationDistribution(power)

    def custodian_concentration(self, count: int) -> float:
        """Fraction of stake validated by the ``count`` largest validators."""
        if count < 0:
            raise MembershipError(f"count must be non-negative, got {count}")
        power = sorted(self.effective_power().values(), reverse=True)
        total = sum(power)
        if total <= 0:
            return 0.0
        return sum(power[:count]) / total

    def delegation_fraction(self) -> float:
        """Fraction of total stake that is delegated away from its owner."""
        total = self.total_stake()
        if total <= 0:
            return 0.0
        delegated = sum(
            account.stake
            for account in self._accounts.values()
            if account.delegate_id is not None
        )
        return delegated / total

    # -- dunder ----------------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._accounts)

    def __contains__(self, account_id: str) -> bool:
        return account_id in self._accounts
