"""Permissionless membership: open join/leave, stake delegation and committees.

The paper's system model (Section II-A) is a permissionless environment where
anyone can join or leave at any time and where voting power may be a committee
abstraction rather than raw replica counts.  This subpackage provides that
substrate:

- :mod:`repro.permissionless.churn` -- a reproducible join/leave process over
  a :class:`~repro.core.population.ReplicaPopulation`.
- :mod:`repro.permissionless.stake` -- stake accounts with delegation, used to
  model the exchange-custody oligopoly the paper warns about.
- :mod:`repro.permissionless.committee` -- power-weighted committee selection
  (the "membership selection" protocols of reference [15]).
"""

from repro.permissionless.churn import ChurnModel, ChurnTrace
from repro.permissionless.committee import Committee, select_committee
from repro.permissionless.stake import StakeRegistry

__all__ = [
    "ChurnModel",
    "ChurnTrace",
    "Committee",
    "StakeRegistry",
    "select_committee",
]
