"""Power-weighted committee selection.

Many permissionless protocols (the "membership selection" family the paper's
reference [15] surveys) do not run consensus over the whole population; they
sample a committee whose members' voting power is what ``n_t`` refers to.
Committee selection interacts with fault independence in two ways the
experiments exercise:

- the committee census inherits (a sampled version of) the population's
  configuration distribution, so low population diversity means low committee
  diversity;
- a shared vulnerability can compromise a super-threshold fraction *of the
  committee* even when its share of the whole population is below threshold,
  because sampling concentrates power.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import FrozenSet, Optional, Sequence, Tuple

from repro.core.distribution import ConfigurationDistribution
from repro.core.exceptions import MembershipError
from repro.core.population import Replica, ReplicaPopulation
from repro.core.power import PowerRegime


@dataclass(frozen=True)
class Committee:
    """A selected consensus committee.

    Attributes:
        members: ids of the selected replicas.
        seats_by_member: number of seats each member won (power-weighted
            sampling with replacement can give a participant several seats).
        total_seats: committee size in seats.
    """

    members: FrozenSet[str]
    seats_by_member: Tuple[Tuple[str, int], ...]
    total_seats: int

    def seats_of(self, replica_id: str) -> int:
        """Seats held by ``replica_id`` (0 when not selected)."""
        for member, seats in self.seats_by_member:
            if member == replica_id:
                return seats
        return 0

    def voting_fraction(self, replica_ids: Sequence[str]) -> float:
        """Fraction of committee seats held by the given replicas."""
        wanted = set(replica_ids)
        held = sum(seats for member, seats in self.seats_by_member if member in wanted)
        if self.total_seats <= 0:
            return 0.0
        return held / self.total_seats

    def __len__(self) -> int:
        return len(self.members)


def select_committee(
    population: ReplicaPopulation,
    seats: int,
    *,
    seed: int = 0,
) -> Committee:
    """Sample a committee of ``seats`` seats, power-weighted with replacement.

    Sampling with replacement models lottery-style selection (PoS slot
    leaders, PoET-like elections): each seat goes to a replica with
    probability proportional to its voting power.
    """
    if seats <= 0:
        raise MembershipError(f"committee seats must be positive, got {seats}")
    replicas = population.replicas()
    if not replicas:
        raise MembershipError("cannot select a committee from an empty population")
    weights = [replica.power for replica in replicas]
    if sum(weights) <= 0:
        raise MembershipError("total voting power must be positive")
    rng = random.Random(seed)
    winners = rng.choices(replicas, weights=weights, k=seats)
    seat_counts: dict = {}
    for winner in winners:
        seat_counts[winner.replica_id] = seat_counts.get(winner.replica_id, 0) + 1
    return Committee(
        members=frozenset(seat_counts),
        seats_by_member=tuple(sorted(seat_counts.items())),
        total_seats=seats,
    )


def committee_population(
    population: ReplicaPopulation, committee: Committee
) -> ReplicaPopulation:
    """The committee as a population (power = seats held).

    The committee population is what the Section II-C condition applies to in
    committee-based protocols: ``n_t`` is the total seats, and compromising a
    member compromises its seats.
    """
    members = []
    for replica_id, seats in committee.seats_by_member:
        original = population.get(replica_id)
        members.append(
            Replica(
                replica_id=replica_id,
                configuration=original.configuration,
                power=float(seats),
                attested=original.attested,
            )
        )
    if not members:
        raise MembershipError("the committee is empty")
    return ReplicaPopulation(members, regime=PowerRegime.COMMITTEE_STAKE)


def committee_census(
    population: ReplicaPopulation, committee: Committee
) -> ConfigurationDistribution:
    """Configuration distribution of the committee, weighted by seats."""
    return committee_population(population, committee).configuration_census()


def compromised_seat_fraction(
    committee: Committee, compromised_ids: Sequence[str]
) -> float:
    """Fraction of committee seats controlled through compromised replicas."""
    return committee.voting_fraction(compromised_ids)
