"""Join/leave churn over a replica population.

Permissionless systems have no admission control: the configuration census —
and therefore the diversity entropy — drifts as participants come and go.
The :class:`ChurnModel` applies a reproducible stochastic churn process to a
population and records the entropy trajectory, which is how the experiments
show that diversity in a permissionless system is a moving target no central
manager controls (Challenge 1).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.core.configuration import ReplicaConfiguration
from repro.core.exceptions import MembershipError
from repro.core.population import Replica, ReplicaPopulation
from repro.datasets.software_ecosystem import SyntheticEcosystem


@dataclass(frozen=True)
class ChurnTrace:
    """The observable history of a churn run.

    Attributes:
        steps: number of churn steps applied.
        joined: replicas that joined over the run.
        left: replicas that left over the run.
        entropy_series: configuration entropy after every step.
        population_sizes: population size after every step.
    """

    steps: int
    joined: int
    left: int
    entropy_series: Tuple[float, ...]
    population_sizes: Tuple[int, ...]

    @property
    def final_entropy(self) -> float:
        if not self.entropy_series:
            raise MembershipError("the churn trace is empty")
        return self.entropy_series[-1]

    @property
    def entropy_drift(self) -> float:
        """Entropy change from the first to the last step."""
        if not self.entropy_series:
            raise MembershipError("the churn trace is empty")
        return self.entropy_series[-1] - self.entropy_series[0]


class ChurnModel:
    """Applies stochastic join/leave events to a population.

    Args:
        ecosystem: where newly joining replicas draw their configuration from
            (new joiners follow the ecosystem's market shares — the mechanism
            by which monocultures self-reinforce).
        join_rate: probability that a step adds a replica.
        leave_rate: probability that a step removes a replica.
        power_sampler: optional callable returning the power of a new replica
            (defaults to 1.0 each).
        seed: RNG seed.
    """

    def __init__(
        self,
        ecosystem: SyntheticEcosystem,
        *,
        join_rate: float = 0.5,
        leave_rate: float = 0.3,
        power_sampler: Optional[Callable[[random.Random], float]] = None,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= join_rate <= 1.0 or not 0.0 <= leave_rate <= 1.0:
            raise MembershipError("join and leave rates must be in [0, 1]")
        self._ecosystem = ecosystem
        self._join_rate = join_rate
        self._leave_rate = leave_rate
        self._power_sampler = power_sampler or (lambda rng: 1.0)
        self._rng = random.Random(seed)
        self._join_counter = 0

    def run(
        self,
        population: ReplicaPopulation,
        steps: int,
        *,
        min_population: int = 4,
    ) -> ChurnTrace:
        """Apply ``steps`` churn steps to ``population`` (mutated in place)."""
        if steps <= 0:
            raise MembershipError(f"steps must be positive, got {steps}")
        if min_population < 1:
            raise MembershipError(f"min population must be positive, got {min_population}")
        joined = 0
        left = 0
        entropy_series: List[float] = []
        sizes: List[int] = []
        for _ in range(steps):
            if self._rng.random() < self._join_rate:
                self._join_one(population)
                joined += 1
            if len(population) > min_population and self._rng.random() < self._leave_rate:
                self._leave_one(population)
                left += 1
            entropy_series.append(population.entropy())
            sizes.append(len(population))
        return ChurnTrace(
            steps=steps,
            joined=joined,
            left=left,
            entropy_series=tuple(entropy_series),
            population_sizes=tuple(sizes),
        )

    # -- internals -----------------------------------------------------------------

    def _join_one(self, population: ReplicaPopulation) -> None:
        self._join_counter += 1
        configuration: ReplicaConfiguration = self._ecosystem.sample_configuration(self._rng)
        replica = Replica(
            replica_id=f"churn-joiner-{self._join_counter}",
            configuration=configuration,
            power=self._power_sampler(self._rng),
        )
        population.join(replica)

    def _leave_one(self, population: ReplicaPopulation) -> None:
        ids: Sequence[str] = population.replica_ids()
        victim = self._rng.choice(list(ids))
        population.leave(victim)
