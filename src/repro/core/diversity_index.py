"""Ecology-style diversity indices complementing Shannon entropy.

Section IV-B borrows the *abundance* vocabulary from ecology; this module
provides the corresponding classical diversity indices so the entropy results
of Figure 1 can be cross-checked against measures with different sensitivity
to rare versus dominant configurations:

- Simpson / Gini-Simpson / inverse Simpson indices (dominance-sensitive);
- Berger-Parker dominance (the single largest share);
- Hill numbers of any order ``q`` (the "effective number of configurations");
- Pielou evenness (normalized Shannon entropy);
- the Herfindahl-Hirschman Index (HHI) familiar from market-concentration
  analysis of mining-pool oligopolies.
"""

from __future__ import annotations

import math
from typing import Iterable

from repro.core.entropy import (
    _as_validated_probabilities,
    normalized_entropy,
    shannon_entropy,
)
from repro.core.exceptions import DistributionError


def simpson_index(probabilities: Iterable[float], *, normalize: bool = False) -> float:
    """Simpson's index ``sum_i p_i^2``.

    The probability that two voting-power units drawn at random belong to the
    same configuration — i.e. the probability that a random pair shares every
    fault domain.  Lower is more diverse.
    """
    values = _as_validated_probabilities(probabilities, normalize=normalize)
    return sum(p * p for p in values)


def gini_simpson_index(probabilities: Iterable[float], *, normalize: bool = False) -> float:
    """Gini-Simpson index ``1 - sum_i p_i^2`` (higher is more diverse)."""
    return 1.0 - simpson_index(probabilities, normalize=normalize)


def inverse_simpson_index(probabilities: Iterable[float], *, normalize: bool = False) -> float:
    """Inverse Simpson index ``1 / sum_i p_i^2`` (Hill number of order 2)."""
    index = simpson_index(probabilities, normalize=normalize)
    if index <= 0:
        raise DistributionError("Simpson index is zero; distribution has no mass")
    return 1.0 / index


def berger_parker_dominance(probabilities: Iterable[float], *, normalize: bool = False) -> float:
    """Berger-Parker dominance: the largest configuration share ``max_i p_i``.

    This is exactly the voting power an attacker obtains by exploiting a
    vulnerability that is unique to the most popular configuration.
    """
    values = _as_validated_probabilities(probabilities, normalize=normalize)
    return max(values)


def herfindahl_hirschman_index(
    probabilities: Iterable[float], *, normalize: bool = False
) -> float:
    """Herfindahl-Hirschman Index on the 0-10000 scale used by regulators.

    Values above 2500 conventionally indicate a highly concentrated market;
    the Example 1 Bitcoin pool snapshot scores well above 1500 ("moderately
    concentrated"), making the oligopoly argument quantitative.
    """
    values = _as_validated_probabilities(probabilities, normalize=normalize)
    return sum((100.0 * p) ** 2 for p in values)


def hill_number(
    probabilities: Iterable[float],
    order: float,
    *,
    normalize: bool = False,
) -> float:
    """Hill number (effective number of configurations) of order ``q``.

    - ``q = 0``: configuration richness (number of non-zero shares);
    - ``q = 1``: ``exp`` of Shannon entropy (in nats);
    - ``q = 2``: inverse Simpson index;
    - ``q = inf``: ``1 / max_i p_i`` (inverse Berger-Parker dominance).
    """
    if order < 0:
        raise DistributionError(f"Hill order must be non-negative, got {order}")
    values = _as_validated_probabilities(probabilities, normalize=normalize)
    positive = [p for p in values if p > 0]
    if math.isclose(order, 1.0):
        return math.exp(shannon_entropy(positive, base=math.e))
    if math.isinf(order):
        return 1.0 / max(positive)
    if order == 0:
        return float(len(positive))
    power_sum = sum(p**order for p in positive)
    return power_sum ** (1.0 / (1.0 - order))


def pielou_evenness(probabilities: Iterable[float], *, normalize: bool = False) -> float:
    """Pielou's evenness ``J = H / H_max`` (alias of normalized entropy)."""
    return normalized_entropy(probabilities, normalize=normalize)


def richness(probabilities: Iterable[float], *, normalize: bool = False) -> int:
    """Configuration richness: the number of configurations with non-zero share.

    This is the κ of Definition 1 when the non-zero shares are also equal.
    """
    values = _as_validated_probabilities(probabilities, normalize=normalize)
    return sum(1 for p in values if p > 0)


def diversity_profile(
    probabilities: Iterable[float],
    *,
    normalize: bool = False,
    base: float = 2.0,
) -> dict:
    """A bundle of all indices for reporting.

    Returns a plain dictionary so experiment drivers can print or serialize it
    without pulling in any serialization dependency.
    """
    values = _as_validated_probabilities(probabilities, normalize=normalize)
    return {
        "shannon_entropy": shannon_entropy(values, base=base),
        "normalized_entropy": normalized_entropy(values),
        "simpson": simpson_index(values),
        "gini_simpson": gini_simpson_index(values),
        "inverse_simpson": inverse_simpson_index(values),
        "berger_parker": berger_parker_dominance(values),
        "hhi": herfindahl_hirschman_index(values),
        "richness": richness(values),
        "hill_1": hill_number(values, 1.0),
        "hill_2": hill_number(values, 2.0),
    }
