"""Replica configurations and the configuration space ``D``.

Section III-A of the paper decomposes a replica into three main components:
*trusted hardware*, *system software* (the operating system) and *application
software* — the latter containing at least the consensus module and the
key/account-management module (wallet), and in practice also the cryptographic
library the paper's adversary model calls out explicitly in Section II-B.

A :class:`ReplicaConfiguration` is an immutable bag of
:class:`SoftwareComponent` values indexed by :class:`ComponentKind`; two
replicas share a fault domain for a component kind exactly when they run the
same component (same kind, name and version).  A :class:`ConfigurationSpace`
describes which components are available per kind and can enumerate the full
space ``D = {d1, ..., dk}`` used in Section IV-A.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from enum import Enum, unique
from typing import Dict, Iterable, Iterator, Mapping, Optional, Sequence, Tuple

from repro.core.exceptions import ConfigurationError


@unique
class ComponentKind(str, Enum):
    """The component slots of a replica considered by the paper.

    The first three are the paper's "three main components"; the remaining
    kinds refine application software into the modules Section III-A singles
    out (consensus client, wallet / key management, cryptographic library) and
    an optional external database for COTS diversity (Section III-A cites
    databases as classic COTS components).
    """

    TRUSTED_HARDWARE = "trusted_hardware"
    OPERATING_SYSTEM = "operating_system"
    CONSENSUS_CLIENT = "consensus_client"
    WALLET = "wallet"
    CRYPTO_LIBRARY = "crypto_library"
    DATABASE = "database"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


#: The component kinds every well-formed configuration must provide.
REQUIRED_KINDS: Tuple[ComponentKind, ...] = (
    ComponentKind.OPERATING_SYSTEM,
    ComponentKind.CONSENSUS_CLIENT,
)


@dataclass(frozen=True, order=True)
class SoftwareComponent:
    """One concrete component in a replica's stack.

    Despite the name this also models trusted *hardware* components (e.g.
    ``SoftwareComponent(ComponentKind.TRUSTED_HARDWARE, "intel-sgx", "2.17")``)
    because from the fault-independence point of view the only thing that
    matters is the shared fault domain identified by (kind, name, version).
    """

    kind: ComponentKind
    name: str
    version: str = "1.0"

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("component name must not be empty")
        if not self.version:
            raise ConfigurationError("component version must not be empty")

    @property
    def identifier(self) -> str:
        """Stable string identifier, e.g. ``operating_system:linux:6.1``."""
        return f"{self.kind.value}:{self.name}:{self.version}"

    def with_version(self, version: str) -> "SoftwareComponent":
        """Return a copy of this component at a different version.

        Patching a vulnerable component is modeled as replacing it with the
        same component at a new version, which moves the replica into a new
        fault domain for that kind.
        """
        return SoftwareComponent(self.kind, self.name, version)

    def __str__(self) -> str:
        return self.identifier


class ReplicaConfiguration:
    """An immutable replica configuration ``d_i`` (one element of ``D``).

    The configuration is a mapping from :class:`ComponentKind` to a single
    :class:`SoftwareComponent` of that kind.  Configurations are hashable and
    compare by value, so they can be used directly as census keys.
    """

    __slots__ = ("_components", "_key")

    def __init__(self, components: Iterable[SoftwareComponent]) -> None:
        mapping: Dict[ComponentKind, SoftwareComponent] = {}
        for component in components:
            if not isinstance(component, SoftwareComponent):
                raise ConfigurationError(
                    f"expected SoftwareComponent, got {type(component).__name__}"
                )
            if component.kind in mapping:
                raise ConfigurationError(
                    f"duplicate component kind {component.kind.value!r} in configuration"
                )
            mapping[component.kind] = component
        if not mapping:
            raise ConfigurationError("a configuration needs at least one component")
        object.__setattr__(self, "_components", dict(sorted(mapping.items())))
        object.__setattr__(
            self,
            "_key",
            tuple(component.identifier for component in self._components.values()),
        )

    # -- construction helpers -------------------------------------------------

    @classmethod
    def from_names(
        cls,
        *,
        operating_system: str,
        consensus_client: str,
        trusted_hardware: Optional[str] = None,
        wallet: Optional[str] = None,
        crypto_library: Optional[str] = None,
        database: Optional[str] = None,
        version: str = "1.0",
    ) -> "ReplicaConfiguration":
        """Build a configuration from plain component names.

        Every provided name becomes a component at the given ``version``.
        This is the convenient constructor used throughout the examples.
        """
        spec = {
            ComponentKind.OPERATING_SYSTEM: operating_system,
            ComponentKind.CONSENSUS_CLIENT: consensus_client,
            ComponentKind.TRUSTED_HARDWARE: trusted_hardware,
            ComponentKind.WALLET: wallet,
            ComponentKind.CRYPTO_LIBRARY: crypto_library,
            ComponentKind.DATABASE: database,
        }
        components = [
            SoftwareComponent(kind, name, version)
            for kind, name in spec.items()
            if name is not None
        ]
        return cls(components)

    @classmethod
    def labeled(cls, label: str) -> "ReplicaConfiguration":
        """Build an opaque configuration identified only by ``label``.

        Figure 1 treats each Bitcoin mining pool as "a unique configuration"
        without saying what the components are; labeled configurations model
        exactly that level of abstraction.
        """
        return cls(
            [
                SoftwareComponent(ComponentKind.OPERATING_SYSTEM, f"os-{label}"),
                SoftwareComponent(ComponentKind.CONSENSUS_CLIENT, f"client-{label}"),
            ]
        )

    # -- accessors -------------------------------------------------------------

    def component(self, kind: ComponentKind) -> Optional[SoftwareComponent]:
        """Return the component of ``kind`` or ``None`` when absent."""
        return self._components.get(kind)

    def components(self) -> Tuple[SoftwareComponent, ...]:
        """All components, ordered by kind."""
        return tuple(self._components.values())

    def kinds(self) -> Tuple[ComponentKind, ...]:
        """The component kinds present in this configuration."""
        return tuple(self._components.keys())

    @property
    def identifier(self) -> str:
        """Stable, human-readable identity string for the whole configuration."""
        return "|".join(self._key)

    def has_component(self, component: SoftwareComponent) -> bool:
        """True when this configuration includes exactly ``component``."""
        return self._components.get(component.kind) == component

    def uses_any(self, components: Iterable[SoftwareComponent]) -> bool:
        """True when this configuration includes any of ``components``.

        This is the primitive used by exploit campaigns: a vulnerability in a
        component compromises every replica whose configuration uses it.
        """
        return any(self.has_component(component) for component in components)

    def shared_components(self, other: "ReplicaConfiguration") -> Tuple[SoftwareComponent, ...]:
        """Components shared (exact kind+name+version match) with ``other``."""
        return tuple(
            component
            for component in self._components.values()
            if other.has_component(component)
        )

    def difference_count(self, other: "ReplicaConfiguration") -> int:
        """Number of component kinds at which the two configurations differ.

        Kinds present in one configuration and absent in the other count as
        differences.
        """
        kinds = set(self._components) | set(other._components)
        return sum(
            1
            for kind in kinds
            if self._components.get(kind) != other._components.get(kind)
        )

    def replace(self, component: SoftwareComponent) -> "ReplicaConfiguration":
        """Return a new configuration with ``component`` substituted in."""
        updated = dict(self._components)
        updated[component.kind] = component
        return ReplicaConfiguration(updated.values())

    def without(self, kind: ComponentKind) -> "ReplicaConfiguration":
        """Return a new configuration with the ``kind`` slot removed."""
        if kind not in self._components:
            raise ConfigurationError(f"configuration has no component of kind {kind.value!r}")
        remaining = [c for k, c in self._components.items() if k != kind]
        return ReplicaConfiguration(remaining)

    # -- dunder ----------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ReplicaConfiguration):
            return NotImplemented
        return self._key == other._key

    def __hash__(self) -> int:
        return hash(self._key)

    def __lt__(self, other: "ReplicaConfiguration") -> bool:
        if not isinstance(other, ReplicaConfiguration):
            return NotImplemented
        return self._key < other._key

    def __repr__(self) -> str:
        return f"ReplicaConfiguration({self.identifier!r})"

    def __iter__(self) -> Iterator[SoftwareComponent]:
        return iter(self._components.values())

    def __len__(self) -> int:
        return len(self._components)


class ConfigurationSpace:
    """The space ``D`` of configurations that can be remotely attested.

    A space is described by the set of available components for each kind.
    The full space is the cross product of the per-kind choices (optionally
    including "no component" for kinds marked optional), which matches the
    paper's observation that diversity grows with the number of alternative
    COTS components per slot.
    """

    def __init__(
        self,
        choices: Mapping[ComponentKind, Sequence[SoftwareComponent]],
        *,
        optional_kinds: Iterable[ComponentKind] = (),
    ) -> None:
        if not choices:
            raise ConfigurationError("configuration space needs at least one component kind")
        self._choices: Dict[ComponentKind, Tuple[SoftwareComponent, ...]] = {}
        for kind, components in choices.items():
            components = tuple(components)
            if not components:
                raise ConfigurationError(
                    f"component kind {kind.value!r} has no available components"
                )
            for component in components:
                if component.kind is not kind:
                    raise ConfigurationError(
                        f"component {component.identifier!r} listed under kind {kind.value!r}"
                    )
            if len(set(components)) != len(components):
                raise ConfigurationError(
                    f"duplicate components offered for kind {kind.value!r}"
                )
            self._choices[kind] = components
        self._optional = frozenset(optional_kinds)
        unknown_optional = self._optional - set(self._choices)
        if unknown_optional:
            names = ", ".join(sorted(kind.value for kind in unknown_optional))
            raise ConfigurationError(f"optional kinds not present in space: {names}")

    @classmethod
    def from_catalog(
        cls,
        catalog: Mapping[ComponentKind, Sequence[str]],
        *,
        optional_kinds: Iterable[ComponentKind] = (),
        version: str = "1.0",
    ) -> "ConfigurationSpace":
        """Build a space from a mapping of kind -> component names."""
        choices = {
            kind: [SoftwareComponent(kind, name, version) for name in names]
            for kind, names in catalog.items()
        }
        return cls(choices, optional_kinds=optional_kinds)

    @property
    def kinds(self) -> Tuple[ComponentKind, ...]:
        return tuple(self._choices.keys())

    def choices_for(self, kind: ComponentKind) -> Tuple[SoftwareComponent, ...]:
        """Available components for ``kind``."""
        if kind not in self._choices:
            raise ConfigurationError(f"kind {kind.value!r} is not part of this space")
        return self._choices[kind]

    def size(self) -> int:
        """Number of distinct configurations in the space (``k`` in the paper)."""
        total = 1
        for kind, components in self._choices.items():
            options = len(components) + (1 if kind in self._optional else 0)
            total *= options
        return total

    def enumerate(self) -> Iterator[ReplicaConfiguration]:
        """Yield every configuration in the space in a deterministic order."""
        per_kind: list[Tuple[Optional[SoftwareComponent], ...]] = []
        for kind, components in self._choices.items():
            options: Tuple[Optional[SoftwareComponent], ...] = tuple(components)
            if kind in self._optional:
                options = options + (None,)
            per_kind.append(options)
        for combination in itertools.product(*per_kind):
            present = [component for component in combination if component is not None]
            if present:
                yield ReplicaConfiguration(present)

    def contains(self, configuration: ReplicaConfiguration) -> bool:
        """True when every component of ``configuration`` is offered by this space."""
        for kind in self._choices:
            component = configuration.component(kind)
            if component is None:
                if kind not in self._optional:
                    return False
            elif component not in self._choices[kind]:
                return False
        # Configurations must not use kinds unknown to the space.
        return all(kind in self._choices for kind in configuration.kinds())

    def __contains__(self, configuration: ReplicaConfiguration) -> bool:
        return self.contains(configuration)

    def __len__(self) -> int:
        return self.size()

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{kind.value}={len(components)}" for kind, components in self._choices.items()
        )
        return f"ConfigurationSpace({parts}, size={self.size()})"


def default_configuration_space() -> ConfigurationSpace:
    """A realistic small configuration space used by examples and tests.

    Mirrors the component families the paper discusses: a handful of operating
    systems, consensus clients, wallets, crypto libraries and trusted-hardware
    platforms (TPM / SGX / TrustZone / AMD PSP, per Section III-B).
    """
    catalog = {
        ComponentKind.OPERATING_SYSTEM: ["linux", "freebsd", "openbsd", "windows-server"],
        ComponentKind.CONSENSUS_CLIENT: ["client-alpha", "client-beta", "client-gamma"],
        ComponentKind.WALLET: ["builtin-wallet", "hardware-wallet", "mobile-wallet"],
        ComponentKind.CRYPTO_LIBRARY: ["openssl", "libsodium", "boringssl"],
        ComponentKind.TRUSTED_HARDWARE: ["tpm-2.0", "intel-sgx", "arm-trustzone", "amd-psp"],
    }
    return ConfigurationSpace.from_catalog(
        catalog,
        optional_kinds=[ComponentKind.TRUSTED_HARDWARE, ComponentKind.WALLET],
    )
