"""Probability distributions over the configuration space (Section IV-A).

A :class:`ConfigurationDistribution` maps each configuration ``d_i`` to the
fraction ``p_i`` of voting power (or of replicas) running it.  It is the
object whose Shannon entropy the paper uses to quantify replica diversity,
and it is produced either directly (Figure 1 builds it from the mining-pool
hash-power snapshot) or as the census of a
:class:`~repro.core.population.ReplicaPopulation`.

Keys may be :class:`~repro.core.configuration.ReplicaConfiguration` objects or
opaque labels (strings); the entropy mathematics only needs the shares.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, Iterable, Iterator, Mapping, Optional, Sequence, Tuple

from repro.core import entropy as entropy_module
from repro.core.diversity_index import diversity_profile
from repro.core.exceptions import DistributionError

ConfigKey = Hashable


class ConfigurationDistribution:
    """An immutable probability distribution ``p`` over configurations.

    The constructor accepts raw non-negative weights (absolute voting power,
    replica counts, hash-power percentages, ...) and normalizes them, so
    callers never need to pre-normalize.  Zero-weight configurations are kept
    in the support description but excluded from κ (the count of *non-zero*
    shares, per Definition 1).

    The instance is frozen after ``__init__`` (no mutating API), so derived
    quantities — the probability vector, its descending sort, per-backend
    array views, entropies and the full ranking — are computed once and
    memoized in ``_cache``; analysis hot paths that interrogate the same
    census thousands of times pay for each derivation only once.
    """

    __slots__ = ("_shares", "_cache")

    def __init__(self, weights: Mapping[ConfigKey, float]) -> None:
        if not weights:
            raise DistributionError("a distribution needs at least one configuration")
        cleaned: Dict[ConfigKey, float] = {}
        for key, weight in weights.items():
            weight = float(weight)
            if weight < 0 or math.isnan(weight) or math.isinf(weight):
                raise DistributionError(
                    f"weight for {key!r} must be a finite non-negative number, got {weight}"
                )
            cleaned[key] = weight
        total = sum(cleaned.values())
        if total <= 0:
            raise DistributionError("total weight must be positive")
        self._shares: Dict[ConfigKey, float] = {
            key: weight / total for key, weight in cleaned.items()
        }
        self._cache: Dict[object, object] = {}

    def _memoized(self, key, compute):
        """Value of ``compute()`` cached under ``key`` for this instance."""
        try:
            return self._cache[key]
        except KeyError:
            value = compute()
            self._cache[key] = value
            return value

    # -- constructors ----------------------------------------------------------

    @classmethod
    def from_weights(cls, weights: Mapping[ConfigKey, float]) -> "ConfigurationDistribution":
        """Alias of the constructor, for readability at call sites."""
        return cls(weights)

    @classmethod
    def from_counts(cls, counts: Mapping[ConfigKey, int]) -> "ConfigurationDistribution":
        """Build from integer configuration abundances (replica counts)."""
        for key, count in counts.items():
            if int(count) != count or count < 0:
                raise DistributionError(
                    f"count for {key!r} must be a non-negative integer, got {count}"
                )
        return cls({key: float(count) for key, count in counts.items()})

    @classmethod
    def uniform(cls, keys: Iterable[ConfigKey]) -> "ConfigurationDistribution":
        """The uniform distribution over ``keys`` (κ-optimal by construction)."""
        keys = list(keys)
        if not keys:
            raise DistributionError("uniform distribution needs at least one configuration")
        if len(set(keys)) != len(keys):
            raise DistributionError("uniform distribution keys must be unique")
        share = 1.0 / len(keys)
        return cls({key: share for key in keys})

    @classmethod
    def uniform_labels(cls, count: int, *, prefix: str = "config") -> "ConfigurationDistribution":
        """A uniform distribution over ``count`` synthetic labels."""
        if count <= 0:
            raise DistributionError(f"count must be positive, got {count}")
        return cls.uniform([f"{prefix}-{index}" for index in range(count)])

    @classmethod
    def from_probabilities(
        cls,
        probabilities: Sequence[float],
        *,
        keys: Optional[Sequence[ConfigKey]] = None,
    ) -> "ConfigurationDistribution":
        """Build from an already-normalized probability vector.

        When ``keys`` is omitted, synthetic ``config-<i>`` labels are used.
        """
        if keys is None:
            keys = [f"config-{index}" for index in range(len(probabilities))]
        if len(keys) != len(probabilities):
            raise DistributionError(
                f"got {len(keys)} keys for {len(probabilities)} probabilities"
            )
        return cls(dict(zip(keys, probabilities)))

    # -- accessors -------------------------------------------------------------

    def share(self, key: ConfigKey) -> float:
        """The share ``p_i`` of configuration ``key`` (0 when absent)."""
        return self._shares.get(key, 0.0)

    def shares(self) -> Dict[ConfigKey, float]:
        """A copy of the full mapping configuration -> share."""
        return dict(self._shares)

    def probabilities(self) -> Tuple[float, ...]:
        """The probability vector, in insertion order (memoized)."""
        return self._memoized("probabilities", lambda: tuple(self._shares.values()))

    def sorted_probabilities(self) -> Tuple[float, ...]:
        """The probability vector sorted in descending order (memoized).

        This is the layout the Monte-Carlo kernels want: the attacker's
        greedy top-k picks are then a prefix of the vulnerable entries.
        """
        return self._memoized(
            "sorted_probabilities",
            lambda: tuple(sorted(self._shares.values(), reverse=True)),
        )

    def probabilities_array(self, backend=None):
        """The probability vector as the given backend's array type (cached).

        ``backend`` follows :func:`repro.backend.get_backend` resolution.
        The array is built once per backend and reused, so kernels receive a
        ready-made array instead of re-materializing one per call.
        """
        from repro.backend import get_backend

        resolved = get_backend(backend)
        return self._memoized(
            ("probabilities_array", resolved.name),
            lambda: resolved.asarray(self.probabilities()),
        )

    def sorted_probabilities_array(self, backend=None):
        """Descending probability vector as the backend's array type (cached)."""
        from repro.backend import get_backend

        resolved = get_backend(backend)
        return self._memoized(
            ("sorted_probabilities_array", resolved.name),
            lambda: resolved.asarray(self.sorted_probabilities()),
        )

    def configurations(self) -> Tuple[ConfigKey, ...]:
        """The configuration keys, in insertion order."""
        return tuple(self._shares.keys())

    def support(self) -> Tuple[ConfigKey, ...]:
        """Configurations with a strictly positive share."""
        return self._memoized(
            "support",
            lambda: tuple(key for key, share in self._shares.items() if share > 0),
        )

    def support_size(self) -> int:
        """κ — the number of configurations with non-zero share."""
        return len(self.support())

    def _ranked(self) -> Tuple[Tuple[ConfigKey, float], ...]:
        return self._memoized(
            "ranked",
            lambda: tuple(sorted(self._shares.items(), key=lambda item: -item[1])),
        )

    def largest(self, count: int = 1) -> Tuple[Tuple[ConfigKey, float], ...]:
        """The ``count`` largest (configuration, share) pairs.

        The full ranking is computed once and memoized, so repeated calls
        (with any ``count``) no longer re-sort the share map.
        """
        if count < 0:
            raise DistributionError(f"count must be non-negative, got {count}")
        return self._ranked()[:count]

    # -- diversity metrics ------------------------------------------------------

    def entropy(self, *, base: float = 2.0, backend=None) -> float:
        """Shannon entropy ``H(p)`` of this distribution (Section IV-A).

        Computed on the selected compute backend from the cached probability
        array and memoized per ``(base, backend)``.  The shares are already
        validated and normalized by the constructor, so the backend kernel
        runs without re-validation; the pure-Python backend reproduces
        :func:`repro.core.entropy.shannon_entropy` exactly, array backends
        agree to floating-point summation order.
        """
        from repro.backend import get_backend

        resolved = get_backend(backend)
        return self._memoized(
            ("entropy", base, resolved.name),
            lambda: resolved.shannon_entropy(
                self.probabilities_array(resolved), base=base
            ),
        )

    def normalized_entropy(self) -> float:
        """Entropy divided by the maximum for the current support size."""
        return entropy_module.normalized_entropy(self.probabilities())

    def max_entropy(self, *, base: float = 2.0) -> float:
        """The entropy this distribution would have if it were κ-optimal
        (memoized per base)."""
        return self._memoized(
            ("max_entropy", base),
            lambda: entropy_module.max_entropy(self.support_size(), base=base),
        )

    def entropy_deficit(self, *, base: float = 2.0) -> float:
        """``max_entropy - entropy``; zero exactly for κ-optimal distributions."""
        return self.max_entropy(base=base) - self.entropy(base=base)

    def effective_configurations(self) -> float:
        """Hill number of order 1 (effective number of configurations)."""
        return entropy_module.effective_configurations(self.probabilities())

    def diversity_profile(self, *, base: float = 2.0) -> dict:
        """All supported diversity indices in one dictionary."""
        return diversity_profile(self.probabilities(), base=base)

    def is_uniform(self, *, tolerance: float = 1e-9) -> bool:
        """True when every non-zero share equals every other within tolerance."""
        positive = [share for share in self._shares.values() if share > 0]
        if not positive:
            return False
        expected = 1.0 / len(positive)
        return all(abs(share - expected) <= tolerance for share in positive)

    # -- transformations ---------------------------------------------------------

    def restrict(self, keys: Iterable[ConfigKey]) -> "ConfigurationDistribution":
        """Distribution conditioned on the given configurations (renormalized)."""
        keys = set(keys)
        selected = {key: share for key, share in self._shares.items() if key in keys}
        if not selected or sum(selected.values()) <= 0:
            raise DistributionError("restriction has no probability mass")
        return ConfigurationDistribution(selected)

    def without_zero_shares(self) -> "ConfigurationDistribution":
        """Drop zero-share configurations from the key set."""
        return ConfigurationDistribution(
            {key: share for key, share in self._shares.items() if share > 0}
        )

    def merge(
        self,
        other: "ConfigurationDistribution",
        *,
        self_weight: float = 0.5,
    ) -> "ConfigurationDistribution":
        """Convex mixture of two distributions.

        ``self_weight`` is the weight of ``self``; ``other`` gets the
        complement.  Models, for example, combining the attested and
        non-attested sub-populations of the paper's concluding two-class
        design with their respective voting weights.
        """
        if not 0.0 <= self_weight <= 1.0:
            raise DistributionError(f"self_weight must be within [0, 1], got {self_weight}")
        combined: Dict[ConfigKey, float] = {}
        for key, share in self._shares.items():
            combined[key] = combined.get(key, 0.0) + self_weight * share
        for key, share in other._shares.items():
            combined[key] = combined.get(key, 0.0) + (1.0 - self_weight) * share
        return ConfigurationDistribution(combined)

    def reweighted(
        self, weights: Mapping[ConfigKey, float]
    ) -> "ConfigurationDistribution":
        """Multiply each configuration's share by a per-configuration weight.

        Missing keys keep weight 1.  The result is renormalized.  This models
        voting-weight policies (e.g. down-weighting non-attested replicas).
        """
        adjusted: Dict[ConfigKey, float] = {}
        for key, share in self._shares.items():
            factor = float(weights.get(key, 1.0))
            if factor < 0:
                raise DistributionError(f"weight for {key!r} must be non-negative")
            adjusted[key] = share * factor
        if sum(adjusted.values()) <= 0:
            raise DistributionError("reweighting removed all probability mass")
        return ConfigurationDistribution(adjusted)

    def split_configuration(
        self, key: ConfigKey, parts: int, *, prefix: Optional[str] = None
    ) -> "ConfigurationDistribution":
        """Split one configuration's share uniformly into ``parts`` new keys.

        This is the operation behind Figure 1's residual treatment: the
        unknown 0.87% of hash power is split uniformly among ``x`` additional
        miners, each assumed to run its own unique configuration.
        """
        if parts <= 0:
            raise DistributionError(f"parts must be positive, got {parts}")
        if key not in self._shares:
            raise DistributionError(f"configuration {key!r} not in distribution")
        share = self._shares[key]
        result = {k: v for k, v in self._shares.items() if k != key}
        label = prefix if prefix is not None else str(key)
        piece = share / parts
        for index in range(parts):
            result[f"{label}#{index}"] = piece
        return ConfigurationDistribution(result)

    # -- dunder ----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._shares)

    def __iter__(self) -> Iterator[ConfigKey]:
        return iter(self._shares)

    def __contains__(self, key: ConfigKey) -> bool:
        return key in self._shares

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ConfigurationDistribution):
            return NotImplemented
        if set(self._shares) != set(other._shares):
            return False
        return all(
            math.isclose(self._shares[key], other._shares[key], abs_tol=1e-12)
            for key in self._shares
        )

    def __hash__(self) -> int:  # pragma: no cover - distributions rarely hashed
        return hash(tuple(sorted((str(k), round(v, 12)) for k, v in self._shares.items())))

    def __repr__(self) -> str:
        return (
            f"ConfigurationDistribution(configs={len(self)}, "
            f"kappa={self.support_size()}, H={self.entropy():.4f} bits)"
        )
