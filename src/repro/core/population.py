"""Replica populations: the set of participants holding voting power.

A :class:`Replica` is a participant with an id, a configuration, a voting
power and an attestation flag (whether its configuration has been discovered
via remote attestation, Section III-B).  A :class:`ReplicaPopulation` is the
evolving set of replicas in a (possibly permissionless) system; it supports
join/leave, power updates, and produces the two censuses the paper's analysis
needs:

- the **power-weighted census** (relative configuration abundance) used for
  Bitcoin-like systems, and
- the **count-weighted census** (configuration abundance) used for classic
  BFT systems.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.core.abundance import AbundanceVector
from repro.core.configuration import ReplicaConfiguration, SoftwareComponent
from repro.core.distribution import ConfigurationDistribution
from repro.core.exceptions import PopulationError
from repro.core.power import PowerLedger, PowerRegime


@dataclass(frozen=True)
class Replica:
    """One participant holding voting power.

    Attributes:
        replica_id: unique identifier within the population.
        configuration: the replica's attested or declared configuration.
        power: absolute voting power (replica count weight, hashrate, stake).
        attested: whether the configuration was discovered through remote
            attestation (true) or merely self-declared (false).
        metadata: free-form annotations (region, operator, pool membership).
    """

    replica_id: str
    configuration: ReplicaConfiguration
    power: float = 1.0
    attested: bool = False
    metadata: Tuple[Tuple[str, str], ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.replica_id:
            raise PopulationError("replica id must not be empty")
        if self.power < 0:
            raise PopulationError(f"replica power must be non-negative, got {self.power}")

    def with_power(self, power: float) -> "Replica":
        """A copy of this replica holding ``power`` voting power."""
        return replace(self, power=power)

    def with_configuration(self, configuration: ReplicaConfiguration) -> "Replica":
        """A copy of this replica running ``configuration`` (e.g. after patching)."""
        return replace(self, configuration=configuration)

    def with_attested(self, attested: bool) -> "Replica":
        """A copy of this replica with the attestation flag set to ``attested``."""
        return replace(self, attested=attested)

    def metadata_dict(self) -> Dict[str, str]:
        """Metadata as a plain dictionary."""
        return dict(self.metadata)


class ReplicaPopulation:
    """A mutable collection of replicas with census and power queries."""

    def __init__(
        self,
        replicas: Iterable[Replica] = (),
        *,
        regime: PowerRegime = PowerRegime.REPLICA_COUNT,
    ) -> None:
        self._replicas: Dict[str, Replica] = {}
        self._regime = regime
        for replica in replicas:
            self.join(replica)

    # -- membership -------------------------------------------------------------

    def join(self, replica: Replica) -> None:
        """Add a replica; the id must not already be present."""
        if replica.replica_id in self._replicas:
            raise PopulationError(f"replica {replica.replica_id!r} already joined")
        self._replicas[replica.replica_id] = replica

    def leave(self, replica_id: str) -> Replica:
        """Remove and return the replica with ``replica_id``."""
        if replica_id not in self._replicas:
            raise PopulationError(f"unknown replica {replica_id!r}")
        return self._replicas.pop(replica_id)

    def update(self, replica: Replica) -> None:
        """Replace an existing replica (same id) with an updated record."""
        if replica.replica_id not in self._replicas:
            raise PopulationError(f"unknown replica {replica.replica_id!r}")
        self._replicas[replica.replica_id] = replica

    def get(self, replica_id: str) -> Replica:
        """The replica with ``replica_id`` (raises when unknown)."""
        try:
            return self._replicas[replica_id]
        except KeyError:
            raise PopulationError(f"unknown replica {replica_id!r}") from None

    def replicas(self) -> Tuple[Replica, ...]:
        """All replicas, in join order."""
        return tuple(self._replicas.values())

    def replica_ids(self) -> Tuple[str, ...]:
        return tuple(self._replicas.keys())

    def filter(self, predicate: Callable[[Replica], bool]) -> "ReplicaPopulation":
        """A new population containing only replicas satisfying ``predicate``."""
        return ReplicaPopulation(
            (replica for replica in self._replicas.values() if predicate(replica)),
            regime=self._regime,
        )

    def attested_subpopulation(self) -> "ReplicaPopulation":
        """Replicas whose configuration was discovered by remote attestation."""
        return self.filter(lambda replica: replica.attested)

    def unattested_subpopulation(self) -> "ReplicaPopulation":
        """Replicas whose configuration is only self-declared."""
        return self.filter(lambda replica: not replica.attested)

    # -- power ------------------------------------------------------------------

    @property
    def regime(self) -> PowerRegime:
        return self._regime

    def total_power(self) -> float:
        """``n_t`` — total voting power across all replicas."""
        return sum(replica.power for replica in self._replicas.values())

    def power_of(self, replica_id: str) -> float:
        return self.get(replica_id).power

    def set_power(self, replica_id: str, power: float) -> None:
        """Update the absolute power of one replica."""
        if power < 0:
            raise PopulationError(f"power must be non-negative, got {power}")
        self.update(self.get(replica_id).with_power(power))

    def power_ledger(self) -> PowerLedger:
        """A :class:`PowerLedger` snapshot of the current power assignment."""
        ledger = PowerLedger(regime=self._regime)
        for replica in self._replicas.values():
            ledger.set_power(replica.replica_id, replica.power)
        return ledger

    # -- census -----------------------------------------------------------------

    def configuration_census(
        self, *, weight_by_power: bool = True
    ) -> ConfigurationDistribution:
        """The probability distribution ``p`` over configurations.

        With ``weight_by_power`` (the default) each configuration's share is
        the fraction of total voting power running it — the quantity whose
        entropy Figure 1 plots.  With ``weight_by_power=False`` each replica
        counts equally, matching the classic BFT replica-count view.
        """
        if not self._replicas:
            raise PopulationError("cannot take the census of an empty population")
        weights: Dict[ReplicaConfiguration, float] = {}
        for replica in self._replicas.values():
            weight = replica.power if weight_by_power else 1.0
            weights[replica.configuration] = weights.get(replica.configuration, 0.0) + weight
        return ConfigurationDistribution(weights)

    def abundance_vector(self, *, weight_by_power: bool = False) -> AbundanceVector:
        """Configuration abundance (Section IV-B).

        By default counts replicas per configuration (the ecology notion of
        individuals per configuration); with ``weight_by_power=True`` it sums
        voting power instead.
        """
        if not self._replicas:
            raise PopulationError("cannot take the abundance of an empty population")
        abundance: Dict[ReplicaConfiguration, float] = {}
        for replica in self._replicas.values():
            weight = replica.power if weight_by_power else 1.0
            abundance[replica.configuration] = abundance.get(replica.configuration, 0.0) + weight
        return AbundanceVector(abundance)

    def entropy(self, *, base: float = 2.0, weight_by_power: bool = True) -> float:
        """Shannon entropy of the configuration census."""
        return self.configuration_census(weight_by_power=weight_by_power).entropy(base=base)

    def configurations(self) -> Tuple[ReplicaConfiguration, ...]:
        """The distinct configurations present in the population."""
        seen: List[ReplicaConfiguration] = []
        for replica in self._replicas.values():
            if replica.configuration not in seen:
                seen.append(replica.configuration)
        return tuple(seen)

    def replicas_with_configuration(
        self, configuration: ReplicaConfiguration
    ) -> Tuple[Replica, ...]:
        """All replicas running exactly ``configuration``."""
        return tuple(
            replica
            for replica in self._replicas.values()
            if replica.configuration == configuration
        )

    def replicas_using_component(
        self, component: SoftwareComponent
    ) -> Tuple[Replica, ...]:
        """All replicas whose configuration includes ``component``.

        This is the fault-domain query used by exploit campaigns: a
        vulnerability in ``component`` makes every returned replica Byzantine.
        """
        return tuple(
            replica
            for replica in self._replicas.values()
            if replica.configuration.has_component(component)
        )

    def power_using_component(self, component: SoftwareComponent) -> float:
        """Total voting power exposed to a fault in ``component``."""
        return sum(replica.power for replica in self.replicas_using_component(component))

    def fraction_using_component(self, component: SoftwareComponent) -> float:
        """Fraction of total voting power exposed to a fault in ``component``."""
        total = self.total_power()
        if total <= 0:
            return 0.0
        return self.power_using_component(component) / total

    # -- construction helpers -----------------------------------------------------

    @classmethod
    def with_unique_configurations(
        cls,
        count: int,
        *,
        power_each: float = 1.0,
        prefix: str = "replica",
        regime: PowerRegime = PowerRegime.REPLICA_COUNT,
        attested: bool = False,
    ) -> "ReplicaPopulation":
        """A population of ``count`` replicas, each with its own configuration.

        This is the classic BFT-SMR assumption (configuration abundance 1)
        used as the comparison point in Example 1.
        """
        if count <= 0:
            raise PopulationError(f"count must be positive, got {count}")
        replicas = [
            Replica(
                replica_id=f"{prefix}-{index}",
                configuration=ReplicaConfiguration.labeled(f"{prefix}-{index}"),
                power=power_each,
                attested=attested,
            )
            for index in range(count)
        ]
        return cls(replicas, regime=regime)

    @classmethod
    def from_power_mapping(
        cls,
        power: Dict[str, float],
        *,
        regime: PowerRegime = PowerRegime.HASHRATE,
        attested: bool = False,
    ) -> "ReplicaPopulation":
        """One replica per entry, each with a unique labeled configuration.

        Used for the Figure 1 best-case analysis where every mining pool is
        assumed to run a unique configuration.
        """
        if not power:
            raise PopulationError("power mapping must not be empty")
        replicas = [
            Replica(
                replica_id=name,
                configuration=ReplicaConfiguration.labeled(name),
                power=value,
                attested=attested,
            )
            for name, value in power.items()
        ]
        return cls(replicas, regime=regime)

    # -- dunder -------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._replicas)

    def __iter__(self) -> Iterator[Replica]:
        return iter(self._replicas.values())

    def __contains__(self, replica_id: str) -> bool:
        return replica_id in self._replicas

    def __repr__(self) -> str:
        return (
            f"ReplicaPopulation(replicas={len(self)}, regime={self._regime.value!r}, "
            f"total_power={self.total_power():.6g})"
        )
