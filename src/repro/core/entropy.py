"""Entropy measures over replica-configuration distributions.

The paper quantifies replica diversity with the Shannon entropy of the
probability distribution ``p = (p1, ..., pk)`` over the configuration space
``D = {d1, ..., dk}`` (Section IV-A), with the convention ``0 * log(1/0) = 0``.
Example 1 fixes the logarithm base to 2 (an 8-replica uniform distribution has
entropy 3), so every function here defaults to base 2 but accepts any base.

Beyond plain Shannon entropy the module provides the standard generalisations
used in the ecology literature the paper borrows "abundance" from: Rényi
entropy, min-entropy and the effective number of configurations (the Hill
number of order 1), plus helpers for maximum and normalized entropy.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

from repro.core.exceptions import DistributionError

#: Tolerance used when validating that probabilities sum to one.
PROBABILITY_TOLERANCE = 1e-9


def _as_validated_probabilities(
    probabilities: Iterable[float],
    *,
    normalize: bool = False,
) -> list[float]:
    """Return ``probabilities`` as a validated list.

    Negative entries always raise :class:`DistributionError`.  When
    ``normalize`` is false the entries must sum to 1 within
    :data:`PROBABILITY_TOLERANCE`; when true they are rescaled to sum to 1.
    """
    values = [float(p) for p in probabilities]
    if not values:
        raise DistributionError("probability vector must not be empty")
    for value in values:
        if value < 0:
            raise DistributionError(f"probabilities must be non-negative, got {value}")
        if math.isnan(value) or math.isinf(value):
            raise DistributionError(f"probabilities must be finite, got {value}")
    total = sum(values)
    if total <= 0:
        raise DistributionError("probability vector must have positive mass")
    if normalize:
        return [value / total for value in values]
    if abs(total - 1.0) > PROBABILITY_TOLERANCE:
        raise DistributionError(
            f"probabilities must sum to 1 (got {total!r}); "
            "pass normalize=True to rescale raw weights"
        )
    return values


def _log(value: float, base: float) -> float:
    if base <= 0 or base == 1:
        raise DistributionError(f"logarithm base must be positive and != 1, got {base}")
    return math.log(value, base)


def shannon_entropy(
    probabilities: Iterable[float],
    *,
    base: float = 2.0,
    normalize: bool = False,
) -> float:
    """Shannon entropy ``H(p) = -sum_i p_i log(p_i)`` (Section IV-A).

    Zero-probability entries contribute nothing, following the paper's
    convention ``log(1/0) := 0``.

    Args:
        probabilities: probability vector (or raw non-negative weights when
            ``normalize`` is true).
        base: logarithm base; 2 gives bits and matches Example 1.
        normalize: rescale raw weights so they sum to one before computing.

    Returns:
        The entropy in units determined by ``base``.
    """
    values = _as_validated_probabilities(probabilities, normalize=normalize)
    entropy = 0.0
    for p in values:
        if p > 0:
            entropy -= p * _log(p, base)
    # Guard against -0.0 from floating point noise on degenerate vectors.
    return 0.0 if entropy == 0.0 else entropy


def max_entropy(support_size: int, *, base: float = 2.0) -> float:
    """Maximum achievable entropy for ``support_size`` configurations.

    This is ``log(support_size)`` and is attained exactly by the uniform
    distribution, i.e. by a κ-optimal fault-independent system with
    κ = ``support_size`` (Definition 1).
    """
    if support_size <= 0:
        raise DistributionError(f"support size must be positive, got {support_size}")
    if support_size == 1:
        return 0.0
    return _log(float(support_size), base)


def normalized_entropy(
    probabilities: Iterable[float],
    *,
    base: float = 2.0,
    normalize: bool = False,
) -> float:
    """Pielou-style evenness: entropy divided by the maximum for its support.

    Returns a value in ``[0, 1]``; 1 means the non-zero configuration shares
    are perfectly uniform (the distribution is κ-optimal for its own κ), and
    values near 0 indicate an oligopoly.  A single-configuration distribution
    is defined to have evenness 0 (no diversity at all).
    """
    values = _as_validated_probabilities(probabilities, normalize=normalize)
    support = sum(1 for p in values if p > 0)
    if support <= 1:
        return 0.0
    return shannon_entropy(values, base=base) / max_entropy(support, base=base)


def renyi_entropy(
    probabilities: Iterable[float],
    order: float,
    *,
    base: float = 2.0,
    normalize: bool = False,
) -> float:
    """Rényi entropy of the given ``order`` (``alpha``).

    ``order == 1`` is the Shannon entropy (limit), ``order == 0`` is the
    Hartley entropy ``log(support)`` and ``order == inf`` is the min-entropy.
    """
    if order < 0:
        raise DistributionError(f"Rényi order must be non-negative, got {order}")
    values = _as_validated_probabilities(probabilities, normalize=normalize)
    positive = [p for p in values if p > 0]
    if math.isclose(order, 1.0):
        return shannon_entropy(values, base=base)
    if math.isinf(order):
        return min_entropy(values, base=base)
    if order == 0:
        return max_entropy(len(positive), base=base)
    power_sum = sum(p**order for p in positive)
    return _log(power_sum, base) / (1.0 - order)


def min_entropy(
    probabilities: Iterable[float],
    *,
    base: float = 2.0,
    normalize: bool = False,
) -> float:
    """Min-entropy ``-log(max_i p_i)``.

    The min-entropy is governed by the single largest configuration share and
    is therefore the most pessimistic diversity measure: it directly reflects
    the power an attacker gains by exploiting the most popular configuration.
    """
    values = _as_validated_probabilities(probabilities, normalize=normalize)
    return -_log(max(values), base)


def effective_configurations(
    probabilities: Iterable[float],
    *,
    normalize: bool = False,
) -> float:
    """Effective number of configurations (Hill number of order 1).

    ``exp(H_nats)`` — the number of equally-likely configurations that would
    produce the observed Shannon entropy.  An 8-replica uniform BFT system has
    exactly 8 effective configurations; the Bitcoin oligopoly of Example 1 has
    fewer than 8 despite having many more miners.
    """
    entropy_nats = shannon_entropy(probabilities, base=math.e, normalize=normalize)
    return math.exp(entropy_nats)


def entropy_deficit(
    probabilities: Sequence[float],
    *,
    base: float = 2.0,
    normalize: bool = False,
) -> float:
    """How far a distribution is from the maximum entropy of its support.

    Returns ``max_entropy(support) - H(p)`` which is zero exactly when the
    distribution is κ-optimal for its own support size κ.
    """
    values = _as_validated_probabilities(probabilities, normalize=normalize)
    support = sum(1 for p in values if p > 0)
    return max_entropy(support, base=base) - shannon_entropy(values, base=base)


def jensen_shannon_divergence(
    first: Sequence[float],
    second: Sequence[float],
    *,
    base: float = 2.0,
    normalize: bool = False,
) -> float:
    """Jensen-Shannon divergence between two configuration distributions.

    Useful for tracking how quickly the configuration census of a
    permissionless system drifts over time (e.g. after a vulnerability is
    disclosed and replicas migrate to patched components).  Both inputs must
    have the same length; entries are aligned by index.
    """
    p = _as_validated_probabilities(first, normalize=normalize)
    q = _as_validated_probabilities(second, normalize=normalize)
    if len(p) != len(q):
        raise DistributionError(
            f"distributions must have equal length, got {len(p)} and {len(q)}"
        )
    mixture = [(pi + qi) / 2.0 for pi, qi in zip(p, q)]

    def _kl(numerator: Sequence[float], denominator: Sequence[float]) -> float:
        total = 0.0
        for num, den in zip(numerator, denominator):
            if num > 0:
                total += num * _log(num / den, base)
        return total

    return 0.5 * _kl(p, mixture) + 0.5 * _kl(q, mixture)
