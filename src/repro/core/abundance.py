"""Configuration abundance and relative configuration abundance (Section IV-B).

The paper adapts the ecology notion of *abundance*:

- **configuration abundance** — the number of individuals (replicas / voting
  power units) per replica configuration; relevant to classic BFT protocols
  where the replica count matters.
- **relative configuration abundance** — the associated percent composition;
  relevant to Bitcoin-like protocols where it represents the mining-power
  distribution.

An :class:`AbundanceVector` stores the absolute abundance per configuration
and converts to a :class:`~repro.core.distribution.ConfigurationDistribution`
for entropy analysis.  It also implements the abundance manipulations needed
by Propositions 1-3: uniform scaling (relative abundances preserved) and
selective increments (relative abundances changed).
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, Iterable, Iterator, Mapping, Tuple

from repro.core.distribution import ConfigurationDistribution
from repro.core.exceptions import DistributionError

ConfigKey = Hashable


class AbundanceVector:
    """Absolute abundance (count or voting power) per configuration."""

    __slots__ = ("_abundance",)

    def __init__(self, abundance: Mapping[ConfigKey, float]) -> None:
        if not abundance:
            raise DistributionError("abundance vector needs at least one configuration")
        cleaned: Dict[ConfigKey, float] = {}
        for key, value in abundance.items():
            value = float(value)
            if value < 0 or math.isnan(value) or math.isinf(value):
                raise DistributionError(
                    f"abundance for {key!r} must be finite and non-negative, got {value}"
                )
            cleaned[key] = value
        if sum(cleaned.values()) <= 0:
            raise DistributionError("total abundance must be positive")
        self._abundance = cleaned

    # -- constructors ----------------------------------------------------------

    @classmethod
    def uniform(cls, keys: Iterable[ConfigKey], *, abundance: float = 1.0) -> "AbundanceVector":
        """Every configuration gets the same abundance ``abundance``.

        With ``abundance == 1`` this is the classic BFT-SMR assumption of one
        replica per unique configuration; with ``abundance == ω`` it is the
        (κ, ω)-optimal shape of Definition 2.
        """
        keys = list(keys)
        if not keys:
            raise DistributionError("uniform abundance needs at least one configuration")
        if abundance <= 0:
            raise DistributionError(f"abundance must be positive, got {abundance}")
        return cls({key: abundance for key in keys})

    @classmethod
    def from_counts(cls, counts: Mapping[ConfigKey, int]) -> "AbundanceVector":
        """Build from integer replica counts per configuration."""
        for key, count in counts.items():
            if int(count) != count or count < 0:
                raise DistributionError(
                    f"count for {key!r} must be a non-negative integer, got {count}"
                )
        return cls({key: float(count) for key, count in counts.items()})

    # -- accessors -------------------------------------------------------------

    def abundance_of(self, key: ConfigKey) -> float:
        """Absolute abundance of ``key`` (0 when absent)."""
        return self._abundance.get(key, 0.0)

    def total(self) -> float:
        """Total abundance across all configurations (``n_t``)."""
        return sum(self._abundance.values())

    def configurations(self) -> Tuple[ConfigKey, ...]:
        return tuple(self._abundance.keys())

    def support(self) -> Tuple[ConfigKey, ...]:
        """Configurations with strictly positive abundance."""
        return tuple(key for key, value in self._abundance.items() if value > 0)

    def support_size(self) -> int:
        """κ — the number of configurations that actually have individuals."""
        return len(self.support())

    def relative(self) -> Dict[ConfigKey, float]:
        """Relative configuration abundance (percent composition as fractions)."""
        total = self.total()
        return {key: value / total for key, value in self._abundance.items()}

    def as_mapping(self) -> Dict[ConfigKey, float]:
        """A copy of the raw abundance mapping."""
        return dict(self._abundance)

    def to_distribution(self) -> ConfigurationDistribution:
        """The relative-abundance probability distribution for entropy analysis."""
        return ConfigurationDistribution(self._abundance)

    def entropy(self, *, base: float = 2.0) -> float:
        """Shannon entropy of the relative configuration abundance."""
        return self.to_distribution().entropy(base=base)

    def is_uniform_abundance(self, *, tolerance: float = 1e-9) -> bool:
        """True when every non-zero configuration has the same absolute abundance.

        This is the "configuration abundance of ω" condition in Definition 2.
        """
        positive = [value for value in self._abundance.values() if value > 0]
        if not positive:
            return False
        first = positive[0]
        return all(abs(value - first) <= tolerance * max(1.0, first) for value in positive)

    def mean_abundance(self) -> float:
        """The mean abundance ω over the support."""
        positive = [value for value in self._abundance.values() if value > 0]
        return sum(positive) / len(positive)

    def has_same_relative_abundance(
        self, other: "AbundanceVector", *, tolerance: float = 1e-9
    ) -> bool:
        """True when both vectors have identical percent composition.

        This is the "unless the relative configuration abundance remains
        identical" escape clause of Propositions 1 and 2: identical relative
        abundance implies identical entropy.
        """
        mine = self.relative()
        theirs = other.relative()
        keys = set(mine) | set(theirs)
        return all(
            abs(mine.get(key, 0.0) - theirs.get(key, 0.0)) <= tolerance for key in keys
        )

    # -- transformations --------------------------------------------------------

    def scaled(self, factor: float) -> "AbundanceVector":
        """Multiply every abundance by ``factor`` (relative abundance preserved)."""
        if factor <= 0:
            raise DistributionError(f"scale factor must be positive, got {factor}")
        return AbundanceVector({key: value * factor for key, value in self._abundance.items()})

    def incremented(self, increments: Mapping[ConfigKey, float]) -> "AbundanceVector":
        """Add individuals to selected configurations.

        New keys are allowed (a configuration appearing for the first time).
        Negative increments are allowed as long as no abundance goes negative,
        modeling replicas leaving the system.
        """
        updated: Dict[ConfigKey, float] = dict(self._abundance)
        for key, delta in increments.items():
            updated[key] = updated.get(key, 0.0) + float(delta)
            if updated[key] < 0:
                raise DistributionError(
                    f"increment would make abundance of {key!r} negative"
                )
        return AbundanceVector(updated)

    def with_abundance(self, key: ConfigKey, abundance: float) -> "AbundanceVector":
        """Return a copy with ``key`` set to the given absolute abundance."""
        if abundance < 0:
            raise DistributionError(f"abundance must be non-negative, got {abundance}")
        updated = dict(self._abundance)
        updated[key] = float(abundance)
        return AbundanceVector(updated)

    def merged(self, other: "AbundanceVector") -> "AbundanceVector":
        """Element-wise sum of two abundance vectors (combining populations)."""
        combined: Dict[ConfigKey, float] = dict(self._abundance)
        for key, value in other._abundance.items():
            combined[key] = combined.get(key, 0.0) + value
        return AbundanceVector(combined)

    # -- dunder -----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._abundance)

    def __iter__(self) -> Iterator[ConfigKey]:
        return iter(self._abundance)

    def __contains__(self, key: ConfigKey) -> bool:
        return key in self._abundance

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AbundanceVector):
            return NotImplemented
        if set(self._abundance) != set(other._abundance):
            return False
        return all(
            math.isclose(self._abundance[key], other._abundance[key], abs_tol=1e-12)
            for key in self._abundance
        )

    def __repr__(self) -> str:
        return (
            f"AbundanceVector(configs={len(self)}, kappa={self.support_size()}, "
            f"total={self.total():.6g})"
        )
