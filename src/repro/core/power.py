"""The voting-power abstraction ``n_t`` of Section II-A.

The paper unifies three regimes under a single "voting power" abstraction:

- classic BFT: ``n_t`` is the number of replicas (each replica has power 1);
- Bitcoin-like proof of work: ``n_t`` is the total hashrate;
- committee-based permissionless protocols: ``n_t`` is the committee's total
  voting power and everything outside the committee has power zero.

:class:`PowerRegime` names the regime, and :class:`PowerLedger` tracks the
per-participant voting power at a point in time.  The ledger is the common
input to configuration censuses, exploit campaigns and resilience analysis,
so the same analysis code serves all three regimes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum, unique
from typing import Dict, Iterable, Iterator, Mapping, Tuple

from repro.core.exceptions import PopulationError

#: Tolerance for floating-point power comparisons.
POWER_TOLERANCE = 1e-12


@unique
class PowerRegime(str, Enum):
    """How voting power units should be interpreted."""

    REPLICA_COUNT = "replica_count"
    HASHRATE = "hashrate"
    COMMITTEE_STAKE = "committee_stake"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class PowerShare:
    """The absolute and relative voting power held by one participant."""

    participant_id: str
    power: float
    fraction: float

    def __post_init__(self) -> None:
        if self.power < 0:
            raise PopulationError(f"power must be non-negative, got {self.power}")
        if not 0.0 <= self.fraction <= 1.0 + POWER_TOLERANCE:
            raise PopulationError(f"fraction must be within [0, 1], got {self.fraction}")


@dataclass
class PowerLedger:
    """Mutable ledger of voting power per participant at time ``t``.

    The ledger enforces non-negative power and exposes totals, fractions and
    the largest holders (the "oligopoly view" used in Example 1).
    """

    regime: PowerRegime = PowerRegime.REPLICA_COUNT
    _power: Dict[str, float] = field(default_factory=dict)

    # -- mutation --------------------------------------------------------------

    def set_power(self, participant_id: str, power: float) -> None:
        """Set the absolute power of ``participant_id`` (creates it if new)."""
        if power < 0:
            raise PopulationError(f"power must be non-negative, got {power}")
        if not participant_id:
            raise PopulationError("participant id must not be empty")
        self._power[participant_id] = float(power)

    def add_power(self, participant_id: str, delta: float) -> None:
        """Add ``delta`` power; the result must remain non-negative."""
        current = self._power.get(participant_id, 0.0)
        updated = current + delta
        if updated < -POWER_TOLERANCE:
            raise PopulationError(
                f"power of {participant_id!r} would become negative ({updated})"
            )
        self._power[participant_id] = max(0.0, updated)

    def remove(self, participant_id: str) -> None:
        """Remove a participant entirely (it has left the system)."""
        if participant_id not in self._power:
            raise PopulationError(f"unknown participant {participant_id!r}")
        del self._power[participant_id]

    # -- queries ---------------------------------------------------------------

    def power_of(self, participant_id: str) -> float:
        """Absolute power of ``participant_id`` (0 when unknown)."""
        return self._power.get(participant_id, 0.0)

    def total_power(self) -> float:
        """``n_t`` — the total voting power currently in the system."""
        return sum(self._power.values())

    def fraction_of(self, participant_id: str) -> float:
        """Relative power of ``participant_id`` in ``[0, 1]``."""
        total = self.total_power()
        if total <= 0:
            return 0.0
        return self.power_of(participant_id) / total

    def participants(self) -> Tuple[str, ...]:
        """All participant ids with recorded power (possibly zero)."""
        return tuple(self._power.keys())

    def shares(self) -> Tuple[PowerShare, ...]:
        """Power shares sorted by decreasing power (ties broken by id)."""
        total = self.total_power()
        entries = sorted(self._power.items(), key=lambda item: (-item[1], item[0]))
        return tuple(
            PowerShare(pid, power, (power / total) if total > 0 else 0.0)
            for pid, power in entries
        )

    def top(self, count: int) -> Tuple[PowerShare, ...]:
        """The ``count`` largest power holders."""
        if count < 0:
            raise PopulationError(f"count must be non-negative, got {count}")
        return self.shares()[:count]

    def concentration(self, count: int) -> float:
        """Fraction of total power held by the ``count`` largest holders.

        For the Example 1 snapshot, ``concentration(10) > 0.96`` reflects the
        footnote that the top ten Bitcoin pools control over 96% of hash power.
        """
        return sum(share.fraction for share in self.top(count))

    def as_fractions(self) -> Dict[str, float]:
        """Mapping participant id -> fraction of total power."""
        total = self.total_power()
        if total <= 0:
            return {pid: 0.0 for pid in self._power}
        return {pid: power / total for pid, power in self._power.items()}

    def copy(self) -> "PowerLedger":
        """An independent copy of this ledger."""
        clone = PowerLedger(regime=self.regime)
        clone._power = dict(self._power)
        return clone

    # -- construction ----------------------------------------------------------

    @classmethod
    def uniform(
        cls,
        participant_ids: Iterable[str],
        *,
        regime: PowerRegime = PowerRegime.REPLICA_COUNT,
        power_each: float = 1.0,
    ) -> "PowerLedger":
        """A ledger where every participant holds ``power_each`` units."""
        ledger = cls(regime=regime)
        for pid in participant_ids:
            ledger.set_power(pid, power_each)
        if not ledger._power:
            raise PopulationError("uniform ledger needs at least one participant")
        return ledger

    @classmethod
    def from_mapping(
        cls,
        power: Mapping[str, float],
        *,
        regime: PowerRegime = PowerRegime.HASHRATE,
    ) -> "PowerLedger":
        """A ledger initialised from a mapping of participant -> power."""
        ledger = cls(regime=regime)
        for pid, value in power.items():
            ledger.set_power(pid, value)
        if not ledger._power:
            raise PopulationError("ledger needs at least one participant")
        return ledger

    # -- dunder ----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._power)

    def __iter__(self) -> Iterator[str]:
        return iter(self._power)

    def __contains__(self, participant_id: str) -> bool:
        return participant_id in self._power

    def __repr__(self) -> str:
        return (
            f"PowerLedger(regime={self.regime.value!r}, participants={len(self)}, "
            f"total={self.total_power():.6g})"
        )
