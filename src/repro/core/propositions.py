"""Propositions 1-3 of the paper as executable, checkable statements.

The paper states three propositions verbally; this module turns each into a
function that evaluates the proposition on concrete inputs and returns a
structured result that records the quantities involved, so the experiments
can both *verify* the propositions on sweeps and *report* the underlying
numbers (entropy before/after, resilience before/after, message overhead).

- **Proposition 1** — "For a κ-optimal fault independence system, increasing
  configuration abundance decreases entropy, unless the relative configuration
  abundance remains identical."
- **Proposition 2** — "Assuming each replica has a unique configuration,
  having more replicas does not provide more resilience, unless the relative
  configuration abundances are identical."
- **Proposition 3** — "Higher configuration abundance improves the resilience
  of permissionless blockchains" (against rational/insider operators, at a
  message-overhead cost).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Mapping, Optional, Sequence

from repro.core.abundance import AbundanceVector
from repro.core.distribution import ConfigurationDistribution
from repro.core.exceptions import OptimalityError
from repro.core.optimality import is_kappa_optimal

ConfigKey = Hashable

#: Absolute tolerance for entropy comparisons in the proposition checks.
ENTROPY_TOLERANCE = 1e-9


# ---------------------------------------------------------------------------
# Proposition 1
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Proposition1Result:
    """Outcome of applying an abundance increase to a κ-optimal system.

    Attributes:
        entropy_before: entropy (bits) of the κ-optimal starting point.
        entropy_after: entropy (bits) after the abundance increase.
        relative_abundance_preserved: whether the increase kept the percent
            composition identical.
        entropy_decreased: whether entropy strictly decreased.
        holds: whether the observed behaviour matches Proposition 1 — i.e.
            entropy decreased, or it stayed the same *because* the relative
            abundance was preserved.
    """

    entropy_before: float
    entropy_after: float
    relative_abundance_preserved: bool
    entropy_decreased: bool
    holds: bool


def check_proposition_1(
    baseline: AbundanceVector,
    increments: Mapping[ConfigKey, float],
    *,
    base: float = 2.0,
) -> Proposition1Result:
    """Apply ``increments`` to a κ-optimal abundance vector and check Prop. 1.

    Args:
        baseline: a κ-optimal abundance vector (every populated configuration
            has the same abundance); anything else raises
            :class:`~repro.core.exceptions.OptimalityError` because the
            proposition is stated for κ-optimal systems.
        increments: additional individuals per configuration (new
            configurations are not allowed — the proposition is about
            *abundance*, i.e. more individuals of existing configurations).
        base: entropy logarithm base.
    """
    if not is_kappa_optimal(baseline.to_distribution()):
        raise OptimalityError("Proposition 1 requires a κ-optimal baseline system")
    unknown = [key for key in increments if key not in baseline]
    if unknown:
        raise OptimalityError(
            f"increments reference configurations outside the system: {unknown!r}"
        )
    negative = {key: value for key, value in increments.items() if value < 0}
    if negative:
        raise OptimalityError(
            f"Proposition 1 is about increasing abundance; got negative increments {negative!r}"
        )
    increased = baseline.incremented(increments)

    entropy_before = baseline.entropy(base=base)
    entropy_after = increased.entropy(base=base)
    preserved = baseline.has_same_relative_abundance(increased)
    decreased = entropy_after < entropy_before - ENTROPY_TOLERANCE
    unchanged = abs(entropy_after - entropy_before) <= ENTROPY_TOLERANCE

    holds = decreased or (unchanged and preserved)
    return Proposition1Result(
        entropy_before=entropy_before,
        entropy_after=entropy_after,
        relative_abundance_preserved=preserved,
        entropy_decreased=decreased,
        holds=holds,
    )


# ---------------------------------------------------------------------------
# Proposition 2
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Proposition2Result:
    """Outcome of growing a unique-configuration system and checking Prop. 2.

    "Resilience" is quantified by the worst single-fault exposure: the largest
    configuration share (Berger-Parker dominance), i.e. the voting power an
    attacker gains from one shared fault in the most popular configuration.
    Adding replicas improves resilience only when it shrinks that largest
    share — which, for unique-configuration systems, happens exactly when the
    power split stays uniform (identical relative abundances).  In an
    oligopoly (Example 1), adding small miners leaves the dominant shares
    untouched, so resilience does not improve no matter how many replicas
    join.  Shannon entropies are reported alongside for context.
    """

    replicas_before: int
    replicas_after: int
    entropy_before: float
    entropy_after: float
    largest_share_before: float
    largest_share_after: float
    relative_abundances_identical: bool
    resilience_improved: bool
    holds: bool


def check_proposition_2(
    power_before: Sequence[float],
    power_after: Sequence[float],
    *,
    base: float = 2.0,
) -> Proposition2Result:
    """Check Proposition 2 on two snapshots of a unique-configuration system.

    Args:
        power_before: voting power per replica in the smaller system (each
            replica assumed to run a unique configuration).
        power_after: voting power per replica in the larger system; must not
            have fewer replicas than ``power_before``.
        base: entropy logarithm base.

    The proposition holds for the pair when either (a) resilience (the largest
    configuration share) did not improve, or (b) it improved but the relative
    abundances of the larger system are identical (it is uniform — every
    replica holds the same share, which is the only way per-replica uniqueness
    translates into genuinely independent fault domains of equal weight).
    """
    if len(power_after) < len(power_before):
        raise OptimalityError(
            "Proposition 2 compares a system against a larger one; "
            f"got {len(power_before)} -> {len(power_after)} replicas"
        )
    before = ConfigurationDistribution.from_probabilities(
        list(power_before), keys=[f"before-{i}" for i in range(len(power_before))]
    )
    after = ConfigurationDistribution.from_probabilities(
        list(power_after), keys=[f"after-{i}" for i in range(len(power_after))]
    )
    entropy_before = before.entropy(base=base)
    entropy_after = after.entropy(base=base)
    largest_before = max(before.probabilities())
    largest_after = max(after.probabilities())
    improved = largest_after < largest_before - ENTROPY_TOLERANCE
    uniform_after = after.is_uniform()
    holds = (not improved) or uniform_after
    return Proposition2Result(
        replicas_before=len(power_before),
        replicas_after=len(power_after),
        entropy_before=entropy_before,
        entropy_after=entropy_after,
        largest_share_before=largest_before,
        largest_share_after=largest_after,
        relative_abundances_identical=uniform_after,
        resilience_improved=improved,
        holds=holds,
    )


# ---------------------------------------------------------------------------
# Proposition 3
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Proposition3Result:
    """Effect of configuration abundance on resilience to rational operators.

    With abundance ω, each configuration's voting power is split across ω
    independently-operated replicas.  A rational (bribed, selfish, or insider)
    operator controls only the replicas it operates — not the other replicas
    sharing its configuration — so the maximum voting power a coalition of
    ``colluding_operators`` rational operators can control shrinks as ω grows.
    The price is message overhead: the replica count grows by the factor ω.

    Attributes:
        abundance: the configuration abundance ω.
        replica_count: total number of replicas (κ · ω for uniform systems).
        max_rational_takeover: largest voting-power fraction controllable by
            the coalition of rational operators.
        max_exploit_takeover: largest voting-power fraction compromised by a
            single shared vulnerability (unchanged by ω — Prop. 3's caveat
            that abundance does not help against shared-vulnerability faults).
        message_complexity: per-consensus-round message count under the given
            message model.
    """

    abundance: int
    replica_count: int
    max_rational_takeover: float
    max_exploit_takeover: float
    message_complexity: int


def rational_takeover_fraction(
    distribution: ConfigurationDistribution,
    abundance: int,
    colluding_operators: int,
) -> float:
    """Maximum power fraction a coalition of rational operators can control.

    Each configuration's share is split evenly across ``abundance``
    independently-operated replicas; the coalition greedily picks the
    ``colluding_operators`` largest resulting replicas.
    """
    if abundance <= 0:
        raise OptimalityError(f"abundance must be positive, got {abundance}")
    if colluding_operators < 0:
        raise OptimalityError(
            f"colluding operator count must be non-negative, got {colluding_operators}"
        )
    per_replica_shares: list[float] = []
    for share in distribution.probabilities():
        if share <= 0:
            continue
        per_replica_shares.extend([share / abundance] * abundance)
    per_replica_shares.sort(reverse=True)
    return min(1.0, sum(per_replica_shares[:colluding_operators]))


def message_complexity(replica_count: int, *, model: str = "quadratic") -> int:
    """Per-round message count for ``replica_count`` replicas.

    ``model`` is ``"quadratic"`` for all-to-all (PBFT-style) phases or
    ``"linear"`` for leader-relayed (HotStuff-style) phases.  Proposition 3's
    trade-off — abundance buys resilience but costs messages — is made
    concrete through this function.
    """
    if replica_count <= 0:
        raise OptimalityError(f"replica count must be positive, got {replica_count}")
    if model == "quadratic":
        return replica_count * replica_count
    if model == "linear":
        return replica_count
    raise OptimalityError(f"unknown message model {model!r}")


def check_proposition_3(
    distribution: ConfigurationDistribution,
    abundances: Sequence[int],
    *,
    colluding_operators: int = 1,
    message_model: str = "quadratic",
) -> list[Proposition3Result]:
    """Evaluate the abundance/resilience/overhead trade-off of Proposition 3.

    Returns one :class:`Proposition3Result` per abundance value, in the given
    order.  Proposition 3 holds on the sweep when ``max_rational_takeover`` is
    non-increasing in ω while ``message_complexity`` is non-decreasing.
    """
    if not abundances:
        raise OptimalityError("at least one abundance value is required")
    results: list[Proposition3Result] = []
    exploit_takeover = max(distribution.probabilities())
    for omega in abundances:
        if omega <= 0:
            raise OptimalityError(f"abundance must be positive, got {omega}")
        replica_count = distribution.support_size() * omega
        results.append(
            Proposition3Result(
                abundance=omega,
                replica_count=replica_count,
                max_rational_takeover=rational_takeover_fraction(
                    distribution, omega, colluding_operators
                ),
                max_exploit_takeover=exploit_takeover,
                message_complexity=message_complexity(replica_count, model=message_model),
            )
        )
    return results


def proposition_3_holds(results: Sequence[Proposition3Result]) -> bool:
    """True when the sweep exhibits the trade-off Proposition 3 claims."""
    if len(results) < 2:
        return True
    ordered = sorted(results, key=lambda result: result.abundance)
    takeover_non_increasing = all(
        later.max_rational_takeover <= earlier.max_rational_takeover + ENTROPY_TOLERANCE
        for earlier, later in zip(ordered, ordered[1:])
    )
    overhead_non_decreasing = all(
        later.message_complexity >= earlier.message_complexity
        for earlier, later in zip(ordered, ordered[1:])
    )
    return takeover_non_increasing and overhead_non_decreasing
