"""The Section II-C safety condition and resilience analysis.

Safety requires that at every time ``t`` the total Byzantine voting power does
not exceed the protocol's tolerance: ``f >= sum_i f_t^i`` where ``f_t^i`` is
the voting power compromised through the i-th vulnerability.  This module
provides:

- :func:`tolerated_fault_fraction` — the fraction of voting power a protocol
  family tolerates (1/3 for classic BFT with n = 3f+1, 1/2 for hybrid
  protocols with trusted components and for Nakamoto consensus under the
  honest-majority assumption);
- :class:`SafetyCondition` — the inequality itself, evaluated against a set of
  per-vulnerability compromised powers;
- :func:`worst_case_compromise` — the largest voting power an attacker can
  compromise by exploiting a bounded number of vulnerabilities against a
  replica population;
- :class:`ResilienceReport` — a bundled verdict used by experiments.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum, unique
from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple

from repro.core.exceptions import FaultModelError
from repro.core.population import ReplicaPopulation

#: Numerical slack applied when comparing fractions of voting power.
FRACTION_TOLERANCE = 1e-9


@unique
class ProtocolFamily(str, Enum):
    """Protocol families with their standard fault-tolerance bounds."""

    BFT = "bft"  # n = 3f + 1 (PBFT, HotStuff, Tendermint, ...)
    HYBRID = "hybrid"  # n = 2f + 1 with trusted components (Damysus, MinBFT)
    CRASH = "crash"  # n = 2f + 1 crash-fault tolerant (Paxos/Raft)
    NAKAMOTO = "nakamoto"  # honest-majority hash power

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


def tolerated_fault_fraction(family: ProtocolFamily) -> float:
    """The fraction of total voting power a protocol family tolerates.

    The value is the strict upper bound: the adversary must control strictly
    less than this fraction for safety (and, for Nakamoto, for the common
    honest-majority argument to apply).
    """
    if family is ProtocolFamily.BFT:
        return 1.0 / 3.0
    if family in (ProtocolFamily.HYBRID, ProtocolFamily.CRASH, ProtocolFamily.NAKAMOTO):
        return 1.0 / 2.0
    raise FaultModelError(f"unknown protocol family {family!r}")


def tolerated_faults(total_replicas: int, family: ProtocolFamily) -> int:
    """The integer ``f`` for a replica-count protocol with ``total_replicas``.

    For BFT protocols ``f = floor((n - 1) / 3)``; for hybrid / crash protocols
    ``f = floor((n - 1) / 2)``.  Nakamoto consensus has no meaningful integer
    ``f``; requesting it raises :class:`FaultModelError`.
    """
    if total_replicas <= 0:
        raise FaultModelError(f"total replicas must be positive, got {total_replicas}")
    if family is ProtocolFamily.BFT:
        return (total_replicas - 1) // 3
    if family in (ProtocolFamily.HYBRID, ProtocolFamily.CRASH):
        return (total_replicas - 1) // 2
    raise FaultModelError("Nakamoto consensus does not define an integer fault bound")


@dataclass(frozen=True)
class SafetyCondition:
    """The Section II-C condition ``f >= sum_i f_t^i`` in voting-power units.

    Attributes:
        tolerated_power: the protocol's tolerance ``f`` expressed in absolute
            voting-power units (e.g. ``f`` replicas, or 49.999...% of hash
            power).
        total_power: the system's total voting power ``n_t``.
    """

    tolerated_power: float
    total_power: float
    inclusive: bool = False

    def __post_init__(self) -> None:
        if self.total_power <= 0:
            raise FaultModelError(f"total power must be positive, got {self.total_power}")
        if self.tolerated_power < 0:
            raise FaultModelError(
                f"tolerated power must be non-negative, got {self.tolerated_power}"
            )

    @classmethod
    def for_family(
        cls, family: ProtocolFamily, total_power: float
    ) -> "SafetyCondition":
        """Build the condition for a protocol family given total power.

        The tolerated power is an *open* bound (e.g. strictly less than one
        third of the power for BFT); :meth:`is_safe` therefore uses a strict
        comparison for conditions built this way.
        """
        fraction = tolerated_fault_fraction(family)
        return cls(
            tolerated_power=fraction * total_power,
            total_power=total_power,
            inclusive=False,
        )

    @classmethod
    def for_replica_count(
        cls, total_replicas: int, family: ProtocolFamily = ProtocolFamily.BFT
    ) -> "SafetyCondition":
        """Build the condition for a replica-count protocol (integer ``f``).

        Here the paper's condition ``f >= sum_i f_t^i`` is inclusive:
        compromising exactly ``f`` replicas is still safe.
        """
        f = tolerated_faults(total_replicas, family)
        return cls(
            tolerated_power=float(f),
            total_power=float(total_replicas),
            inclusive=True,
        )

    @property
    def tolerated_fraction(self) -> float:
        """The tolerated power as a fraction of total power."""
        return self.tolerated_power / self.total_power

    def compromised_power(self, per_vulnerability_power: Iterable[float]) -> float:
        """``sum_i f_t^i`` — total power compromised across vulnerabilities."""
        total = 0.0
        for power in per_vulnerability_power:
            if power < 0:
                raise FaultModelError(f"compromised power must be non-negative, got {power}")
            total += power
        return total

    def is_safe(self, per_vulnerability_power: Iterable[float]) -> bool:
        """True when the compromised power respects the tolerance.

        For conditions built from an integer fault bound
        (:meth:`for_replica_count`), the paper's ``f >= sum f_t^i`` is
        inclusive: compromising exactly ``f`` replicas is safe.  For
        fraction-based conditions (:meth:`for_family`) the bound is open and
        equality is unsafe, which is the conservative reading of "strictly
        less than one third / one half of the power".
        """
        compromised = self.compromised_power(per_vulnerability_power)
        if self.inclusive:
            return compromised <= self.tolerated_power + FRACTION_TOLERANCE
        return compromised < self.tolerated_power - FRACTION_TOLERANCE

    def margin(self, per_vulnerability_power: Iterable[float]) -> float:
        """Remaining tolerance: ``tolerated_power - sum_i f_t^i`` (may be negative)."""
        return self.tolerated_power - self.compromised_power(per_vulnerability_power)


@dataclass(frozen=True)
class ResilienceReport:
    """Verdict of a resilience analysis against a concrete fault scenario.

    Attributes:
        family: the protocol family analysed.
        total_power: total voting power ``n_t``.
        tolerated_power: the tolerance ``f`` in power units.
        compromised_power: total power the scenario compromises.
        compromised_fraction: the same as a fraction of total power.
        safe: whether the Section II-C condition holds.
        per_vulnerability: power compromised by each vulnerability considered.
    """

    family: ProtocolFamily
    total_power: float
    tolerated_power: float
    compromised_power: float
    compromised_fraction: float
    safe: bool
    per_vulnerability: Tuple[Tuple[str, float], ...]

    @property
    def margin(self) -> float:
        """Power still tolerable before safety is lost (negative when unsafe)."""
        return self.tolerated_power - self.compromised_power


def analyze_resilience(
    population: ReplicaPopulation,
    compromised_power_by_vulnerability: Mapping[str, float],
    *,
    family: ProtocolFamily = ProtocolFamily.BFT,
    total_power: Optional[float] = None,
) -> ResilienceReport:
    """Evaluate the safety condition for a population under a fault scenario.

    Args:
        population: the replica population under analysis.
        compromised_power_by_vulnerability: voting power ``f_t^i`` compromised
            by each vulnerability (already resolved against the population —
            see :mod:`repro.faults.campaign` for deriving these numbers from a
            vulnerability catalog).
        family: the protocol family whose tolerance applies.
        total_power: override for ``n_t``; defaults to the population's total.
    """
    total = population.total_power() if total_power is None else float(total_power)
    if total <= 0:
        raise FaultModelError(f"total power must be positive, got {total}")
    condition = SafetyCondition.for_family(family, total)
    per_vulnerability = tuple(sorted(compromised_power_by_vulnerability.items()))
    compromised = condition.compromised_power(
        power for _, power in per_vulnerability
    )
    return ResilienceReport(
        family=family,
        total_power=total,
        tolerated_power=condition.tolerated_power,
        compromised_power=compromised,
        compromised_fraction=compromised / total,
        safe=condition.is_safe(power for _, power in per_vulnerability),
        per_vulnerability=per_vulnerability,
    )


def worst_case_compromise(
    exposure_by_vulnerability: Mapping[str, float],
    *,
    max_vulnerabilities: int = 1,
) -> Tuple[float, Tuple[str, ...]]:
    """The largest power compromisable with at most ``max_vulnerabilities`` exploits.

    Args:
        exposure_by_vulnerability: voting power exposed to each vulnerability
            (power of all replicas whose configuration contains the vulnerable
            component).  Exposures are treated as disjoint upper bounds; for
            exact accounting over overlapping fault domains use
            :mod:`repro.faults.campaign`, which works at replica granularity.
        max_vulnerabilities: the attacker's exploit budget ``m``.

    Returns:
        ``(power, vulnerability_ids)`` — the total compromised power and the
        chosen vulnerabilities, greedily picking the largest exposures.
    """
    if max_vulnerabilities < 0:
        raise FaultModelError(
            f"max vulnerabilities must be non-negative, got {max_vulnerabilities}"
        )
    for vuln_id, power in exposure_by_vulnerability.items():
        if power < 0:
            raise FaultModelError(
                f"exposure for {vuln_id!r} must be non-negative, got {power}"
            )
    ranked = sorted(
        exposure_by_vulnerability.items(), key=lambda item: (-item[1], item[0])
    )
    chosen = ranked[:max_vulnerabilities]
    return sum(power for _, power in chosen), tuple(vuln_id for vuln_id, _ in chosen)


def entropy_lower_bounds_takeover(
    largest_share: float, tolerated_fraction: float
) -> bool:
    """Whether the single largest configuration share already threatens safety.

    A convenience predicate tying diversity to resilience: if the most popular
    configuration concentrates at least ``tolerated_fraction`` of voting
    power, then one vulnerability in that configuration violates safety.
    """
    if not 0.0 <= largest_share <= 1.0 + FRACTION_TOLERANCE:
        raise FaultModelError(f"largest share must be a fraction, got {largest_share}")
    if not 0.0 < tolerated_fraction <= 1.0:
        raise FaultModelError(
            f"tolerated fraction must be in (0, 1], got {tolerated_fraction}"
        )
    return largest_share >= tolerated_fraction - FRACTION_TOLERANCE
