"""Exception hierarchy shared by every ``repro`` subpackage.

All library errors derive from :class:`ReproError` so callers can catch a
single base class.  Each subpackage raises the most specific subclass that
describes the failure; none of them ever raises a bare ``Exception``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` library."""


class DistributionError(ReproError):
    """A probability or abundance distribution is malformed.

    Raised for negative weights, empty supports, or probability vectors that
    do not sum to one within tolerance.
    """


class ConfigurationError(ReproError):
    """A replica configuration or configuration space is malformed."""


class PopulationError(ReproError):
    """An operation on a :class:`~repro.core.population.ReplicaPopulation`
    is invalid (duplicate replica id, unknown replica, negative power, ...)."""


class OptimalityError(ReproError):
    """A κ-optimal or (κ, ω)-optimal construction received invalid
    parameters (for example κ larger than the configuration space)."""


class AttestationError(ReproError):
    """Remote attestation failed: unknown key, bad measurement, revoked
    device, or a quote that does not verify."""


class FaultModelError(ReproError):
    """The vulnerability catalog or an exploit campaign is misconfigured."""


class SimulationError(ReproError):
    """The discrete-event simulator was driven into an invalid state."""


class ProtocolError(ReproError):
    """A consensus protocol (BFT or Nakamoto) violated an internal
    invariant or received an impossible message."""


class MembershipError(ReproError):
    """A permissionless membership operation is invalid (unknown identity,
    negative stake, malformed committee parameters)."""


class PlanningError(ReproError):
    """The diversity planner could not produce a valid assignment."""


class AnalysisError(ReproError):
    """An analysis routine (Monte-Carlo estimator, sweep, report) received
    inconsistent inputs."""


class BackendError(ReproError):
    """A compute backend is unknown, unavailable in this environment, or was
    asked to perform an operation with invalid parameters."""


class ExperimentError(ReproError):
    """An experiment driver was configured with invalid parameters."""


class OrchestrationError(ReproError):
    """The experiment orchestrator was misconfigured: unknown experiment
    name or tag, malformed shard specification, or a corrupt result cache
    entry / results document."""


class ChaosError(ReproError):
    """A fault injected by the chaos harness (``repro.testing.chaos``).

    Raised for the ``corrupt`` injection kind at task sites so resilience
    tests can exercise the retry path with a recognizable, retryable
    exception — production code never raises this unless ``REPRO_CHAOS``
    is set.
    """


class TaskTimeoutError(ReproError):
    """A task exceeded its deadline on a resilient executor and exhausted
    every retry (the per-attempt timeout, not a transport timeout)."""


class ServeError(ReproError):
    """An HTTP result-service request cannot be served.

    Carries the HTTP status the handler should answer with (``404`` for an
    unknown experiment or route, ``400`` for malformed parameters, ``405``
    for an unsupported method), so route handlers can raise one exception
    type and let the app layer translate it into a JSON error response.
    ``headers`` carries extra response headers (e.g. ``Retry-After`` on the
    circuit breaker's ``503``).
    """

    def __init__(
        self,
        status: int,
        message: str,
        *,
        headers: tuple = (),
    ) -> None:
        super().__init__(message)
        self.status = int(status)
        self.headers = tuple(headers)
