"""Core contribution of the paper: configuration model, diversity metrics,
optimal fault independence and resilience analysis.

Modules:

- :mod:`repro.core.configuration` -- replica configurations and the
  configuration space ``D`` (Section III-A).
- :mod:`repro.core.power` -- the voting-power abstraction ``n_t``
  (Section II-A).
- :mod:`repro.core.population` -- replica populations with join/leave and
  configuration census.
- :mod:`repro.core.distribution` -- probability distributions ``p`` over the
  configuration space (Section IV-A).
- :mod:`repro.core.abundance` -- configuration abundance and relative
  configuration abundance (Section IV-B).
- :mod:`repro.core.entropy` -- Shannon entropy and its generalisations.
- :mod:`repro.core.diversity_index` -- ecology-style diversity indices.
- :mod:`repro.core.optimality` -- Definition 1 (κ-optimal fault independence)
  and Definition 2 ((κ, ω)-optimal resilience).
- :mod:`repro.core.propositions` -- Propositions 1-3 as executable checks.
- :mod:`repro.core.resilience` -- the Section II-C safety condition and
  resilience reports.
- :mod:`repro.core.exceptions` -- the library-wide exception hierarchy.
"""

from repro.core import exceptions
from repro.core.abundance import AbundanceVector
from repro.core.configuration import (
    ComponentKind,
    ConfigurationSpace,
    ReplicaConfiguration,
    SoftwareComponent,
)
from repro.core.distribution import ConfigurationDistribution
from repro.core.entropy import max_entropy, normalized_entropy, shannon_entropy
from repro.core.optimality import is_kappa_omega_optimal, is_kappa_optimal, kappa_of
from repro.core.population import Replica, ReplicaPopulation
from repro.core.power import PowerRegime
from repro.core.resilience import (
    ResilienceReport,
    SafetyCondition,
    tolerated_fault_fraction,
)

__all__ = [
    "AbundanceVector",
    "ComponentKind",
    "ConfigurationDistribution",
    "ConfigurationSpace",
    "PowerRegime",
    "Replica",
    "ReplicaConfiguration",
    "ReplicaPopulation",
    "ResilienceReport",
    "SafetyCondition",
    "SoftwareComponent",
    "exceptions",
    "is_kappa_omega_optimal",
    "is_kappa_optimal",
    "kappa_of",
    "max_entropy",
    "normalized_entropy",
    "shannon_entropy",
    "tolerated_fault_fraction",
]
