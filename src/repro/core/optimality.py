"""Definitions 1 and 2: κ-optimal fault independence and (κ, ω)-optimal resilience.

Definition 1 (κ-optimal fault independence): a configuration distribution
``p`` achieves κ-optimal fault independence iff exactly κ of its shares are
non-zero and all non-zero shares are equal (i.e. the distribution is uniform
over a support of size κ, which maximizes entropy for that support size).

Definition 2 ((κ, ω)-optimal resilience): a system is (κ, ω)-optimally
resilient if it is κ-optimally fault independent *and* has configuration
abundance ω (every populated configuration is run by exactly ω individuals).

The module provides predicates, constructors and gap measurements used by the
propositions, the diversity planner and the experiments.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Hashable, Optional, Sequence, Union

from repro.core.abundance import AbundanceVector
from repro.core.distribution import ConfigurationDistribution
from repro.core.entropy import max_entropy
from repro.core.exceptions import OptimalityError

ConfigKey = Hashable
DistributionLike = Union[ConfigurationDistribution, Sequence[float]]

#: Default relative tolerance when comparing probability shares.
DEFAULT_TOLERANCE = 1e-9


def _as_distribution(value: DistributionLike) -> ConfigurationDistribution:
    if isinstance(value, ConfigurationDistribution):
        return value
    return ConfigurationDistribution.from_probabilities(list(value))


def kappa_of(distribution: DistributionLike) -> int:
    """κ — the number of configurations with non-zero share."""
    return _as_distribution(distribution).support_size()


def is_kappa_optimal(
    distribution: DistributionLike,
    kappa: Optional[int] = None,
    *,
    tolerance: float = DEFAULT_TOLERANCE,
) -> bool:
    """Check Definition 1.

    Args:
        distribution: the configuration distribution (or raw probability
            vector) to test.
        kappa: the required support size; when omitted, the distribution's own
            support size is used (i.e. the check reduces to "are the non-zero
            shares uniform?").
        tolerance: absolute tolerance for share equality.

    Returns:
        True iff the distribution has exactly ``kappa`` non-zero shares and
        they are all equal within ``tolerance``.
    """
    dist = _as_distribution(distribution)
    support = dist.support_size()
    if kappa is not None:
        if kappa <= 0:
            raise OptimalityError(f"kappa must be positive, got {kappa}")
        if support != kappa:
            return False
    positive = [share for share in dist.probabilities() if share > 0]
    expected = 1.0 / len(positive)
    return all(abs(share - expected) <= tolerance for share in positive)


def kappa_optimal_distribution(
    kappa: int, *, prefix: str = "config"
) -> ConfigurationDistribution:
    """Construct the canonical κ-optimal distribution (uniform over κ labels)."""
    if kappa <= 0:
        raise OptimalityError(f"kappa must be positive, got {kappa}")
    return ConfigurationDistribution.uniform_labels(kappa, prefix=prefix)


def is_kappa_omega_optimal(
    abundance: AbundanceVector,
    kappa: Optional[int] = None,
    omega: Optional[float] = None,
    *,
    tolerance: float = DEFAULT_TOLERANCE,
) -> bool:
    """Check Definition 2: κ-optimal fault independence with abundance ω.

    Args:
        abundance: configuration abundance vector of the system.
        kappa: required number of populated configurations (defaults to the
            vector's own support size).
        omega: required per-configuration abundance (defaults to the observed
            mean abundance — i.e. only uniformity is required).
        tolerance: relative tolerance for abundance comparisons.
    """
    distribution = abundance.to_distribution()
    if not is_kappa_optimal(distribution, kappa, tolerance=tolerance):
        return False
    positive = [abundance.abundance_of(key) for key in abundance.support()]
    target = omega if omega is not None else (sum(positive) / len(positive))
    if target <= 0:
        raise OptimalityError(f"omega must be positive, got {target}")
    return all(abs(value - target) <= tolerance * max(1.0, target) for value in positive)


def kappa_omega_abundance(
    kappa: int, omega: float, *, prefix: str = "config"
) -> AbundanceVector:
    """Construct the canonical (κ, ω)-optimal abundance vector."""
    if kappa <= 0:
        raise OptimalityError(f"kappa must be positive, got {kappa}")
    if omega <= 0:
        raise OptimalityError(f"omega must be positive, got {omega}")
    return AbundanceVector.uniform(
        [f"{prefix}-{index}" for index in range(kappa)], abundance=omega
    )


@dataclass(frozen=True)
class OptimalityGap:
    """How far a distribution is from κ-optimal fault independence.

    Attributes:
        kappa: the distribution's support size.
        entropy: its Shannon entropy (bits).
        optimal_entropy: the entropy of the κ-optimal distribution on the
            same support (``log2 κ``).
        deficit: ``optimal_entropy - entropy`` (zero iff κ-optimal).
        evenness: ``entropy / optimal_entropy`` in [0, 1] (1 iff κ-optimal,
            defined as 0 for a single-configuration support).
    """

    kappa: int
    entropy: float
    optimal_entropy: float
    deficit: float
    evenness: float

    @property
    def is_optimal(self) -> bool:
        """True when the deficit is numerically zero."""
        return math.isclose(self.deficit, 0.0, abs_tol=1e-9)


def optimality_gap(distribution: DistributionLike, *, base: float = 2.0) -> OptimalityGap:
    """Measure the gap between a distribution and κ-optimality (Definition 1)."""
    dist = _as_distribution(distribution)
    kappa = dist.support_size()
    entropy = dist.entropy(base=base)
    optimal = max_entropy(kappa, base=base)
    deficit = optimal - entropy
    evenness = (entropy / optimal) if optimal > 0 else 0.0
    return OptimalityGap(
        kappa=kappa,
        entropy=entropy,
        optimal_entropy=optimal,
        deficit=max(0.0, deficit),
        evenness=evenness,
    )


def minimum_kappa_for_entropy(target_entropy: float, *, base: float = 2.0) -> int:
    """Smallest κ whose κ-optimal distribution reaches ``target_entropy``.

    Useful for sizing questions like "how many equally-weighted configurations
    would Bitcoin need to match an n-replica BFT deployment?": the answer is
    ``ceil(base ** target_entropy)``.
    """
    if target_entropy < 0:
        raise OptimalityError(f"target entropy must be non-negative, got {target_entropy}")
    if target_entropy == 0:
        return 1
    kappa = math.ceil(base**target_entropy - 1e-12)
    return max(1, kappa)
