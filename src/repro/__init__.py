"""Reproduction of *Fault Independence in Blockchain* (DSN 2023, Disrupt Track).

The package is organized around the paper's contribution (entropy-based
quantification of replica diversity and fault independence) plus every
substrate the paper's argument relies on:

- :mod:`repro.core` -- configuration model, entropy / diversity metrics,
  κ-optimal fault independence, (κ, ω)-optimal resilience, the three
  propositions and the Section II-C safety condition.
- :mod:`repro.attestation` -- simulated remote attestation (TPM / TEE) used
  for configuration discovery, vote-key binding and configuration privacy.
- :mod:`repro.faults` -- vulnerabilities, vulnerability windows, exploit
  campaigns and adversary strategies.
- :mod:`repro.sim` -- a deterministic discrete-event simulator.
- :mod:`repro.bft` -- PBFT-style, HotStuff-style and hybrid (trusted
  component) consensus protocols running on the simulator.
- :mod:`repro.nakamoto` -- proof-of-work mining, mining pools and
  longest-chain consensus.
- :mod:`repro.permissionless` -- open membership, churn, stake delegation and
  committee selection.
- :mod:`repro.diversity` -- diversity managers and planners (Lazarus-style
  baseline and a decentralized attestation-weighted policy).
- :mod:`repro.datasets` -- the Bitcoin mining-pool snapshot used by the
  paper's Example 1 / Figure 1 plus synthetic ecosystem generators.
- :mod:`repro.analysis` -- Monte-Carlo safety analysis, sweeps and reports.
- :mod:`repro.backend` -- pluggable compute backends (vectorized NumPy and a
  pure-Python fallback) behind ``get_backend`` / ``REPRO_BACKEND``.
- :mod:`repro.experiments` -- one module per figure / example / proposition.
"""

from repro.backend import available_backends, get_backend, set_default_backend
from repro.core.abundance import AbundanceVector
from repro.core.configuration import (
    ComponentKind,
    ConfigurationSpace,
    ReplicaConfiguration,
    SoftwareComponent,
)
from repro.core.distribution import ConfigurationDistribution
from repro.core.entropy import (
    max_entropy,
    normalized_entropy,
    shannon_entropy,
)
from repro.core.optimality import (
    is_kappa_omega_optimal,
    is_kappa_optimal,
    kappa_of,
)
from repro.core.population import Replica, ReplicaPopulation
from repro.core.power import PowerRegime
from repro.core.resilience import (
    ResilienceReport,
    SafetyCondition,
    tolerated_fault_fraction,
)

__version__ = "1.0.0"

__all__ = [
    "AbundanceVector",
    "ComponentKind",
    "ConfigurationDistribution",
    "ConfigurationSpace",
    "PowerRegime",
    "Replica",
    "ReplicaConfiguration",
    "ReplicaPopulation",
    "ResilienceReport",
    "SafetyCondition",
    "SoftwareComponent",
    "__version__",
    "available_backends",
    "get_backend",
    "is_kappa_omega_optimal",
    "is_kappa_optimal",
    "kappa_of",
    "max_entropy",
    "normalized_entropy",
    "set_default_backend",
    "shannon_entropy",
    "tolerated_fault_fraction",
]
