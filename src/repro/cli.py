"""Command-line interface for the reproduction.

Five subcommands cover the common workflows without writing Python:

- ``list``     — show the available experiments (one per paper artifact);
- ``run``      — run one, several or all experiments and print their tables;
- ``entropy``  — quick diversity analysis of a voting-power distribution given
  as ``name=power`` pairs (e.g. mining-pool shares), reporting the Shannon
  entropy, the full diversity profile and which protocol tolerances a single
  shared fault in the largest configuration would break;
- ``backends`` — show the registered compute backends and which one is active;
- ``bench``    — time the Monte-Carlo estimator on every available backend and
  optionally write a JSON perf snapshot (the CI ``BENCH_1.json`` artifact).

Every subcommand honors the global ``--backend`` flag (and the
``REPRO_BACKEND`` environment variable) to select the compute backend.

Examples::

    python -m repro.cli list
    python -m repro.cli run figure1 example1
    python -m repro.cli --backend python run --all
    python -m repro.cli entropy foundry=34.2 antpool=20.0 f2pool=13.0 rest=32.8
    python -m repro.cli backends
    python -m repro.cli bench --trials 10000 --configs 1000 --output BENCH_1.json
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.analysis.benchmark import benchmark_backends, write_snapshot
from repro.analysis.report import Table
from repro.backend import (
    AUTO,
    available_backends,
    get_backend,
    registered_backends,
    set_default_backend,
)
from repro.core.distribution import ConfigurationDistribution
from repro.core.exceptions import ReproError
from repro.core.resilience import ProtocolFamily, tolerated_fault_fraction
from repro.experiments import runner as experiment_runner


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Fault Independence in Blockchain' (DSN 2023).",
    )
    parser.add_argument(
        "--backend",
        choices=(AUTO, *registered_backends()),
        default=None,
        help="compute backend for the numeric hot paths "
        "(default: REPRO_BACKEND env var, then auto-detect)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list the available experiments")

    run_parser = subparsers.add_parser("run", help="run experiments and print their tables")
    run_parser.add_argument(
        "experiments",
        nargs="*",
        metavar="EXPERIMENT",
        help="experiment names (see 'list'); default: all of them",
    )
    run_parser.add_argument(
        "--all", action="store_true", help="run every experiment (same as no names)"
    )

    entropy_parser = subparsers.add_parser(
        "entropy", help="diversity analysis of a name=power distribution"
    )
    entropy_parser.add_argument(
        "shares",
        nargs="+",
        metavar="NAME=POWER",
        help="voting-power entries, e.g. foundry=34.2 antpool=20.0",
    )

    subparsers.add_parser(
        "backends", help="show registered compute backends and the active one"
    )

    bench_parser = subparsers.add_parser(
        "bench",
        help="time the Monte-Carlo estimator on every available backend",
    )
    bench_parser.add_argument("--trials", type=int, default=10_000)
    bench_parser.add_argument("--configs", type=int, default=1_000)
    bench_parser.add_argument("--budget", type=int, default=1, help="exploit budget")
    bench_parser.add_argument(
        "--vulnerability", type=float, default=0.25, help="per-config vulnerability probability"
    )
    bench_parser.add_argument("--seed", type=int, default=42)
    bench_parser.add_argument(
        "--repeats", type=int, default=3, help="timed repeats per backend (best counts)"
    )
    bench_parser.add_argument(
        "--output",
        metavar="PATH",
        default=None,
        help="write the JSON perf snapshot here (e.g. BENCH_1.json)",
    )
    return parser


def _known_experiment_names() -> List[str]:
    return [name for name, _ in experiment_runner.ALL_EXPERIMENTS]


def _command_list() -> int:
    print("available experiments:")
    for name in _known_experiment_names():
        print(f"  {name}")
    return 0


def _command_run(names: Sequence[str], run_all: bool) -> int:
    known = set(_known_experiment_names())
    selected = [] if run_all else list(names)
    unknown = [name for name in selected if name not in known]
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)}", file=sys.stderr)
        print(f"known experiments: {', '.join(sorted(known))}", file=sys.stderr)
        return 2
    experiment_runner.run_all(selected)
    return 0


def _parse_shares(entries: Sequence[str]) -> ConfigurationDistribution:
    weights = {}
    for entry in entries:
        name, separator, raw_value = entry.partition("=")
        if not separator or not name:
            raise ReproError(f"expected NAME=POWER, got {entry!r}")
        try:
            value = float(raw_value)
        except ValueError as error:
            raise ReproError(f"power in {entry!r} is not a number") from error
        weights[name] = value
    return ConfigurationDistribution(weights)


def _command_entropy(entries: Sequence[str]) -> int:
    distribution = _parse_shares(entries)
    profile = distribution.diversity_profile()
    table = Table(headers=("metric", "value"))
    table.add_row("configurations", len(distribution))
    table.add_row("kappa (non-zero shares)", distribution.support_size())
    table.add_row("shannon entropy (bits)", profile["shannon_entropy"])
    table.add_row("normalized entropy", profile["normalized_entropy"])
    table.add_row("effective configurations (Hill q=1)", profile["hill_1"])
    table.add_row("largest share (Berger-Parker)", profile["berger_parker"])
    table.add_row("HHI", profile["hhi"])
    print(table.render())
    print()
    largest = profile["berger_parker"]
    for family in (ProtocolFamily.BFT, ProtocolFamily.NAKAMOTO):
        tolerance = tolerated_fault_fraction(family)
        verdict = "VIOLATES" if largest >= tolerance else "respects"
        print(
            f"a single fault in the largest configuration {verdict} the "
            f"{family.value} tolerance ({tolerance:.0%})"
        )
    return 0


def _command_backends() -> int:
    active = get_backend()
    available = set(available_backends())
    table = Table(headers=("backend", "available", "active"))
    for name in registered_backends():
        table.add_row(name, name in available, name == active.name)
    print(table.render())
    return 0


def _command_bench(arguments: argparse.Namespace) -> int:
    report = benchmark_backends(
        trials=arguments.trials,
        configs=arguments.configs,
        exploit_budget=arguments.budget,
        vulnerability_probability=arguments.vulnerability,
        seed=arguments.seed,
        repeats=arguments.repeats,
    )
    print(
        f"Monte-Carlo estimator bench: {report.trials} trials x "
        f"{report.configs} configs (budget={report.exploit_budget}, "
        f"p_vuln={report.vulnerability_probability}, seed={report.seed})"
    )
    table = Table(headers=("backend", "seconds", "trials/sec", "P[violation]", "vs python"))
    for timing in report.timings:
        speedup = report.speedup_over_python(timing.backend)
        table.add_row(
            timing.backend,
            timing.seconds,
            timing.trials_per_second,
            timing.violation_probability,
            "-" if speedup is None else f"{speedup:.1f}x",
        )
    print(table.render())
    if arguments.output:
        write_snapshot(report, arguments.output)
        print(f"snapshot written to {arguments.output}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = _build_parser()
    arguments = parser.parse_args(argv)
    previous_backend = None
    backend_overridden = False
    try:
        if arguments.backend is not None:
            previous_backend = set_default_backend(arguments.backend)
            backend_overridden = True
        if arguments.command == "list":
            return _command_list()
        if arguments.command == "run":
            return _command_run(arguments.experiments, arguments.all)
        if arguments.command == "entropy":
            return _command_entropy(arguments.shares)
        if arguments.command == "backends":
            return _command_backends()
        if arguments.command == "bench":
            return _command_bench(arguments)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    finally:
        if backend_overridden:
            set_default_backend(previous_backend)
    parser.error(f"unknown command {arguments.command!r}")  # pragma: no cover
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover - manual entry point
    sys.exit(main())
