"""Command-line interface for the reproduction.

Twelve subcommands cover the common workflows without writing Python:

- ``list``     — show the available experiments (one per paper artifact);
- ``run``      — run experiments through the orchestrator: name/tag
  filtering, ``--shard i/n`` splitting for CI fan-out, process-parallel
  execution, a content-addressed result cache, a ``RESULTS.json`` artifact
  and golden-snapshot regeneration;
- ``serve``    — host the asyncio HTTP result service: experiment results as
  canonical JSON straight from the content-addressed cache, computed on miss
  on a bounded process pool; reads (``/experiments``, ``/experiments/{id}``),
  writes (``POST /jobs``, ``/jobs/{id}``, bulk ``/results`` with NDJSON
  streaming), cache admin (``/cache/stats|prune|invalidate|warm``), plus
  ``/healthz`` and ``/metrics``;
- ``bench-serve`` — load-test the result service and write the
  throughput snapshot (``BENCH_4.json``; ``--write-ratio`` adds the mixed
  read/write phase recorded as ``BENCH_7.json`` in CI);
- ``cache``    — inspect, shrink or prime the result cache (``--stats``,
  ``--prune`` stale fingerprints and leaked temp files, ``--clear``,
  ``--warm`` to batch-compute registry experiments into the cache);
- ``entropy``  — quick diversity analysis of a voting-power distribution given
  as ``name=power`` pairs (e.g. mining-pool shares), reporting the Shannon
  entropy, the full diversity profile and which protocol tolerances a single
  shared fault in the largest configuration would break;
- ``backends`` — show the registered compute backends, which one is active,
  and — for any backend that cannot run here — the captured import/probe
  error explaining why;
- ``bench``    — time the Monte-Carlo estimator on every available backend and
  optionally write a JSON perf snapshot (the CI ``BENCH_1.json`` artifact);
- ``bench-campaign`` — time the batched campaign engine (scalar python loop
  vs vectorized batch) on every available backend and optionally write the
  ``BENCH_5.json`` snapshot; the backends must produce identical campaign
  results, so this doubles as a cross-backend identity check;
- ``bench-grid`` — time the fused grid campaign engine (one kernel call for
  a whole budgets × reliabilities sweep) against the looped per-point path
  and the scalar python loop, asserting fused/looped bit-identity, and
  optionally write the ``BENCH_8.json`` snapshot;
- ``bench-population`` — time the streaming sparse population plane across
  replica scales with a dense bit-identity check and an optional peak-RSS
  ceiling (the CI ``BENCH_9.json`` artifact);
- ``bench-backends`` — race python vs numpy vs the multiprocess ``shm``
  backend across worker counts on the campaign workload (all identical by
  contract), then run the column-pruned sparse campaign at sweep scale
  with pruned == unpruned asserted exactly; optionally gate a minimum
  shm-over-numpy speedup and a peak-RSS ceiling and write the
  ``BENCH_10.json`` snapshot.

Every subcommand honors the global ``--backend`` flag (and the
``REPRO_BACKEND`` environment variable) to select the compute backend.

Examples::

    python -m repro.cli list
    python -m repro.cli run figure1 example1
    python -m repro.cli --backend python run --all
    python -m repro.cli run --tag monte-carlo --parallel
    python -m repro.cli run --shard 1/2 --results RESULTS.json
    python -m repro.cli run --all --update-golden
    python -m repro.cli serve --port 8000 --jobs 4
    python -m repro.cli bench-serve --requests 500 --output BENCH_4.json
    python -m repro.cli bench-serve --write-ratio 0.25 --output BENCH_7.json
    python -m repro.cli cache --stats
    python -m repro.cli cache --warm --tag monte-carlo --jobs 4
    python -m repro.cli entropy foundry=34.2 antpool=20.0 f2pool=13.0 rest=32.8
    python -m repro.cli backends
    python -m repro.cli bench --trials 10000 --configs 1000 --output BENCH_1.json
    python -m repro.cli bench-campaign --trials 10000 --output BENCH_5.json
    python -m repro.cli bench-grid --trials 10000 --output BENCH_8.json
    python -m repro.cli bench-backends --workers 1 2 4 8 --output BENCH_10.json
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import shutil
import sys
import tempfile
from typing import Mapping, Optional, Sequence

from repro.analysis.benchmark import benchmark_backends, write_snapshot
from repro.analysis.campaign_benchmark import (
    benchmark_campaigns,
    write_campaign_snapshot,
)
from repro.analysis.population_benchmark import (
    DEFAULT_DENSE_LIMIT,
    DEFAULT_POPULATION_SIZES,
    benchmark_population,
    write_population_snapshot,
)
from repro.analysis.grid_benchmark import (
    benchmark_grid,
    write_grid_snapshot,
)
from repro.analysis.backends_benchmark import (
    DEFAULT_SPARSE_SIZE,
    DEFAULT_WORKER_COUNTS,
    benchmark_backend_suite,
    write_backends_snapshot,
)
from repro.faults.scenarios import ECOSYSTEM_GENERATORS
from repro.analysis.report import Table
from repro.backend import (
    AUTO,
    availability_errors,
    available_backends,
    get_backend,
    registered_backends,
    set_default_backend,
)
from repro.core.distribution import ConfigurationDistribution
from repro.core.exceptions import OrchestrationError, ReproError
from repro.core.resilience import ProtocolFamily, tolerated_fault_fraction
from repro.experiments.orchestrator import (
    DEFAULT_RETRIES,
    ExperimentResult,
    ResultCache,
    execute_spec,
    experiment_banner,
    filter_specs,
    invalidate_code_fingerprint,
    parse_shard,
    results_document,
    run_experiments,
    select_shard,
    write_results_document,
)
from repro.serve import (
    DEFAULT_FAILURE_THRESHOLD,
    DEFAULT_RESET_TIMEOUT,
    ResultServer,
    default_jobs,
    run_serve_bench,
    write_serve_snapshot,
)
from repro.experiments.orchestrator import registry
from repro.experiments.orchestrator.spec import ExperimentSpec

#: Default directory for the golden-snapshot regression files.
DEFAULT_GOLDEN_DIR = os.path.join("tests", "golden")


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Fault Independence in Blockchain' (DSN 2023).",
    )
    parser.add_argument(
        "--backend",
        choices=(AUTO, *registered_backends()),
        default=None,
        help="compute backend for the numeric hot paths "
        "(default: REPRO_BACKEND env var, then auto-detect)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list the available experiments")

    run_parser = subparsers.add_parser(
        "run",
        help="run experiments through the orchestrator "
        "(filtering, sharding, caching, RESULTS.json)",
    )
    run_parser.add_argument(
        "experiments",
        nargs="*",
        metavar="EXPERIMENT",
        help="experiment names (see 'list'); default: all of them",
    )
    run_parser.add_argument(
        "--all", action="store_true", help="run every experiment (same as no names)"
    )
    run_parser.add_argument(
        "--tag",
        action="append",
        default=None,
        metavar="TAG",
        help="only experiments carrying this tag (repeatable; OR semantics)",
    )
    run_parser.add_argument(
        "--shard",
        default=None,
        metavar="I/N",
        help="run the I-th of N round-robin shards of the selection "
        "(1-based; shards union back to the full selection)",
    )
    run_parser.add_argument(
        "--parallel",
        action="store_true",
        help="fan the experiments out over a process pool "
        "(results identical to a serial run)",
    )
    run_parser.add_argument(
        "--jobs",
        type=_positive_int,
        default=None,
        metavar="N",
        help="process-pool size (implies --parallel)",
    )
    run_parser.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-attempt deadline for parallel tasks; a hung worker is "
        "terminated and the task retried (default: no deadline)",
    )
    run_parser.add_argument(
        "--retries",
        type=int,
        default=DEFAULT_RETRIES,
        metavar="N",
        help="re-dispatches allowed per parallel task after a worker crash, "
        f"timeout or injected fault (default: {DEFAULT_RETRIES}; results "
        "are bit-identical regardless of retries)",
    )
    run_parser.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the result cache entirely (no reads, no writes)",
    )
    run_parser.add_argument(
        "--force",
        action="store_true",
        help="recompute even on a cache hit (the fresh result is re-cached)",
    )
    run_parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="PATH",
        help="result cache directory (default: $REPRO_CACHE_DIR or .repro-cache)",
    )
    run_parser.add_argument(
        "--results",
        default=None,
        metavar="PATH",
        help="write the structured RESULTS.json artifact here",
    )
    run_parser.add_argument(
        "--merge",
        action="store_true",
        help="merge into an existing --results file instead of replacing it "
        "(how sharded CI runs assemble one artifact)",
    )
    run_parser.add_argument(
        "--quiet", action="store_true", help="suppress the text reports"
    )
    run_parser.add_argument(
        "--update-golden",
        action="store_true",
        help="regenerate the golden-snapshot files for the selected experiments "
        "(per backend where the numbers are backend-sensitive)",
    )
    run_parser.add_argument(
        "--golden-dir",
        default=DEFAULT_GOLDEN_DIR,
        metavar="PATH",
        help=f"golden snapshot directory (default: {DEFAULT_GOLDEN_DIR})",
    )

    serve_parser = subparsers.add_parser(
        "serve",
        help="host the HTTP result service over the content-addressed cache",
    )
    serve_parser.add_argument(
        "--host", default="127.0.0.1", help="interface to bind (default: 127.0.0.1)"
    )
    serve_parser.add_argument(
        "--port", type=int, default=8000, help="TCP port (default: 8000; 0 = ephemeral)"
    )
    serve_parser.add_argument(
        "--jobs",
        type=_positive_int,
        default=None,
        metavar="N",
        help="process-pool size for miss computations "
        f"(default: min(4, cpu count) = {default_jobs()})",
    )
    serve_parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="PATH",
        help="result cache directory (default: $REPRO_CACHE_DIR or .repro-cache)",
    )
    serve_parser.add_argument(
        "--refresh-interval",
        type=float,
        default=5.0,
        metavar="SECONDS",
        help="re-hash the source tree this often so the server picks up "
        "edits (0 disables; default: 5)",
    )
    serve_parser.add_argument(
        "--build-deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-request build deadline; exceeding it answers 504 and the "
        "hung worker is terminated (default: no deadline)",
    )
    serve_parser.add_argument(
        "--build-retries",
        type=int,
        default=0,
        metavar="N",
        help="re-dispatches per build after a worker crash or injected "
        "fault (default: 0 — fail fast and let the breaker count it)",
    )
    serve_parser.add_argument(
        "--breaker-threshold",
        type=_positive_int,
        default=DEFAULT_FAILURE_THRESHOLD,
        metavar="N",
        help="consecutive build failures that open the circuit breaker "
        f"(503 + Retry-After; default: {DEFAULT_FAILURE_THRESHOLD})",
    )
    serve_parser.add_argument(
        "--breaker-reset",
        type=float,
        default=DEFAULT_RESET_TIMEOUT,
        metavar="SECONDS",
        help="seconds an open breaker waits before probing one build "
        f"(default: {DEFAULT_RESET_TIMEOUT})",
    )

    bench_serve_parser = subparsers.add_parser(
        "bench-serve",
        help="load-test the result service and snapshot throughput (BENCH_4.json)",
    )
    bench_serve_parser.add_argument(
        "experiments",
        nargs="*",
        metavar="EXPERIMENT",
        help="experiments to request (default: figure1 example1)",
    )
    bench_serve_parser.add_argument(
        "--requests",
        type=_positive_int,
        default=200,
        help="requests per timed phase (default: 200)",
    )
    bench_serve_parser.add_argument(
        "--concurrency",
        type=_positive_int,
        default=8,
        help="concurrent keep-alive connections (default: 8)",
    )
    bench_serve_parser.add_argument(
        "--jobs",
        type=_positive_int,
        default=None,
        metavar="N",
        help="server process-pool size (default: min(4, cpu count))",
    )
    bench_serve_parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="PATH",
        help="serve from this cache directory instead of a fresh temporary "
        "one (a warm directory skews the cold phase)",
    )
    bench_serve_parser.add_argument(
        "--write-ratio",
        type=float,
        default=0.0,
        metavar="RATIO",
        help="add a mixed phase where this fraction of requests are "
        "synchronous POST /jobs submissions (default: 0 — reads only)",
    )
    bench_serve_parser.add_argument(
        "--output",
        metavar="PATH",
        default=None,
        help="write the JSON throughput snapshot here (e.g. BENCH_4.json)",
    )

    cache_parser = subparsers.add_parser(
        "cache",
        help="inspect, shrink or prime the content-addressed result cache",
    )
    cache_parser.add_argument(
        "experiments",
        nargs="*",
        metavar="EXPERIMENT",
        help="with --warm: restrict priming to these experiments "
        "(default: the whole registry)",
    )
    cache_action = cache_parser.add_mutually_exclusive_group()
    cache_action.add_argument(
        "--stats",
        action="store_true",
        help="report live/stale entry counts and sizes (the default action)",
    )
    cache_action.add_argument(
        "--prune",
        action="store_true",
        help="delete entries orphaned by source edits plus leaked temp files",
    )
    cache_action.add_argument(
        "--clear", action="store_true", help="delete every cache entry"
    )
    cache_action.add_argument(
        "--warm",
        action="store_true",
        help="walk the registry and compute every missing result into the "
        "cache, so a server starting on this directory serves hits only",
    )
    cache_parser.add_argument(
        "--tag",
        action="append",
        default=None,
        metavar="TAG",
        help="with --warm: only experiments carrying this tag "
        "(repeatable; OR semantics)",
    )
    cache_parser.add_argument(
        "--jobs",
        type=_positive_int,
        default=None,
        metavar="N",
        help="with --warm: compute misses on a process pool of this size",
    )
    cache_parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="PATH",
        help="result cache directory (default: $REPRO_CACHE_DIR or .repro-cache)",
    )

    entropy_parser = subparsers.add_parser(
        "entropy", help="diversity analysis of a name=power distribution"
    )
    entropy_parser.add_argument(
        "shares",
        nargs="+",
        metavar="NAME=POWER",
        help="voting-power entries, e.g. foundry=34.2 antpool=20.0",
    )

    subparsers.add_parser(
        "backends", help="show registered compute backends and the active one"
    )

    bench_parser = subparsers.add_parser(
        "bench",
        help="time the Monte-Carlo estimator on every available backend",
    )
    bench_parser.add_argument("--trials", type=int, default=10_000)
    bench_parser.add_argument("--configs", type=int, default=1_000)
    bench_parser.add_argument("--budget", type=int, default=1, help="exploit budget")
    bench_parser.add_argument(
        "--vulnerability", type=float, default=0.25, help="per-config vulnerability probability"
    )
    bench_parser.add_argument("--seed", type=int, default=42)
    bench_parser.add_argument(
        "--repeats", type=int, default=3, help="timed repeats per backend (best counts)"
    )
    bench_parser.add_argument(
        "--output",
        metavar="PATH",
        default=None,
        help="write the JSON perf snapshot here (e.g. BENCH_1.json)",
    )

    bench_campaign_parser = subparsers.add_parser(
        "bench-campaign",
        help="time the batched campaign engine on every available backend",
    )
    bench_campaign_parser.add_argument("--trials", type=int, default=10_000)
    bench_campaign_parser.add_argument(
        "--replicas", type=int, default=150, help="population size"
    )
    bench_campaign_parser.add_argument(
        "--ecosystem",
        choices=sorted(ECOSYSTEM_GENERATORS),
        default="default",
        help="ecosystem the benchmark population samples from",
    )
    bench_campaign_parser.add_argument(
        "--exploit-probability",
        type=float,
        default=0.6,
        help="per-replica exploit success probability",
    )
    bench_campaign_parser.add_argument(
        "--budget", type=int, default=4, help="adversary exploit budget"
    )
    bench_campaign_parser.add_argument("--seed", type=int, default=42)
    bench_campaign_parser.add_argument(
        "--repeats", type=int, default=2, help="timed repeats per backend (best counts)"
    )
    bench_campaign_parser.add_argument(
        "--output",
        metavar="PATH",
        default=None,
        help="write the JSON perf snapshot here (e.g. BENCH_5.json)",
    )

    bench_grid_parser = subparsers.add_parser(
        "bench-grid",
        help="time the fused grid campaign engine against the looped and "
        "scalar paths",
    )
    bench_grid_parser.add_argument("--trials", type=int, default=10_000)
    bench_grid_parser.add_argument(
        "--replicas", type=int, default=150, help="population size"
    )
    bench_grid_parser.add_argument(
        "--ecosystem",
        choices=sorted(ECOSYSTEM_GENERATORS),
        default="default",
        help="ecosystem the benchmark population samples from",
    )
    bench_grid_parser.add_argument(
        "--budgets",
        type=int,
        nargs="+",
        default=[1, 2, 3, 4, 5, 6, 7, 8],
        metavar="M",
        help="adversary budgets forming one grid axis",
    )
    bench_grid_parser.add_argument(
        "--probabilities",
        type=float,
        nargs="+",
        default=[0.45, 0.6, 0.75],
        metavar="P",
        help="exploit success probabilities forming the other grid axis",
    )
    bench_grid_parser.add_argument("--seed", type=int, default=42)
    bench_grid_parser.add_argument(
        "--repeats", type=int, default=2, help="timed repeats per mode (best counts)"
    )
    bench_grid_parser.add_argument(
        "--scalar-trials",
        type=int,
        default=400,
        help="trial count for the scalar python modes (the full workload "
        "takes minutes scalar; speedups compare point-trial throughput)",
    )
    bench_grid_parser.add_argument(
        "--output",
        metavar="PATH",
        default=None,
        help="write the JSON perf snapshot here (e.g. BENCH_8.json)",
    )

    bench_population_parser = subparsers.add_parser(
        "bench-population",
        help="time the streaming sparse population plane across replica "
        "scales, with a dense bit-identity check at overlapping sizes",
    )
    bench_population_parser.add_argument(
        "--sizes",
        type=int,
        nargs="+",
        default=list(DEFAULT_POPULATION_SIZES),
        metavar="N",
        help="population sizes to sweep (default: 10^4 10^5 10^6)",
    )
    bench_population_parser.add_argument("--trials", type=int, default=32)
    bench_population_parser.add_argument(
        "--ecosystem",
        choices=sorted(ECOSYSTEM_GENERATORS),
        default="default",
        help="ecosystem the benchmark population streams from",
    )
    bench_population_parser.add_argument(
        "--exploit-probability", type=float, default=0.45
    )
    bench_population_parser.add_argument("--seed", type=int, default=29)
    bench_population_parser.add_argument(
        "--repeats", type=int, default=1, help="timed repeats per stage (best counts)"
    )
    bench_population_parser.add_argument(
        "--dense-limit",
        type=int,
        default=DEFAULT_DENSE_LIMIT,
        metavar="N",
        help="largest size to also materialize densely and compare "
        "bit-for-bit (0 skips the dense path entirely — required for a "
        "meaningful memory-ceiling gate, since peak RSS never shrinks)",
    )
    bench_population_parser.add_argument(
        "--memory-ceiling-mb",
        type=int,
        default=None,
        metavar="MB",
        help="fail (exit 1) if peak RSS exceeds this ceiling",
    )
    bench_population_parser.add_argument(
        "--output",
        metavar="PATH",
        default=None,
        help="write the JSON perf snapshot here (e.g. BENCH_9.json)",
    )

    bench_backends_parser = subparsers.add_parser(
        "bench-backends",
        help="race python/numpy/shm on the campaign workload across worker "
        "counts, plus the column-pruned sparse campaign at sweep scale",
    )
    bench_backends_parser.add_argument("--trials", type=int, default=10_000)
    bench_backends_parser.add_argument(
        "--python-trials",
        type=int,
        default=1_000,
        metavar="N",
        help="trial count for the scalar python backend (0 skips it; "
        "throughput comparisons use trials/sec, not wall time)",
    )
    bench_backends_parser.add_argument("--replicas", type=int, default=150)
    bench_backends_parser.add_argument(
        "--ecosystem",
        choices=sorted(ECOSYSTEM_GENERATORS),
        default="default",
    )
    bench_backends_parser.add_argument(
        "--exploit-probability", type=float, default=0.6
    )
    bench_backends_parser.add_argument("--budget", type=int, default=4)
    bench_backends_parser.add_argument("--seed", type=int, default=42)
    bench_backends_parser.add_argument(
        "--repeats", type=int, default=2, help="timed repeats (best counts)"
    )
    bench_backends_parser.add_argument(
        "--workers",
        type=int,
        nargs="+",
        default=list(DEFAULT_WORKER_COUNTS),
        metavar="N",
        help="REPRO_SHM_WORKERS values swept for the shm backend "
        "(default: 1 2 4 8)",
    )
    bench_backends_parser.add_argument(
        "--sparse-size",
        type=int,
        default=DEFAULT_SPARSE_SIZE,
        metavar="N",
        help="replica count of the column-pruned sparse campaign "
        "(default: 10^7; 0 skips the sparse phase)",
    )
    bench_backends_parser.add_argument("--sparse-trials", type=int, default=8)
    bench_backends_parser.add_argument(
        "--sparse-workers",
        type=int,
        default=4,
        help="REPRO_SHM_WORKERS for the sparse phase",
    )
    bench_backends_parser.add_argument(
        "--skip-unpruned",
        action="store_true",
        help="skip the unpruned sparse control run (and its exact "
        "pruned == unpruned assertion)",
    )
    bench_backends_parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        metavar="X",
        help="fail (exit 1) unless shm over numpy reaches this throughput "
        "ratio at --min-speedup-workers (the CI ≥2× gate)",
    )
    bench_backends_parser.add_argument(
        "--min-speedup-workers",
        type=int,
        default=4,
        metavar="N",
        help="worker count the --min-speedup gate reads (default: 4)",
    )
    bench_backends_parser.add_argument(
        "--memory-ceiling-mb",
        type=int,
        default=None,
        metavar="MB",
        help="fail (exit 1) if the sparse phase's peak RSS exceeds this",
    )
    bench_backends_parser.add_argument(
        "--output",
        metavar="PATH",
        default=None,
        help="write the JSON perf snapshot here (e.g. BENCH_10.json)",
    )
    return parser


def _command_list() -> int:
    print("available experiments:")
    for name in registry.experiment_ids():
        print(f"  {name}")
    return 0


def _golden_path(directory: str, spec: ExperimentSpec, backend: Optional[str]) -> str:
    """Golden file path: per-backend for backend-sensitive experiments."""
    if spec.backend_sensitive:
        return os.path.join(directory, f"{spec.experiment_id}.{backend}.json")
    return os.path.join(directory, f"{spec.experiment_id}.json")


def _update_golden(
    specs: Sequence[ExperimentSpec],
    directory: str,
    results_by_id: Mapping[str, ExperimentResult],
    ambient_backend: str,
) -> None:
    """Regenerate the golden snapshots for ``specs`` under ``directory``.

    ``results_by_id`` holds the run's already-computed results so the
    ambient backend's numbers are not recomputed; only the *other* backends'
    variants of backend-sensitive experiments run fresh.
    """
    unavailable = set(registered_backends()) - set(available_backends()) - {AUTO}
    if unavailable and any(spec.backend_sensitive for spec in specs):
        print(
            "warning: backend(s) not available here: "
            f"{', '.join(sorted(unavailable))} — their golden snapshots are "
            "NOT regenerated and may now be stale",
            file=sys.stderr,
        )
    os.makedirs(directory, exist_ok=True)
    for spec in specs:
        backends = available_backends() if spec.backend_sensitive else (None,)
        for backend in backends:
            if backend is None or backend == ambient_backend:
                result = results_by_id[spec.experiment_id]
            else:
                result = execute_spec(spec, backend=backend)
            path = _golden_path(directory, spec, backend)
            with open(path, "w", encoding="utf-8") as handle:
                json.dump(
                    result.canonical_dict(),
                    handle,
                    indent=2,
                    sort_keys=True,
                    allow_nan=False,
                )
                handle.write("\n")
            print(f"golden snapshot written: {path}")


def _command_run(arguments: argparse.Namespace) -> int:
    names = [] if arguments.all else list(arguments.experiments)
    if arguments.merge and not arguments.results:
        # --merge only modifies how --results is written; accepting it alone
        # would silently drop the artifact the caller asked to assemble.
        print("error: --merge requires --results PATH", file=sys.stderr)
        return 2
    if arguments.update_golden:
        # Golden snapshots must be keyed to the source as it is now, not to
        # whatever this process memoized at import time.
        invalidate_code_fingerprint()
    try:
        selected = filter_specs(
            registry.all_specs(), names=names, tags=tuple(arguments.tag or ())
        )
        if arguments.shard is not None:
            index, count = parse_shard(arguments.shard)
            selected = select_shard(selected, index, count)
    except OrchestrationError as error:
        # Selection errors (unknown name/tag, bad shard) are usage errors:
        # exit 2, like argparse, rather than the generic runtime-error 1.
        print(f"error: {error}", file=sys.stderr)
        return 2
    cache = None if arguments.no_cache else ResultCache(arguments.cache_dir)
    if arguments.retries < 0:
        print("error: --retries must be non-negative", file=sys.stderr)
        return 2
    results = run_experiments(
        selected,
        parallel=arguments.parallel or arguments.jobs is not None,
        max_workers=arguments.jobs,
        cache=cache,
        force=arguments.force,
        task_timeout=arguments.task_timeout,
        retries=arguments.retries,
    )
    if not arguments.quiet:
        for spec, result in zip(selected, results):
            print(experiment_banner(spec.experiment_id))
            print(spec.render(result))
            print()
    if arguments.results:
        document = results_document(
            results, shard=arguments.shard, backend=get_backend().name
        )
        write_results_document(document, arguments.results, merge=arguments.merge)
        print(f"results written to {arguments.results}")
    if arguments.update_golden:
        _update_golden(
            selected,
            arguments.golden_dir,
            {result.experiment_id: result for result in results},
            get_backend().name,
        )
    return 0


def _parse_shares(entries: Sequence[str]) -> ConfigurationDistribution:
    weights = {}
    for entry in entries:
        name, separator, raw_value = entry.partition("=")
        if not separator or not name:
            raise ReproError(f"expected NAME=POWER, got {entry!r}")
        try:
            value = float(raw_value)
        except ValueError as error:
            raise ReproError(f"power in {entry!r} is not a number") from error
        if name in weights:
            # Last-wins would silently drop the earlier weight — with real
            # share data that is always a typo, never an intent.
            raise ReproError(f"duplicate name {name!r} (each NAME may appear once)")
        weights[name] = value
    return ConfigurationDistribution(weights)


def _command_entropy(entries: Sequence[str]) -> int:
    distribution = _parse_shares(entries)
    profile = distribution.diversity_profile()
    table = Table(headers=("metric", "value"))
    table.add_row("configurations", len(distribution))
    table.add_row("kappa (non-zero shares)", distribution.support_size())
    table.add_row("shannon entropy (bits)", profile["shannon_entropy"])
    table.add_row("normalized entropy", profile["normalized_entropy"])
    table.add_row("effective configurations (Hill q=1)", profile["hill_1"])
    table.add_row("largest share (Berger-Parker)", profile["berger_parker"])
    table.add_row("HHI", profile["hhi"])
    print(table.render())
    print()
    largest = profile["berger_parker"]
    for family in (ProtocolFamily.BFT, ProtocolFamily.NAKAMOTO):
        tolerance = tolerated_fault_fraction(family)
        verdict = "VIOLATES" if largest >= tolerance else "respects"
        print(
            f"a single fault in the largest configuration {verdict} the "
            f"{family.value} tolerance ({tolerance:.0%})"
        )
    return 0


def _command_backends() -> int:
    active = get_backend()
    available = set(available_backends())
    reasons = availability_errors()
    table = Table(headers=("backend", "available", "active", "reason"))
    for name in registered_backends():
        table.add_row(
            name,
            name in available,
            name == active.name,
            reasons.get(name) or "-",
        )
    print(table.render())
    return 0


def _command_serve(arguments: argparse.Namespace) -> int:
    async def _main() -> None:
        server = ResultServer(
            host=arguments.host,
            port=arguments.port,
            jobs=arguments.jobs,
            cache_dir=arguments.cache_dir,
            refresh_interval=arguments.refresh_interval,
            build_deadline=arguments.build_deadline,
            build_retries=arguments.build_retries,
            breaker_threshold=arguments.breaker_threshold,
            breaker_reset=arguments.breaker_reset,
        )
        await server.start()
        assert server.service is not None
        print(
            f"serving experiment results on {server.url} "
            f"({server.jobs} pool workers, cache: {server.service.cache.directory})"
        )
        print(
            "routes: /experiments  /experiments/{id}  /jobs  /jobs/{id}  "
            "/results  /cache/*  /healthz  /metrics"
        )
        try:
            await server.serve_forever()
        finally:
            await server.stop()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        print("shutting down")
    except OSError as error:
        # Port already bound, privileged port, bad interface: a normal
        # operational failure, not a traceback-worthy bug.
        print(
            f"error: cannot serve on {arguments.host}:{arguments.port}: {error}",
            file=sys.stderr,
        )
        return 1
    return 0


def _command_bench_serve(arguments: argparse.Namespace) -> int:
    experiment_ids = list(arguments.experiments) or ["figure1", "example1"]
    known = set(registry.experiment_ids())
    unknown = [name for name in experiment_ids if name not in known]
    if unknown:
        print(
            f"error: unknown experiments: {', '.join(unknown)} "
            f"(known: {', '.join(registry.experiment_ids())})",
            file=sys.stderr,
        )
        return 2
    temp_cache_dir = None
    cache_dir = arguments.cache_dir
    if cache_dir is None:
        temp_cache_dir = cache_dir = tempfile.mkdtemp(prefix="repro-bench-serve-")
    try:
        report = asyncio.run(_run_bench_serve(arguments, cache_dir, experiment_ids))
        print(
            f"result-service bench: {len(experiment_ids)} experiment(s), "
            f"{arguments.requests} requests x {arguments.concurrency} connections"
        )
        table = Table(headers=("phase", "requests", "seconds", "req/sec", "statuses"))
        phases = [
            ("cold (miss+build)", report.cold),
            ("warm (cache hits)", report.warm),
            ("conditional (304)", report.conditional),
        ]
        if report.mixed is not None:
            phases.append(
                (f"mixed ({report.write_ratio:.0%} writes)", report.mixed)
            )
        for label, phase in phases:
            table.add_row(
                label,
                phase.requests,
                phase.seconds,
                phase.requests_per_second,
                json.dumps(phase.statuses, sort_keys=True),
            )
        print(table.render())
        if arguments.output:
            write_serve_snapshot(report, arguments.output)
            print(f"snapshot written to {arguments.output}")
    finally:
        if temp_cache_dir is not None:
            shutil.rmtree(temp_cache_dir, ignore_errors=True)
    return 0


async def _run_bench_serve(arguments, cache_dir, experiment_ids):
    server = ResultServer(
        host="127.0.0.1",
        port=0,
        jobs=arguments.jobs,
        cache_dir=cache_dir,
        refresh_interval=0.0,
    )
    await server.start()
    try:
        return await run_serve_bench(
            "127.0.0.1",
            server.port,
            experiment_ids,
            requests=arguments.requests,
            concurrency=arguments.concurrency,
            write_ratio=arguments.write_ratio,
        )
    finally:
        await server.stop()


def _command_cache(arguments: argparse.Namespace) -> int:
    cache = ResultCache(arguments.cache_dir)
    if not arguments.warm and (
        arguments.experiments or arguments.tag or arguments.jobs
    ):
        print(
            "error: EXPERIMENT arguments, --tag and --jobs only apply to --warm",
            file=sys.stderr,
        )
        return 2
    if arguments.warm:
        return _warm_cache(arguments, cache)
    if arguments.clear:
        report = cache.clear()
        print(
            f"cleared {cache.directory}: removed {report.removed_entries} "
            f"entries and {report.removed_temp_files} temp files "
            f"({report.freed_bytes} bytes)"
        )
        return 0
    if arguments.prune:
        report = cache.prune()
        print(
            f"pruned {cache.directory}: removed {report.removed_entries} stale "
            f"entries and {report.removed_temp_files} temp files "
            f"({report.freed_bytes} bytes), kept {report.kept_entries} live entries"
        )
        return 0
    stats = cache.stats()
    table = Table(headers=("metric", "value"))
    table.add_row("directory", stats.directory)
    table.add_row("live entries (current fingerprint)", stats.entries)
    table.add_row("stale entries (prunable)", stats.stale_entries)
    table.add_row("leaked temp files (prunable)", stats.temp_files)
    table.add_row("total bytes", stats.total_bytes)
    print(table.render())
    return 0


def _warm_cache(arguments: argparse.Namespace, cache: ResultCache) -> int:
    """Batch-prime the cache: compute every missing registry result.

    The keys are the same content hashes the serve layer derives, so a
    server started on this directory afterwards answers the whole selection
    from cache — this is how CI (and operators) front-load the expensive
    builds before traffic arrives.
    """
    # Key for the source as it is now, not the import-time memo.
    invalidate_code_fingerprint()
    try:
        selected = filter_specs(
            registry.all_specs(),
            names=list(arguments.experiments),
            tags=tuple(arguments.tag or ()),
        )
    except OrchestrationError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    backend_name = get_backend().name
    cached_before = sum(
        1
        for spec in selected
        if cache.load(cache.key_for(spec, spec.params_dict(), backend_name))
        is not None
    )
    run_experiments(
        selected,
        backend=backend_name,
        parallel=arguments.jobs is not None and arguments.jobs > 1,
        max_workers=arguments.jobs,
        cache=cache,
    )
    print(
        f"warmed {cache.directory}: {len(selected) - cached_before} "
        f"result(s) computed, {cached_before} already cached "
        f"({len(selected)} selected, backend: {backend_name})"
    )
    return 0


def _command_bench(arguments: argparse.Namespace) -> int:
    report = benchmark_backends(
        trials=arguments.trials,
        configs=arguments.configs,
        exploit_budget=arguments.budget,
        vulnerability_probability=arguments.vulnerability,
        seed=arguments.seed,
        repeats=arguments.repeats,
    )
    print(
        f"Monte-Carlo estimator bench: {report.trials} trials x "
        f"{report.configs} configs (budget={report.exploit_budget}, "
        f"p_vuln={report.vulnerability_probability}, seed={report.seed})"
    )
    table = Table(headers=("backend", "seconds", "trials/sec", "P[violation]", "vs python"))
    for timing in report.timings:
        speedup = report.speedup_over_python(timing.backend)
        table.add_row(
            timing.backend,
            timing.seconds,
            timing.trials_per_second,
            timing.violation_probability,
            "-" if speedup is None else f"{speedup:.1f}x",
        )
    print(table.render())
    if arguments.output:
        write_snapshot(report, arguments.output)
        print(f"snapshot written to {arguments.output}")
    return 0


def _command_bench_campaign(arguments: argparse.Namespace) -> int:
    report = benchmark_campaigns(
        trials=arguments.trials,
        replicas=arguments.replicas,
        ecosystem=arguments.ecosystem,
        exploit_probability=arguments.exploit_probability,
        budget=arguments.budget,
        seed=arguments.seed,
        repeats=arguments.repeats,
    )
    print(
        f"campaign engine bench: {report.trials} randomized campaigns x "
        f"{report.replicas} replicas x {report.vulnerabilities} vulnerabilities "
        f"({report.ecosystem} ecosystem, budget={report.budget}, "
        f"p_exploit={report.exploit_probability}, seed={report.seed})"
    )
    table = Table(
        headers=("backend", "seconds", "campaigns/sec", "P[violation]", "vs python")
    )
    for timing in report.timings:
        speedup = report.speedup_over_python(timing.backend)
        table.add_row(
            timing.backend,
            timing.seconds,
            timing.trials_per_second,
            timing.violation_probability,
            "-" if speedup is None else f"{speedup:.1f}x",
        )
    print(table.render())
    print("backends produced identical campaign results: True")
    if arguments.output:
        write_campaign_snapshot(report, arguments.output)
        print(f"snapshot written to {arguments.output}")
    return 0


def _command_bench_grid(arguments: argparse.Namespace) -> int:
    report = benchmark_grid(
        trials=arguments.trials,
        replicas=arguments.replicas,
        ecosystem=arguments.ecosystem,
        budgets=tuple(arguments.budgets),
        probabilities=tuple(arguments.probabilities),
        seed=arguments.seed,
        repeats=arguments.repeats,
        scalar_trials=arguments.scalar_trials,
    )
    print(
        f"grid engine bench: {report.grid_points} grid points x "
        f"{report.trials} trials x {report.replicas} replicas "
        f"({report.ecosystem} ecosystem, budgets={list(report.budgets)}, "
        f"p_exploit={list(report.probabilities)}, seed={report.seed})"
    )
    table = Table(headers=("mode", "trials", "seconds", "point-trials/sec"))
    for timing in report.timings:
        table.add_row(
            timing.mode,
            timing.trials,
            timing.seconds,
            timing.point_trials_per_second,
        )
    print(table.render())
    fused_over_looped = report.speedup_fused_over_looped()
    if fused_over_looped is not None:
        print(f"fused over looped (numpy, same workload): {fused_over_looped:.1f}x")
    fused_over_scalar = report.speedup_fused_numpy_over_scalar()
    if fused_over_scalar is not None:
        print(f"fused numpy over scalar python (throughput): {fused_over_scalar:.1f}x")
    print(
        "fused grid identical to looped campaigns: "
        f"{report.identical_fused_vs_looped}"
    )
    if arguments.output:
        write_grid_snapshot(report, arguments.output)
        print(f"snapshot written to {arguments.output}")
    return 0


def _command_bench_population(arguments: argparse.Namespace) -> int:
    report = benchmark_population(
        sizes=tuple(arguments.sizes),
        trials=arguments.trials,
        ecosystem=arguments.ecosystem,
        exploit_probability=arguments.exploit_probability,
        seed=arguments.seed,
        repeats=arguments.repeats,
        dense_limit=arguments.dense_limit,
        memory_ceiling_mb=arguments.memory_ceiling_mb,
    )
    print(
        f"sparse population bench: {report.backend} backend, "
        f"{report.ecosystem} ecosystem ({report.vulnerabilities} "
        f"vulnerabilities), {report.trials} trials, seed={report.seed}, "
        f"dense limit {report.dense_limit}"
    )
    table = Table(
        headers=(
            "replicas",
            "nnz",
            "build sec",
            "sparse sec",
            "sparse trials/sec",
            "dense sec",
            "identical",
            "peak RSS KiB",
        )
    )
    for point in report.points:
        table.add_row(
            point.size,
            point.nnz,
            point.build_seconds,
            point.sparse_seconds,
            point.sparse_trials_per_second,
            "-" if point.dense_seconds is None else point.dense_seconds,
            "-"
            if point.identical_sparse_vs_dense is None
            else point.identical_sparse_vs_dense,
            point.peak_rss_kb,
        )
    print(table.render())
    identical = report.identical_sparse_vs_dense()
    if identical is not None:
        print(f"sparse identical to dense at overlapping scales: {identical}")
    print(f"peak RSS: {report.peak_rss_kb()} KiB")
    if arguments.output:
        write_population_snapshot(report, arguments.output)
        print(f"snapshot written to {arguments.output}")
    if report.within_memory_ceiling() is False:
        print(
            f"error: peak RSS {report.peak_rss_kb()} KiB exceeds the "
            f"{report.memory_ceiling_kb} KiB ceiling",
            file=sys.stderr,
        )
        return 1
    return 0


def _command_bench_backends(arguments: argparse.Namespace) -> int:
    report = benchmark_backend_suite(
        trials=arguments.trials,
        python_trials=arguments.python_trials,
        replicas=arguments.replicas,
        ecosystem=arguments.ecosystem,
        exploit_probability=arguments.exploit_probability,
        budget=arguments.budget,
        seed=arguments.seed,
        repeats=arguments.repeats,
        worker_counts=tuple(arguments.workers),
        sparse_size=arguments.sparse_size,
        sparse_trials=arguments.sparse_trials,
        sparse_workers=arguments.sparse_workers,
        compare_unpruned=not arguments.skip_unpruned,
        memory_ceiling_mb=arguments.memory_ceiling_mb,
    )
    print(
        f"backend comparison: {report.trials} trials x {report.replicas} "
        f"replicas ({report.vulnerabilities} vulnerabilities), "
        f"budget {report.budget}, seed {report.seed}, "
        f"{report.cpu_count} CPU core(s)"
    )
    table = Table(
        headers=("configuration", "trials", "seconds", "trials/sec", "identical")
    )
    for timing in report.timings:
        table.add_row(
            timing.label,
            timing.trials,
            timing.seconds,
            timing.trials_per_second,
            timing.identical,
        )
    print(table.render())
    for workers in report.worker_counts:
        speedup = report.shm_speedup_over_numpy(workers)
        if speedup is not None:
            print(f"shm[w={workers}] over numpy: {speedup:.2f}x")
    sparse = report.sparse
    if sparse is not None:
        print(
            f"sparse sweep: {sparse.population_size} replicas "
            f"({sparse.nnz} nnz), {sparse.trials} trials, "
            f"{sparse.workers} workers, build {sparse.build_seconds:.1f}s, "
            f"pruned {sparse.pruned_seconds:.2f}s"
            + (
                f", unpruned {sparse.unpruned_seconds:.2f}s "
                f"(identical: {sparse.pruned_identical_to_unpruned}, "
                f"prune speedup {sparse.prune_speedup():.2f}x)"
                if sparse.unpruned_seconds is not None
                else ""
            )
        )
        print(f"sparse peak RSS: {sparse.peak_rss_kb} KiB")
    if arguments.output:
        write_backends_snapshot(report, arguments.output)
        print(f"snapshot written to {arguments.output}")
    failed = False
    if arguments.min_speedup is not None:
        speedup = report.shm_speedup_over_numpy(arguments.min_speedup_workers)
        if speedup is None:
            print(
                f"error: no shm measurement at "
                f"{arguments.min_speedup_workers} workers to gate on",
                file=sys.stderr,
            )
            failed = True
        elif speedup < arguments.min_speedup:
            print(
                f"error: shm over numpy at {arguments.min_speedup_workers} "
                f"workers is {speedup:.2f}x, below the required "
                f"{arguments.min_speedup:.2f}x",
                file=sys.stderr,
            )
            failed = True
    if report.within_memory_ceiling() is False:
        print(
            f"error: sparse peak RSS {report.sparse.peak_rss_kb} KiB "
            f"exceeds the {report.memory_ceiling_kb} KiB ceiling",
            file=sys.stderr,
        )
        failed = True
    return 1 if failed else 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = _build_parser()
    arguments = parser.parse_args(argv)
    previous_backend = None
    backend_overridden = False
    try:
        if arguments.backend is not None:
            previous_backend = set_default_backend(arguments.backend)
            backend_overridden = True
        if arguments.command == "list":
            return _command_list()
        if arguments.command == "run":
            return _command_run(arguments)
        if arguments.command == "serve":
            return _command_serve(arguments)
        if arguments.command == "bench-serve":
            return _command_bench_serve(arguments)
        if arguments.command == "cache":
            return _command_cache(arguments)
        if arguments.command == "entropy":
            return _command_entropy(arguments.shares)
        if arguments.command == "backends":
            return _command_backends()
        if arguments.command == "bench":
            return _command_bench(arguments)
        if arguments.command == "bench-campaign":
            return _command_bench_campaign(arguments)
        if arguments.command == "bench-grid":
            return _command_bench_grid(arguments)
        if arguments.command == "bench-population":
            return _command_bench_population(arguments)
        if arguments.command == "bench-backends":
            return _command_bench_backends(arguments)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    finally:
        if backend_overridden:
            set_default_backend(previous_backend)
    parser.error(f"unknown command {arguments.command!r}")  # pragma: no cover
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover - manual entry point
    sys.exit(main())
