"""Datasets and synthetic data generators.

- :mod:`repro.datasets.bitcoin_pools` -- the 02-Feb-2023 Bitcoin mining-pool
  hash-power snapshot used by the paper's Example 1 and Figure 1.
- :mod:`repro.datasets.software_ecosystem` -- synthetic market-share data for
  the component families discussed in Section III-A (operating systems,
  consensus clients, wallets, crypto libraries, trusted hardware).
- :mod:`repro.datasets.generators` -- parametric distribution generators
  (uniform, Zipf, Dirichlet, oligopoly) used by sweeps and ablations.
"""

from repro.datasets.bitcoin_pools import (
    BITCOIN_POOL_SHARES_FEB_2023,
    RESIDUAL_SHARE_FEB_2023,
    bitcoin_pool_distribution,
    bitcoin_pool_ledger,
    figure1_distribution,
)
from repro.datasets.generators import (
    dirichlet_distribution,
    oligopoly_distribution,
    stream_replica_chunks,
    uniform_distribution,
    zipf_distribution,
)
from repro.datasets.software_ecosystem import (
    SyntheticEcosystem,
    default_ecosystem,
    skewed_ecosystem,
)

__all__ = [
    "BITCOIN_POOL_SHARES_FEB_2023",
    "RESIDUAL_SHARE_FEB_2023",
    "SyntheticEcosystem",
    "bitcoin_pool_distribution",
    "bitcoin_pool_ledger",
    "default_ecosystem",
    "dirichlet_distribution",
    "figure1_distribution",
    "oligopoly_distribution",
    "skewed_ecosystem",
    "uniform_distribution",
    "zipf_distribution",
]
