"""The Bitcoin mining-pool snapshot behind Example 1 and Figure 1.

Example 1 quotes the blockchain.com pool statistics of 02 February 2023: the
17 largest mining pools together control 99.13% of the hash power, distributed
as listed below, and the remaining 0.87% is of unknown composition.  Figure 1
assumes the best case for diversity — every pool runs a unique configuration —
and spreads the residual 0.87% uniformly over ``x`` additional miners for
``x`` from 1 to 1000, plotting the Shannon entropy of the resulting
distribution.

This module embeds the exact numbers from the paper and provides the
distribution constructors used by :mod:`repro.experiments.figure1` and
:mod:`repro.experiments.example1`.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.core.distribution import ConfigurationDistribution
from repro.core.exceptions import DistributionError
from repro.core.power import PowerLedger, PowerRegime

#: Hash-power percentages of the 17 largest pools on 02 February 2023, as
#: printed in Example 1 of the paper (largest first).  The names are the top
#: pools reported by blockchain.com around that date; the paper itself only
#: prints the percentages, which is all the analysis depends on.
BITCOIN_POOL_SHARES_FEB_2023: Tuple[Tuple[str, float], ...] = (
    ("foundry-usa", 34.239),
    ("antpool", 19.981),
    ("f2pool", 12.997),
    ("binance-pool", 11.348),
    ("viabtc", 8.826),
    ("btc-com", 2.619),
    ("poolin", 2.037),
    ("mara-pool", 1.649),
    ("luxor", 1.358),
    ("sbi-crypto", 1.261),
    ("braiins-pool", 0.78),
    ("ultimuspool", 0.68),
    ("pool-13", 0.68),
    ("pool-14", 0.39),
    ("pool-15", 0.10),
    ("pool-16", 0.10),
    ("pool-17", 0.10),
)

#: Total hash-power percentage covered by the 17 pools, as *stated* in the
#: paper ("17 mining pools in Bitcoin possess 99.13% mining power").  Note
#: that the individual percentages printed in Example 1 actually add up to
#: 99.145%, a 0.015-point rounding artifact of the source chart; we keep the
#: printed per-pool values verbatim and expose both numbers.
TOP_POOL_TOTAL_SHARE_FEB_2023: float = 99.13

#: The residual hash-power percentage of unknown composition, as stated in
#: the paper.
RESIDUAL_SHARE_FEB_2023: float = 0.87


def published_pool_share_sum() -> float:
    """The sum of the per-pool percentages printed in Example 1 (99.145)."""
    return sum(share for _, share in BITCOIN_POOL_SHARES_FEB_2023)


def pool_share_mapping() -> Dict[str, float]:
    """The 17-pool snapshot as a mapping pool name -> hash-power percentage."""
    return dict(BITCOIN_POOL_SHARES_FEB_2023)


def bitcoin_pool_distribution() -> ConfigurationDistribution:
    """Distribution over the 17 named pools only (residual power excluded).

    Each pool is treated as one unique configuration, which is the paper's
    best-case diversity assumption.
    """
    return ConfigurationDistribution(pool_share_mapping())


def bitcoin_pool_ledger() -> PowerLedger:
    """The snapshot as a :class:`~repro.core.power.PowerLedger` (hashrate regime)."""
    return PowerLedger.from_mapping(pool_share_mapping(), regime=PowerRegime.HASHRATE)


def figure1_distribution(
    residual_miners: int,
    *,
    residual_share: float = RESIDUAL_SHARE_FEB_2023,
) -> ConfigurationDistribution:
    """The Figure 1 distribution for a given residual miner count ``x``.

    The 17 pools keep their measured shares; the residual ``residual_share``
    percent of hash power is split uniformly over ``residual_miners``
    additional miners, each assumed to run its own unique configuration.  With
    ``residual_miners = 101`` the system has 118 miners in total, matching the
    caption of Figure 1.

    Args:
        residual_miners: the X-axis value of Figure 1 (1 to 1000 in the paper).
        residual_share: hash-power percentage to distribute (0.87 by default).

    Raises:
        DistributionError: when ``residual_miners`` is not positive or the
            residual share is negative.
    """
    if residual_miners <= 0:
        raise DistributionError(
            f"residual miner count must be positive, got {residual_miners}"
        )
    if residual_share < 0:
        raise DistributionError(
            f"residual share must be non-negative, got {residual_share}"
        )
    weights: Dict[str, float] = pool_share_mapping()
    if residual_share > 0:
        per_miner = residual_share / residual_miners
        for index in range(residual_miners):
            weights[f"residual-miner-{index}"] = per_miner
    return ConfigurationDistribution(weights)


def figure1_total_miners(residual_miners: int) -> int:
    """Total number of miners for a given X-axis value (17 pools + residual)."""
    if residual_miners <= 0:
        raise DistributionError(
            f"residual miner count must be positive, got {residual_miners}"
        )
    return len(BITCOIN_POOL_SHARES_FEB_2023) + residual_miners


def top_pool_concentration(count: int) -> float:
    """Fraction of the *total* (100%) hash power held by the ``count`` largest pools.

    ``top_pool_concentration(10)`` is just above 0.96, matching the paper's
    footnote that the top ten pools possess over 96% of the mining power, and
    ``top_pool_concentration(1)`` is about 0.342 (Foundry USA alone).
    """
    if count < 0:
        raise DistributionError(f"count must be non-negative, got {count}")
    ranked = sorted((share for _, share in BITCOIN_POOL_SHARES_FEB_2023), reverse=True)
    return sum(ranked[:count]) / 100.0
