"""Synthetic software-ecosystem market shares.

The paper's Section III-A argues that replica diversity comes from the choice
of operating system, consensus client, wallet / key-management module, crypto
library and trusted hardware.  Real market-share data for blockchain node
software is not redistributable, so this module ships *synthetic but shaped*
ecosystems: per component kind, a handful of alternatives with Zipf-like
popularity, which reproduces the qualitative situation the paper describes
(one dominant choice per slot, a short tail of alternatives).

The ecosystems are used to generate replica populations whose configuration
census has realistic (low) entropy, to drive exploit campaigns ("a zero-day in
the dominant OS"), and to give the diversity planner something to optimize.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.configuration import (
    ComponentKind,
    ReplicaConfiguration,
    SoftwareComponent,
)
from repro.core.exceptions import ConfigurationError
from repro.core.population import Replica, ReplicaPopulation
from repro.core.power import PowerRegime


@dataclass(frozen=True)
class ComponentMarket:
    """Market shares for one component kind.

    Attributes:
        kind: the component slot.
        shares: mapping component name -> market share (normalized on use).
    """

    kind: ComponentKind
    shares: Tuple[Tuple[str, float], ...]

    def __post_init__(self) -> None:
        if not self.shares:
            raise ConfigurationError(f"market for {self.kind.value!r} has no components")
        if any(share < 0 for _, share in self.shares):
            raise ConfigurationError("market shares must be non-negative")
        if sum(share for _, share in self.shares) <= 0:
            raise ConfigurationError("market shares must have positive total")

    def components(self) -> Tuple[SoftwareComponent, ...]:
        """The components on offer for this kind."""
        return tuple(SoftwareComponent(self.kind, name) for name, _ in self.shares)

    def normalized_shares(self) -> Dict[str, float]:
        """Market shares normalized to sum to one."""
        total = sum(share for _, share in self.shares)
        return {name: share / total for name, share in self.shares}

    def sample(self, rng: random.Random) -> SoftwareComponent:
        """Sample one component according to the market shares."""
        names = [name for name, _ in self.shares]
        weights = [share for _, share in self.shares]
        name = rng.choices(names, weights=weights, k=1)[0]
        return SoftwareComponent(self.kind, name)


@dataclass(frozen=True)
class SyntheticEcosystem:
    """A collection of component markets, one per kind."""

    markets: Tuple[ComponentMarket, ...]

    def __post_init__(self) -> None:
        kinds = [market.kind for market in self.markets]
        if len(set(kinds)) != len(kinds):
            raise ConfigurationError("duplicate component kind in ecosystem")
        if not self.markets:
            raise ConfigurationError("ecosystem needs at least one component market")

    def market_for(self, kind: ComponentKind) -> ComponentMarket:
        for market in self.markets:
            if market.kind is kind:
                return market
        raise ConfigurationError(f"ecosystem has no market for kind {kind.value!r}")

    def kinds(self) -> Tuple[ComponentKind, ...]:
        return tuple(market.kind for market in self.markets)

    def sample_configuration(self, rng: random.Random) -> ReplicaConfiguration:
        """Sample one full replica configuration component-by-component."""
        return ReplicaConfiguration([market.sample(rng) for market in self.markets])

    def sample_population(
        self,
        count: int,
        *,
        seed: int = 0,
        power: Optional[Sequence[float]] = None,
        attested_fraction: float = 0.0,
        regime: PowerRegime = PowerRegime.REPLICA_COUNT,
        prefix: str = "replica",
    ) -> ReplicaPopulation:
        """Sample a replica population whose configurations follow the markets.

        Args:
            count: number of replicas.
            seed: RNG seed for reproducibility.
            power: optional per-replica absolute power (defaults to 1 each).
            attested_fraction: fraction of replicas marked as attested, chosen
                deterministically as the first ``round(count * fraction)``.
            regime: power regime recorded on the population.
            prefix: replica id prefix.
        """
        if count <= 0:
            raise ConfigurationError(f"population count must be positive, got {count}")
        if power is not None and len(power) != count:
            raise ConfigurationError(
                f"got {len(power)} power values for {count} replicas"
            )
        if not 0.0 <= attested_fraction <= 1.0:
            raise ConfigurationError(
                f"attested fraction must be in [0, 1], got {attested_fraction}"
            )
        rng = random.Random(seed)
        attested_count = round(count * attested_fraction)
        replicas: List[Replica] = []
        for index in range(count):
            replicas.append(
                Replica(
                    replica_id=f"{prefix}-{index}",
                    configuration=self.sample_configuration(rng),
                    power=1.0 if power is None else float(power[index]),
                    attested=index < attested_count,
                )
            )
        return ReplicaPopulation(replicas, regime=regime)

    def component_exposure(self) -> Dict[str, float]:
        """Expected fraction of replicas exposed to each component, by identifier."""
        exposure: Dict[str, float] = {}
        for market in self.markets:
            for name, share in market.normalized_shares().items():
                exposure[SoftwareComponent(market.kind, name).identifier] = share
        return exposure


def default_ecosystem() -> SyntheticEcosystem:
    """A moderately diverse ecosystem: realistic Zipf-ish shares per slot."""
    return SyntheticEcosystem(
        markets=(
            ComponentMarket(
                ComponentKind.OPERATING_SYSTEM,
                (("linux", 0.78), ("windows-server", 0.13), ("freebsd", 0.06), ("openbsd", 0.03)),
            ),
            ComponentMarket(
                ComponentKind.CONSENSUS_CLIENT,
                (("client-alpha", 0.66), ("client-beta", 0.24), ("client-gamma", 0.10)),
            ),
            ComponentMarket(
                ComponentKind.WALLET,
                (("builtin-wallet", 0.55), ("hardware-wallet", 0.25), ("mobile-wallet", 0.20)),
            ),
            ComponentMarket(
                ComponentKind.CRYPTO_LIBRARY,
                (("openssl", 0.70), ("libsodium", 0.20), ("boringssl", 0.10)),
            ),
            ComponentMarket(
                ComponentKind.TRUSTED_HARDWARE,
                (("intel-sgx", 0.50), ("tpm-2.0", 0.30), ("arm-trustzone", 0.15), ("amd-psp", 0.05)),
            ),
        )
    )


def skewed_ecosystem() -> SyntheticEcosystem:
    """A monoculture-leaning ecosystem: one component dominates every slot.

    Used to show how low configuration entropy translates into large
    single-vulnerability compromises.
    """
    return SyntheticEcosystem(
        markets=(
            ComponentMarket(
                ComponentKind.OPERATING_SYSTEM,
                (("linux", 0.95), ("windows-server", 0.04), ("freebsd", 0.01)),
            ),
            ComponentMarket(
                ComponentKind.CONSENSUS_CLIENT,
                (("client-alpha", 0.92), ("client-beta", 0.08)),
            ),
            ComponentMarket(
                ComponentKind.CRYPTO_LIBRARY,
                (("openssl", 0.97), ("libsodium", 0.03)),
            ),
        )
    )


def diverse_ecosystem() -> SyntheticEcosystem:
    """An idealized ecosystem with near-uniform market shares per slot."""
    return SyntheticEcosystem(
        markets=(
            ComponentMarket(
                ComponentKind.OPERATING_SYSTEM,
                (("linux", 0.25), ("windows-server", 0.25), ("freebsd", 0.25), ("openbsd", 0.25)),
            ),
            ComponentMarket(
                ComponentKind.CONSENSUS_CLIENT,
                (("client-alpha", 0.34), ("client-beta", 0.33), ("client-gamma", 0.33)),
            ),
            ComponentMarket(
                ComponentKind.CRYPTO_LIBRARY,
                (("openssl", 0.34), ("libsodium", 0.33), ("boringssl", 0.33)),
            ),
        )
    )
