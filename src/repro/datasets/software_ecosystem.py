"""Synthetic software-ecosystem market shares.

The paper's Section III-A argues that replica diversity comes from the choice
of operating system, consensus client, wallet / key-management module, crypto
library and trusted hardware.  Real market-share data for blockchain node
software is not redistributable, so this module ships *synthetic but shaped*
ecosystems: per component kind, a handful of alternatives with Zipf-like
popularity, which reproduces the qualitative situation the paper describes
(one dominant choice per slot, a short tail of alternatives).

The ecosystems are used to generate replica populations whose configuration
census has realistic (low) entropy, to drive exploit campaigns ("a zero-day in
the dominant OS"), and to give the diversity planner something to optimize.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.backend.base import campaign_uniform
from repro.core.configuration import (
    ComponentKind,
    ReplicaConfiguration,
    SoftwareComponent,
)
from repro.core.exceptions import ConfigurationError
from repro.core.population import Replica, ReplicaPopulation
from repro.core.power import PowerRegime


@dataclass(frozen=True)
class ComponentMarket:
    """Market shares for one component kind.

    Attributes:
        kind: the component slot.
        shares: mapping component name -> market share (normalized on use).
    """

    kind: ComponentKind
    shares: Tuple[Tuple[str, float], ...]

    def __post_init__(self) -> None:
        if not self.shares:
            raise ConfigurationError(f"market for {self.kind.value!r} has no components")
        if any(share < 0 for _, share in self.shares):
            raise ConfigurationError("market shares must be non-negative")
        if sum(share for _, share in self.shares) <= 0:
            raise ConfigurationError("market shares must have positive total")

    def components(self) -> Tuple[SoftwareComponent, ...]:
        """The components on offer for this kind."""
        return tuple(SoftwareComponent(self.kind, name) for name, _ in self.shares)

    def normalized_shares(self) -> Dict[str, float]:
        """Market shares normalized to sum to one."""
        total = sum(share for _, share in self.shares)
        return {name: share / total for name, share in self.shares}

    def sample(self, rng: random.Random) -> SoftwareComponent:
        """Sample one component according to the market shares."""
        names = [name for name, _ in self.shares]
        weights = [share for _, share in self.shares]
        name = rng.choices(names, weights=weights, k=1)[0]
        return SoftwareComponent(self.kind, name)

    def choice_index(self, u: float) -> int:
        """Index of the market choice at quantile ``u`` in ``[0, 1)``.

        Walks the cumulative (unnormalized) shares, so the inverse-CDF draw
        depends only on the share tuple and ``u`` — the deterministic
        primitive the counter-based population sampling is built on.
        """
        total = sum(share for _, share in self.shares)
        target = u * total
        accumulated = 0.0
        for index, (_, share) in enumerate(self.shares):
            accumulated += share
            if target < accumulated:
                return index
        return len(self.shares) - 1

    def component_at(self, u: float) -> SoftwareComponent:
        """The component at quantile ``u`` (see :meth:`choice_index`)."""
        name, _ = self.shares[self.choice_index(u)]
        return SoftwareComponent(self.kind, name)


@dataclass(frozen=True)
class SyntheticEcosystem:
    """A collection of component markets, one per kind."""

    markets: Tuple[ComponentMarket, ...]

    def __post_init__(self) -> None:
        kinds = [market.kind for market in self.markets]
        if len(set(kinds)) != len(kinds):
            raise ConfigurationError("duplicate component kind in ecosystem")
        if not self.markets:
            raise ConfigurationError("ecosystem needs at least one component market")

    def market_for(self, kind: ComponentKind) -> ComponentMarket:
        for market in self.markets:
            if market.kind is kind:
                return market
        raise ConfigurationError(f"ecosystem has no market for kind {kind.value!r}")

    def kinds(self) -> Tuple[ComponentKind, ...]:
        return tuple(market.kind for market in self.markets)

    def components(self) -> Tuple[SoftwareComponent, ...]:
        """Every component on offer, market-major — the catalog-building order."""
        return tuple(
            component
            for market in self.markets
            for component in market.components()
        )

    def sample_configuration(self, rng: random.Random) -> ReplicaConfiguration:
        """Sample one full replica configuration component-by-component."""
        return ReplicaConfiguration([market.sample(rng) for market in self.markets])

    def choices_at(self, seed: int, index: int) -> Tuple[int, ...]:
        """Replica ``index``'s market choice indices in the seeded stream.

        Market ``m`` of replica ``index`` draws
        ``campaign_uniform(seed, index * len(markets) + m)`` — the same
        counter-based splitmix64 stream the campaign kernels use, so sampled
        ecosystems are identical across processes, platforms and backends,
        and any replica can be generated without generating the ones before
        it (the property the streaming generators rely on).
        """
        market_count = len(self.markets)
        return tuple(
            market.choice_index(
                campaign_uniform(seed, index * market_count + position)
            )
            for position, market in enumerate(self.markets)
        )

    def configuration_for(self, choices: Sequence[int]) -> ReplicaConfiguration:
        """The configuration picking ``choices[m]`` from market ``m``."""
        return ReplicaConfiguration(
            [
                SoftwareComponent(market.kind, market.shares[choice][0])
                for market, choice in zip(self.markets, choices)
            ]
        )

    def configuration_at(self, seed: int, index: int) -> ReplicaConfiguration:
        """Replica ``index``'s configuration — a pure function of ``(seed, index)``."""
        return self.configuration_for(self.choices_at(seed, index))

    def sample_population(
        self,
        count: int,
        *,
        seed: int = 0,
        power: Optional[Sequence[float]] = None,
        attested_fraction: float = 0.0,
        regime: PowerRegime = PowerRegime.REPLICA_COUNT,
        prefix: str = "replica",
    ) -> ReplicaPopulation:
        """Sample a replica population whose configurations follow the markets.

        Replica ``index`` is :meth:`configuration_at`'s pure function of
        ``(seed, index)`` on the counter-based splitmix64 stream, so the
        sampled population is bit-identical across processes, platforms and
        compute backends (the stdlib ``random`` module it previously used
        guarantees neither).

        Args:
            count: number of replicas.
            seed: counter-based RNG seed for reproducibility.
            power: optional per-replica absolute power (defaults to 1 each).
            attested_fraction: fraction of replicas marked as attested, chosen
                deterministically as the first ``round(count * fraction)``.
            regime: power regime recorded on the population.
            prefix: replica id prefix.
        """
        if count <= 0:
            raise ConfigurationError(f"population count must be positive, got {count}")
        if power is not None and len(power) != count:
            raise ConfigurationError(
                f"got {len(power)} power values for {count} replicas"
            )
        if not 0.0 <= attested_fraction <= 1.0:
            raise ConfigurationError(
                f"attested fraction must be in [0, 1], got {attested_fraction}"
            )
        attested_count = round(count * attested_fraction)
        # Distinct configurations are few (the product of market sizes), so
        # one ReplicaConfiguration per distinct choice tuple is shared.
        cache: Dict[Tuple[int, ...], ReplicaConfiguration] = {}
        replicas: List[Replica] = []
        for index in range(count):
            choices = self.choices_at(seed, index)
            configuration = cache.get(choices)
            if configuration is None:
                configuration = self.configuration_for(choices)
                cache[choices] = configuration
            replicas.append(
                Replica(
                    replica_id=f"{prefix}-{index}",
                    configuration=configuration,
                    power=1.0 if power is None else float(power[index]),
                    attested=index < attested_count,
                )
            )
        return ReplicaPopulation(replicas, regime=regime)

    def component_exposure(self) -> Dict[str, float]:
        """Expected fraction of replicas exposed to each component, by identifier."""
        exposure: Dict[str, float] = {}
        for market in self.markets:
            for name, share in market.normalized_shares().items():
                exposure[SoftwareComponent(market.kind, name).identifier] = share
        return exposure


def default_ecosystem() -> SyntheticEcosystem:
    """A moderately diverse ecosystem: realistic Zipf-ish shares per slot."""
    return SyntheticEcosystem(
        markets=(
            ComponentMarket(
                ComponentKind.OPERATING_SYSTEM,
                (("linux", 0.78), ("windows-server", 0.13), ("freebsd", 0.06), ("openbsd", 0.03)),
            ),
            ComponentMarket(
                ComponentKind.CONSENSUS_CLIENT,
                (("client-alpha", 0.66), ("client-beta", 0.24), ("client-gamma", 0.10)),
            ),
            ComponentMarket(
                ComponentKind.WALLET,
                (("builtin-wallet", 0.55), ("hardware-wallet", 0.25), ("mobile-wallet", 0.20)),
            ),
            ComponentMarket(
                ComponentKind.CRYPTO_LIBRARY,
                (("openssl", 0.70), ("libsodium", 0.20), ("boringssl", 0.10)),
            ),
            ComponentMarket(
                ComponentKind.TRUSTED_HARDWARE,
                (("intel-sgx", 0.50), ("tpm-2.0", 0.30), ("arm-trustzone", 0.15), ("amd-psp", 0.05)),
            ),
        )
    )


def skewed_ecosystem() -> SyntheticEcosystem:
    """A monoculture-leaning ecosystem: one component dominates every slot.

    Used to show how low configuration entropy translates into large
    single-vulnerability compromises.
    """
    return SyntheticEcosystem(
        markets=(
            ComponentMarket(
                ComponentKind.OPERATING_SYSTEM,
                (("linux", 0.95), ("windows-server", 0.04), ("freebsd", 0.01)),
            ),
            ComponentMarket(
                ComponentKind.CONSENSUS_CLIENT,
                (("client-alpha", 0.92), ("client-beta", 0.08)),
            ),
            ComponentMarket(
                ComponentKind.CRYPTO_LIBRARY,
                (("openssl", 0.97), ("libsodium", 0.03)),
            ),
        )
    )


def diverse_ecosystem() -> SyntheticEcosystem:
    """An idealized ecosystem with near-uniform market shares per slot."""
    return SyntheticEcosystem(
        markets=(
            ComponentMarket(
                ComponentKind.OPERATING_SYSTEM,
                (("linux", 0.25), ("windows-server", 0.25), ("freebsd", 0.25), ("openbsd", 0.25)),
            ),
            ComponentMarket(
                ComponentKind.CONSENSUS_CLIENT,
                (("client-alpha", 0.34), ("client-beta", 0.33), ("client-gamma", 0.33)),
            ),
            ComponentMarket(
                ComponentKind.CRYPTO_LIBRARY,
                (("openssl", 0.34), ("libsodium", 0.33), ("boringssl", 0.33)),
            ),
        )
    )
